"""Scheduler ablation — RTK-Spec I vs RTK-Spec II (section 4 validation).

The paper built RTK-Spec I (round robin) and RTK-Spec II (priority-based
preemptive) with the same SIM_API constructs to validate their coverage.
This benchmark runs the same four-task workload on both kernels and asserts
the qualitative differences a scheduler swap must produce: priority
scheduling finishes the urgent task first and preempts less overall, while
round robin interleaves everything fairly.
"""

import pytest

from repro.rtkspec import RTKSpec1, RTKSpec2
from repro.sysc import SimTime, Simulator

WORKLOAD = [
    ("urgent", 5, 6),
    ("medium", 15, 9),
    ("relaxed", 30, 12),
    ("background", 40, 15),
]


def run_workload(kernel_class, **kwargs):
    simulator = Simulator(f"ablation-{kernel_class.__name__}")
    kernel = kernel_class(simulator, **kwargs)
    completions = {}

    def make_body(name, execution_ms):
        def body():
            yield from kernel.api.sim_wait(duration=SimTime.ms(execution_ms), label=name)
            completions[name] = simulator.now.to_ms()
        return body

    for name, priority, execution_ms in WORKLOAD:
        kernel.start_task(kernel.create_task(make_body(name, execution_ms),
                                             priority=priority, name=name))
    simulator.run(SimTime.ms(200))
    return kernel, completions


@pytest.fixture(scope="module")
def results():
    rr_kernel, rr_completions = run_workload(RTKSpec1, time_slice_ticks=4)
    prio_kernel, prio_completions = run_workload(RTKSpec2)
    return rr_kernel, rr_completions, prio_kernel, prio_completions


def test_both_kernels_complete_the_workload(results):
    rr_kernel, rr_completions, prio_kernel, prio_completions = results
    assert set(rr_completions) == {name for name, _, _ in WORKLOAD}
    assert set(prio_completions) == {name for name, _, _ in WORKLOAD}
    print("\nRTK-Spec I completions:", rr_completions)
    print("RTK-Spec II completions:", prio_completions)


def test_priority_kernel_finishes_urgent_task_first(results):
    _, rr_completions, _, prio_completions = results
    assert prio_completions["urgent"] == min(prio_completions.values())
    # Under priority scheduling the urgent task responds much sooner than
    # under round robin, where it shares slices with everyone.
    assert prio_completions["urgent"] < rr_completions["urgent"]


def test_round_robin_interleaves_and_preempts_more(results):
    rr_kernel, rr_completions, prio_kernel, prio_completions = results
    assert rr_kernel.rotation_count >= 5
    assert rr_kernel.api.preemption_count > prio_kernel.api.preemption_count
    # Total CPU demand is identical, so the last completion matches closely.
    assert max(rr_completions.values()) == pytest.approx(
        max(prio_completions.values()), abs=2.0
    )


def test_rtkspec1_benchmark(benchmark):
    kernel, completions = benchmark.pedantic(
        lambda: run_workload(RTKSpec1, time_slice_ticks=4), rounds=2, iterations=1
    )
    assert len(completions) == 4


def test_rtkspec2_benchmark(benchmark):
    kernel, completions = benchmark.pedantic(
        lambda: run_workload(RTKSpec2), rounds=2, iterations=1
    )
    assert len(completions) == 4
