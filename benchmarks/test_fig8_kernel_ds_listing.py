"""Fig. 8 — the T-Kernel/DS output listing.

The debugger-support component lists kernel objects and their internal
states.  The benchmark runs the video-game co-simulation and asserts the
listing enumerates every created object with a state consistent with the
scenario (tasks blocked on their respective objects, the cyclic handler
active, the keypad ISR registered).
"""

import pytest

from repro.app import CoSimulationFramework, FrameworkConfig
from repro.app.videogame import VideoGameConfig
from repro.sysc import SimTime


def run_cosim():
    config = FrameworkConfig(
        simulated_duration=SimTime.ms(300),
        gui_enabled=False,
        game=VideoGameConfig(lcd_update_period_ms=20),
        key_script=FrameworkConfig.default_key_script(300, period_ms=70),
    )
    framework = CoSimulationFramework(config)
    framework.run()
    return framework


@pytest.fixture(scope="module")
def framework():
    return run_cosim()


def test_listing_enumerates_all_objects(framework):
    listing = framework.debugger.render_listing()
    print("\n" + listing)
    for expected in (
        "T1_lcd", "T2_keypad", "T3_ssd", "T4_idle", "init_task",
        "frame_sem", "key_flag", "H1_cyclic", "H2_alarm", "keypad_isr",
        "-- tasks --", "-- semaphores --", "-- event flags --",
        "-- time-event & interrupt handlers --",
    ):
        assert expected in listing


def test_snapshot_states_match_scenario(framework):
    ds = framework.debugger
    tasks = {row["name"]: row for row in ds.task_snapshot()}
    # The init task has finished (dormant); the idle task is runnable/running;
    # the keypad task waits on the event flag between key presses.
    assert tasks["init_task"]["state"] == "DMT"
    assert tasks["T2_keypad"]["state"] in ("WAI", "RDY", "RUN")
    assert tasks["T4_idle"]["state"] in ("RUN", "RDY")
    handlers = {row["name"]: row for row in ds.handler_snapshot()}
    assert handlers["H1_cyclic"]["active"] is True
    assert handlers["H1_cyclic"]["activations"] >= 10
    assert handlers["keypad_isr"]["activations"] >= 1
    system = ds.system_snapshot()
    assert system["booted"] and system["task_count"] == 5


def test_cet_cee_columns_are_populated(framework):
    rows = framework.debugger.task_snapshot()
    busy_rows = [row for row in rows if row["cet_ms"] > 0]
    assert len(busy_rows) >= 4
    assert all(row["cee_mj"] >= 0 for row in rows)


def test_fig8_listing_benchmark(benchmark, framework):
    listing = benchmark(framework.debugger.render_listing)
    assert "T-Kernel/DS" in listing
