"""Fig. 6 — the execution time/energy trace widget (step mode).

"In this widget, task dispatching, interrupt handling, and preemption can be
observed.  Also, different contexts of execution are assigned different
patterns to display the execution time/energy of a BFM access, basic block,
or OS service."

The benchmark runs the video-game co-simulation, extracts the trace over a
200 ms window and asserts that each of those observables is present.
"""

import pytest

from repro.analysis import ExecutionTraceReport
from repro.app import CoSimulationFramework, FrameworkConfig
from repro.app.videogame import VideoGameConfig
from repro.core.events import ExecutionContext
from repro.sysc import SimTime

WINDOW = SimTime.ms(200)


def run_cosim(duration=SimTime.ms(300)):
    config = FrameworkConfig(
        simulated_duration=duration,
        gui_enabled=False,
        game=VideoGameConfig(lcd_update_period_ms=10),
        key_script=FrameworkConfig.default_key_script(int(duration.to_ms()), period_ms=60),
    )
    framework = CoSimulationFramework(config)
    framework.run()
    return framework


@pytest.fixture(scope="module")
def framework():
    return run_cosim()


@pytest.fixture(scope="module")
def report(framework):
    return ExecutionTraceReport(framework.api, 0, WINDOW)


def test_trace_shows_dispatching_preemption_and_interrupts(report):
    print("\n" + report.render(columns=64))
    assert report.observed_dispatches() > 10
    assert report.observed_preemptions() >= 1
    assert report.observed_interrupts() >= 1


def test_trace_distinguishes_execution_contexts(report):
    lcd_contexts = report.time_by_context("T1_lcd")
    idle_contexts = report.time_by_context("T4_idle")
    handler_threads = [name for name in report.threads() if name.startswith("H1")]
    # The LCD task shows BFM accesses, basic blocks and OS service time.
    assert ExecutionContext.BFM_ACCESS in lcd_contexts
    assert ExecutionContext.TASK in lcd_contexts
    assert ExecutionContext.SERVICE_CALL in lcd_contexts
    # The idle task runs in the idle context; the cyclic handler in handler context.
    assert ExecutionContext.IDLE in idle_contexts
    assert handler_threads
    assert ExecutionContext.HANDLER in report.time_by_context(handler_threads[0])


def test_trace_energy_follows_time(report):
    for thread in report.threads():
        time_total = sum(report.time_by_context(thread).values())
        energy_total = sum(report.energy_by_context(thread).values())
        if time_total > 0:
            assert energy_total > 0


def test_single_cpu_invariant_holds(framework):
    assert framework.api.gantt.overlapping_segments() == []


def test_fig6_trace_extraction_benchmark(benchmark, framework):
    def extract():
        return ExecutionTraceReport(framework.api, 0, WINDOW).render(columns=64)

    rendered = benchmark(extract)
    assert "GANTT" in rendered
