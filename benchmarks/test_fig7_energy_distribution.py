"""Fig. 7 — consumed time/energy distribution and the 10 Wh battery.

"...a battery of 10-watt-hour was assumed and at run time the consumed
execution time (CET) and energy (CEE) were accumulated and distributed over
registered T-THREADs and the battery's status bar was updated.  From such a
display, designers can figure out the maximum duration of the battery's
lifespan for a given application, and the tasks that consume much time or
energy."
"""

import pytest

from repro.analysis import TimeEnergyDistribution
from repro.app import CoSimulationFramework, FrameworkConfig
from repro.app.videogame import VideoGameConfig
from repro.sysc import SimTime


def run_cosim():
    duration = SimTime.ms(400)
    config = FrameworkConfig(
        simulated_duration=duration,
        gui_enabled=False,
        game=VideoGameConfig(lcd_update_period_ms=10),
        key_script=FrameworkConfig.default_key_script(400, period_ms=80),
    )
    framework = CoSimulationFramework(config)
    framework.run()
    return framework


@pytest.fixture(scope="module")
def framework():
    return run_cosim()


@pytest.fixture(scope="module")
def distribution(framework):
    return TimeEnergyDistribution(framework.api)


def test_distribution_covers_every_registered_tthread(framework, distribution):
    rows = distribution.per_thread()
    names = {row["thread"] for row in rows}
    print("\n" + distribution.render())
    for expected in ("T1_lcd", "T2_keypad", "T3_ssd", "T4_idle", "H1_cyclic"):
        assert expected in names
    # Shares sum to one.
    assert sum(row["cee_share"] for row in rows) == pytest.approx(1.0)
    assert sum(row["cet_share"] for row in rows) == pytest.approx(1.0)


def test_idle_and_lcd_dominate_consumption(distribution):
    rows = {row["thread"]: row for row in distribution.per_thread()}
    # The idle task owns most of the CPU; among the real tasks the LCD task
    # (render computation + BFM writes) is the dominant consumer, as the
    # paper's HW/SW-partitioning discussion assumes.
    busiest_real_task = max(
        (row for name, row in rows.items() if name.startswith("T") and name != "T4_idle"),
        key=lambda row: row["cee_mj"],
    )
    assert rows["T4_idle"]["cet_ms"] > rows["T1_lcd"]["cet_ms"]
    assert busiest_real_task["thread"] == "T1_lcd"


def test_battery_lifespan_is_projected(framework, distribution):
    lifespan = distribution.battery_lifespan_hours()
    assert lifespan is not None and lifespan > 0
    distribution.battery.update()
    # A 400 ms game cannot meaningfully dent a 10 Wh battery.
    assert distribution.battery.remaining_fraction > 0.999
    assert "battery [" in distribution.battery.render()


def test_cet_consistency_with_simulated_time(framework, distribution):
    totals = distribution.totals()
    # CPU time (busy + idle) can never exceed the simulated wall time.
    assert totals["total_cet_ms"] <= totals["simulated_ms"] + 1.0
    assert totals["platform_energy_mj"] >= totals["total_cee_mj"]


def test_fig7_distribution_benchmark(benchmark, framework):
    def compute():
        return TimeEnergyDistribution(framework.api).render()

    rendered = benchmark(compute)
    assert "consumed time/energy distribution" in rendered
