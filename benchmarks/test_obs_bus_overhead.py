"""Observability-bus overhead: the zero-cost-when-off guarantee, measured.

Two guards protect the ISSUE 2 acceptance criteria:

* **No-regression guard** — kernel throughput with the bus *disabled* (no
  sinks attached anywhere, the shipping default for campaign sweeps) must
  not fall measurably below the enabled-path throughput; the disabled path
  is one attribute load + branch per publish site, so it must be at least
  as fast as publishing into the cheapest real sink.  An absolute floor
  catches gross regressions on any host.
* **Wait hot-path microbenchmark** — PR 2 removed the per-wait closure and
  ``object()`` timeout-token allocations from
  ``Simulator._apply_wait_request``/``_wake_process``; PR 3 moved the whole
  hot plane to int nanoseconds with a timestamp-bucketed timed queue and an
  inlined evaluation loop.  Measured on the development host (CPython 3.x,
  8 procs):

  ====================  ==============  ==============  ==============
  workload              seed (PR 1)     PR 2            PR 3
  ====================  ==============  ==============  ==============
  timed waits/s         ~325,000        ~495,000        ~1,400,000
  event+timeout waits/s ~247,000        ~313,000        ~570,000
  ====================  ==============  ==============  ==============

  The asserted floors here are deliberately far below the measured numbers
  so slow CI hosts pass; the tighter PR-3 floors live in
  ``benchmarks/test_perf_regression.py`` and the precise trajectory in
  ``BENCH_PR<n>.json`` (``python -m repro bench``).

The structural half of the guarantee — no ``Event`` record is *ever*
constructed while no sink is attached — is asserted exactly in
``tests/obs/test_bus.py::TestZeroCostFastPath``.
"""

import gc
import time
import tracemalloc

from repro.obs import CounterSink
from repro.obs.bus import EventBus
from repro.sysc.kernel import Simulator
from repro.sysc.process import Wait, WaitEventTimeout
from repro.sysc.time import SimTime

PROCESSES = 8
TIMED_WAITS = 8000
TIMEOUT_WAITS = 4000

#: Conservative absolute floors (waits per second) for any plausible host.
TIMED_FLOOR = 60_000
TIMEOUT_FLOOR = 40_000


def _run_timed_workload(attach_counter: bool) -> float:
    """Events-per-second of a pure timed-wait workload."""
    with Simulator("obs-bench") as sim:
        if attach_counter:
            sim.obs.subscribe(CounterSink(), ("kernel",))

        def body():
            request = Wait(SimTime(1000))
            for _ in range(TIMED_WAITS):
                yield request

        for index in range(PROCESSES):
            sim.register_thread(f"p{index}", body)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
    Simulator.reset()
    return PROCESSES * TIMED_WAITS / elapsed


def _run_timeout_workload() -> float:
    """Events-per-second of an event-wait-with-timeout workload."""
    with Simulator("obs-bench-timeout") as sim:
        def body():
            event = sim.create_event()
            for _ in range(TIMEOUT_WAITS):
                yield WaitEventTimeout(event, SimTime(1000))

        for index in range(PROCESSES):
            sim.register_thread(f"p{index}", body)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
    Simulator.reset()
    return PROCESSES * TIMEOUT_WAITS / elapsed


def test_disabled_bus_throughput_no_regression():
    """Bus-off kernel throughput stays at (or above) the bus-on level."""
    # Warm-up decouples the comparison from import/JIT-warmup noise.
    _run_timed_workload(attach_counter=False)
    disabled = max(_run_timed_workload(attach_counter=False) for _ in range(3))
    enabled = max(_run_timed_workload(attach_counter=True) for _ in range(3))
    print(f"\nkernel throughput: bus disabled {disabled:,.0f} waits/s, "
          f"counter sink attached {enabled:,.0f} waits/s "
          f"(ratio {disabled / enabled:.2f}x)")
    assert disabled > TIMED_FLOOR, (
        f"disabled-bus throughput {disabled:,.0f}/s fell below the "
        f"{TIMED_FLOOR:,}/s floor - the zero-cost publish path regressed"
    )
    # 0.85 leaves room for scheduler noise; the disabled path does strictly
    # less work than the enabled one, so a real regression lands far lower.
    assert disabled >= 0.85 * enabled


def test_wait_hot_path_events_per_second():
    """Microbenchmark for the de-allocated wait/timeout hot paths."""
    _run_timed_workload(attach_counter=False)
    timed = max(_run_timed_workload(attach_counter=False) for _ in range(3))
    timeout = max(_run_timeout_workload() for _ in range(3))
    print(f"\nwait hot path: {timed:,.0f} timed waits/s, "
          f"{timeout:,.0f} event+timeout waits/s")
    assert timed > TIMED_FLOOR
    assert timeout > TIMEOUT_FLOOR


# ----------------------------------------------------------------------
# Allocation-free publishing (the PR-10 pooled event pipeline)
# ----------------------------------------------------------------------
#: Events per allocation measurement — large enough that any per-event
#: allocation would dwarf the byte epsilons below by orders of magnitude.
ALLOC_EVENTS = 10_000

#: Tolerated retained / transient-peak growth over the whole measurement.
#: A single leaked Event per publish would show as ~1 MB against these.
NET_EPSILON_BYTES = 512
PEAK_EPSILON_BYTES = 4096


class _NullSink:
    """The cheapest possible non-retaining sink: consumes and forgets."""

    retains_events = False

    def handle(self, event):
        pass


def _publish_memory_profile(publish, events):
    """``(net, peak)`` traced-memory growth in bytes across *events* calls.

    Warm-up first (string interning, pooled-event setup, bytecode
    specialization all allocate once), then trace the steady state: ``net``
    is memory retained after the loop, ``peak`` the largest transient
    footprint at any instant during it.
    """
    publish(64)
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        publish(events)
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return current - before, peak - before


def test_disabled_topic_publish_allocates_nothing():
    """The shipping default — no sinks — must not allocate per publish.

    The publish site is the guarded form every hot module uses
    (``if topic.enabled: topic.emit1(...)``); with the topic disabled the
    whole loop must leave no retained memory and essentially no transient
    peak.
    """
    bus = EventBus()
    topic = bus.topic("sched")
    assert not topic.enabled

    def publish(count):
        for index in range(count):
            if topic.enabled:
                topic.emit1("dispatch", index, "thread", "t0")

    net, peak = _publish_memory_profile(publish, ALLOC_EVENTS)
    print(f"\ndisabled publish x{ALLOC_EVENTS:,}: net {net} B, peak {peak} B")
    assert net <= NET_EPSILON_BYTES, (
        f"disabled-topic publishing retained {net} bytes over "
        f"{ALLOC_EVENTS:,} events — the zero-cost path allocates"
    )
    assert peak <= PEAK_EPSILON_BYTES


def test_pooled_publish_is_allocation_free_steady_state():
    """With only non-retaining sinks attached, publishing reuses the pooled
    event: nothing is retained, and at most one small transient object (the
    ``emit_fields`` values tuple) is alive at any instant — ≤1 object per
    event, 0 for ``emit1``."""
    bus = EventBus()
    bus.subscribe(_NullSink(), ("sched",))
    topic = bus.topic("sched")
    assert topic._pooled_event is not None  # pooling must be active
    names = ("thread", "dur_ns", "context", "energy_nj", "label")

    def publish(count):
        for index in range(count):
            topic.emit1("dispatch", index, "thread", "t0")
            topic.emit_fields(
                "exec", index, names, ("t0", 500, "task", 0.0, "")
            )

    net, peak = _publish_memory_profile(publish, ALLOC_EVENTS)
    print(f"\npooled publish x{2 * ALLOC_EVENTS:,}: net {net} B, "
          f"peak {peak} B")
    assert net <= NET_EPSILON_BYTES, (
        f"pooled publishing retained {net} bytes over "
        f"{2 * ALLOC_EVENTS:,} events — the pooled fast path regressed "
        f"to per-event allocation"
    )
    assert peak <= PEAK_EPSILON_BYTES
