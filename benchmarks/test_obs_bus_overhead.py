"""Observability-bus overhead: the zero-cost-when-off guarantee, measured.

Two guards protect the ISSUE 2 acceptance criteria:

* **No-regression guard** — kernel throughput with the bus *disabled* (no
  sinks attached anywhere, the shipping default for campaign sweeps) must
  not fall measurably below the enabled-path throughput; the disabled path
  is one attribute load + branch per publish site, so it must be at least
  as fast as publishing into the cheapest real sink.  An absolute floor
  catches gross regressions on any host.
* **Wait hot-path microbenchmark** — PR 2 removed the per-wait closure and
  ``object()`` timeout-token allocations from
  ``Simulator._apply_wait_request``/``_wake_process``; PR 3 moved the whole
  hot plane to int nanoseconds with a timestamp-bucketed timed queue and an
  inlined evaluation loop.  Measured on the development host (CPython 3.x,
  8 procs):

  ====================  ==============  ==============  ==============
  workload              seed (PR 1)     PR 2            PR 3
  ====================  ==============  ==============  ==============
  timed waits/s         ~325,000        ~495,000        ~1,400,000
  event+timeout waits/s ~247,000        ~313,000        ~570,000
  ====================  ==============  ==============  ==============

  The asserted floors here are deliberately far below the measured numbers
  so slow CI hosts pass; the tighter PR-3 floors live in
  ``benchmarks/test_perf_regression.py`` and the precise trajectory in
  ``BENCH_PR<n>.json`` (``python -m repro bench``).

The structural half of the guarantee — no ``Event`` record is *ever*
constructed while no sink is attached — is asserted exactly in
``tests/obs/test_bus.py::TestZeroCostFastPath``.
"""

import time

from repro.obs import CounterSink
from repro.sysc.kernel import Simulator
from repro.sysc.process import Wait, WaitEventTimeout
from repro.sysc.time import SimTime

PROCESSES = 8
TIMED_WAITS = 8000
TIMEOUT_WAITS = 4000

#: Conservative absolute floors (waits per second) for any plausible host.
TIMED_FLOOR = 60_000
TIMEOUT_FLOOR = 40_000


def _run_timed_workload(attach_counter: bool) -> float:
    """Events-per-second of a pure timed-wait workload."""
    with Simulator("obs-bench") as sim:
        if attach_counter:
            sim.obs.subscribe(CounterSink(), ("kernel",))

        def body():
            request = Wait(SimTime(1000))
            for _ in range(TIMED_WAITS):
                yield request

        for index in range(PROCESSES):
            sim.register_thread(f"p{index}", body)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
    Simulator.reset()
    return PROCESSES * TIMED_WAITS / elapsed


def _run_timeout_workload() -> float:
    """Events-per-second of an event-wait-with-timeout workload."""
    with Simulator("obs-bench-timeout") as sim:
        def body():
            event = sim.create_event()
            for _ in range(TIMEOUT_WAITS):
                yield WaitEventTimeout(event, SimTime(1000))

        for index in range(PROCESSES):
            sim.register_thread(f"p{index}", body)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
    Simulator.reset()
    return PROCESSES * TIMEOUT_WAITS / elapsed


def test_disabled_bus_throughput_no_regression():
    """Bus-off kernel throughput stays at (or above) the bus-on level."""
    # Warm-up decouples the comparison from import/JIT-warmup noise.
    _run_timed_workload(attach_counter=False)
    disabled = max(_run_timed_workload(attach_counter=False) for _ in range(3))
    enabled = max(_run_timed_workload(attach_counter=True) for _ in range(3))
    print(f"\nkernel throughput: bus disabled {disabled:,.0f} waits/s, "
          f"counter sink attached {enabled:,.0f} waits/s "
          f"(ratio {disabled / enabled:.2f}x)")
    assert disabled > TIMED_FLOOR, (
        f"disabled-bus throughput {disabled:,.0f}/s fell below the "
        f"{TIMED_FLOOR:,}/s floor - the zero-cost publish path regressed"
    )
    # 0.85 leaves room for scheduler noise; the disabled path does strictly
    # less work than the enabled one, so a real regression lands far lower.
    assert disabled >= 0.85 * enabled


def test_wait_hot_path_events_per_second():
    """Microbenchmark for the de-allocated wait/timeout hot paths."""
    _run_timed_workload(attach_counter=False)
    timed = max(_run_timed_workload(attach_counter=False) for _ in range(3))
    timeout = max(_run_timeout_workload() for _ in range(3))
    print(f"\nwait hot path: {timed:,.0f} timed waits/s, "
          f"{timeout:,.0f} event+timeout waits/s")
    assert timed > TIMED_FLOOR
    assert timeout > TIMEOUT_FLOOR
