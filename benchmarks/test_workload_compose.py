"""Workload-plane guard: composing a scenario must stay cheap, forever.

The composition layer replaced the monolithic builders; its resolution work
(registry lookup, component construction, describe) must remain a rounding
error next to the actual scenario wiring — otherwise family sweeps pay a
per-member tax the old builders never charged.  Three properties pinned:

* **Bounded resolution overhead.**  ``compose(spec)`` (parts only, no
  build) must cost a small fraction of ``build_scenario(spec)`` (parts +
  simulator + kernel + tasks).  Generous factor: resolution is dict lookups
  and frozen-dataclass construction, wiring builds a whole simulator.
* **Bounded family expansion.**  Expanding 100 members is pure seeded
  sampling — it must complete in well under a second and never build a
  simulator.
* **Describe is build-free.**  ``repro describe`` powers tooling loops; it
  must never construct a simulator as a side effect.
"""

import time

from repro.campaign.registry import build_scenario, get_scenario
from repro.campaign.spec import spec_hash
from repro.workload import FamilySpec, compose, expand_family


def timed(fn, repeats=5):
    """Best-of-N wall clock (microbenchmark convention: min, not mean)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_compose_overhead_is_a_fraction_of_the_build(request):
    from repro.sysc.kernel import Simulator

    spec = get_scenario("synthetic-rtk")

    def compose_many():
        for _ in range(50):
            compose(spec)

    def build_once():
        build = build_scenario(spec)
        Simulator.reset()
        return build

    _, compose_seconds = timed(compose_many)
    per_compose = compose_seconds / 50
    _, build_seconds = timed(build_once)
    print(f"\ncompose: {per_compose * 1e6:.1f} us   "
          f"build: {build_seconds * 1e3:.2f} ms")
    # Resolution must stay well under the wiring it fronts.  The old
    # builders paid zero resolution cost; half a build is an enormous
    # allowance that only a structural regression (building inside
    # compose/resolve) can breach.
    assert per_compose < max(build_seconds / 2, 0.002), (
        f"compose() costs {per_compose * 1e3:.2f} ms per call vs "
        f"{build_seconds * 1e3:.2f} ms per build — resolution is doing "
        "wiring work"
    )


def test_family_expansion_of_100_members_is_subsecond():
    family = FamilySpec(name="bench", count=100, seed=5,
                        kernels=("tkernel", "rtkspec1", "rtkspec2"))
    members, seconds = timed(lambda: expand_family(family), repeats=3)
    assert len(members) == 100
    assert len({spec_hash(spec) for spec in members}) == 100
    print(f"\nexpand 100 members: {seconds * 1e3:.1f} ms")
    assert seconds < 1.0, (
        f"expanding 100 family members took {seconds:.2f}s — member "
        "sampling is no longer pure arithmetic"
    )


def test_compose_and_describe_never_build_a_simulator(monkeypatch):
    import repro.sysc.kernel as kernel_module

    def forbidden(*args, **kwargs):
        raise AssertionError("compose/describe constructed a Simulator")

    monkeypatch.setattr(kernel_module.Simulator, "__init__", forbidden)
    for name in ("quickstart", "videogame", "rtk-priority", "synthetic-rtk"):
        spec = get_scenario(name)
        composition = compose(spec)
        composition.describe(spec)
