"""Fig. 2 — the T-THREAD Petri-net execution semantics.

The figure defines the event set {Es, Ec, Ex, Ei, Ew}, the single token per
T-THREAD, firing sequences with characteristic vectors, and CET/CEE as the
accumulation of ETM/EEM over execution cycles.  This benchmark runs a
three-thread scenario designed to exercise every event kind and asserts the
bookkeeping the figure defines.
"""

import pytest

from repro.core import PriorityScheduler, SimApi, ThreadKind
from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator
from repro.sysc.process import Wait


def run_scenario():
    simulator = Simulator("fig2")
    api = SimApi(simulator, scheduler=PriorityScheduler(), system_tick=SimTime.ms(1))

    def low_body():
        yield from api.sim_wait(duration=SimTime.ms(4), energy_nj=4000.0)
        yield from api.block_current()              # sleeps -> Ew on resume
        yield from api.sim_wait(duration=SimTime.ms(4), energy_nj=4000.0)

    def high_body():
        yield from api.sim_wait(duration=SimTime.ms(2), energy_nj=2000.0)

    def isr_body():
        yield from api.sim_wait(duration=SimTime.ms(1), energy_nj=1000.0,
                                context=ExecutionContext.HANDLER)

    low = api.create_thread("low", low_body, priority=20)
    high = api.create_thread("high", high_body, priority=5)
    isr = api.create_thread("isr", isr_body, priority=0,
                            kind=ThreadKind.INTERRUPT_HANDLER)
    api.start_thread(low)

    def stimulus():
        yield Wait(SimTime.ms(1) + SimTime.us(500))
        api.start_thread(high)            # preempts low -> Ex
        yield Wait(SimTime.ms(8))
        api.wakeup(low)                   # wakes low -> Ew
        yield Wait(SimTime.ms(2))
        api.notify_interrupt(isr)         # interrupts low -> Ei

    simulator.register_thread("stimulus", stimulus)
    simulator.run(SimTime.ms(40))
    return api, low, high, isr


@pytest.fixture(scope="module")
def scenario():
    return run_scenario()


def test_every_run_event_kind_fires(scenario):
    api, low, high, isr = scenario
    events = low.token.firing_sequence.event_vector
    print(f"\nFig. 2 — low thread event vector: {events}")
    assert events.get("Es", 0) == 1          # startup after kernel init
    assert events.get("Ec", 0) >= 4          # continue-run firings
    assert events.get("Ex", 0) >= 1          # return from preemption
    assert events.get("Ew", 0) >= 1          # sleep-event arrival
    assert events.get("Ei", 0) >= 1          # return from interrupt
    assert high.token.firing_sequence.event_vector.get("Es") == 1


def test_single_token_and_characteristic_vector(scenario):
    api, low, high, isr = scenario
    vector = low.token.firing_sequence.characteristic_vector
    # The characteristic vector counts each transition's firings; its sum is
    # the number of places the single token has visited.
    assert sum(vector.values()) == low.token.marking()
    assert low.token.cycle_count == 1        # the cyclic object completed once


def test_cet_cee_accumulate_etm_eem(scenario):
    api, low, high, isr = scenario
    # ETM: low executed 8 ms of annotated work regardless of preemption.
    assert low.consumed_execution_time == SimTime.ms(8)
    assert low.consumed_execution_energy_nj == pytest.approx(8000.0, rel=0.01)
    # The firing-sequence ETM/EEM sums equal the token's CET/CEE.
    assert low.token.firing_sequence.execution_time() == low.consumed_execution_time
    assert low.token.firing_sequence.execution_energy() == pytest.approx(
        low.consumed_execution_energy_nj
    )
    # Per-context breakdown: the handler context only appears on the ISR.
    assert ExecutionContext.HANDLER in isr.token.cet_by_context()
    assert ExecutionContext.HANDLER not in low.token.cet_by_context()


def test_fig2_scenario_benchmark(benchmark):
    api, *_ = benchmark(run_scenario)
    assert api.preemption_count >= 1
    assert api.interrupt_count >= 1
