"""Analytics corpus-index guard: warm queries must stay cheap and sim-free.

The analytics plane's contract is *zero simulation on a warm store*: the
index is a pure function of stored artifacts, and every query/report reads
the index (plus, for stream-derived reports, the stored JSONL) — nothing
ever re-enters the simulator.  Two properties are pinned here:

* **No simulation.**  Building the index and querying it on a warm store
  never constructs a :class:`~repro.sysc.kernel.Simulator` — structurally
  asserted by poisoning ``Simulator.__init__``.
* **Bounded cost.**  Index rebuild throughput and warm-query latency carry
  deliberately generous absolute floors (an order of magnitude under the
  measured trajectory numbers in ``BENCH_PR6.json``), so a slow CI host
  cannot flake them while an accidental O(simulation) or O(events) path in
  the query plane lands far over the wire.
"""

import time

import pytest

from repro.analytics.corpus import build_index, open_index
from repro.grid.store import ResultStore

#: Synthetic corpus size: big enough to amortize per-query setup, small
#: enough that the fabrication itself stays in the millisecond range.
RUNS = 32


def _fill_store(store: ResultStore, runs: int = RUNS) -> None:
    """Fabricate *runs* store entries through ``put`` — no simulation."""
    for index in range(runs):
        spec = {
            "name": f"guard/{index:04d}", "kernel": "tkernel",
            "workload": "generated", "seed": index, "duration_ms": 40.0,
            "extra": {"family": "guard", "variant": index % 4},
        }
        metrics = {
            "scenario": spec["name"], "kernel": "tkernel", "seed": index,
            "context_switches": 10 + index, "preemptions": index % 5,
            "cpu_utilization": round(0.2 + (index % 10) / 50.0, 6),
            "energy_mj": round(0.1 + index / 1000.0, 6),
        }
        events = [
            {"topic": "sched", "kind": "exec", "t_ns": 1000 * slot,
             "thread": "t0", "dur_ns": 500}
            for slot in range(4)
        ]
        store.put(spec, metrics, events=events)


@pytest.fixture
def store(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    _fill_store(store)
    return store


def test_warm_query_never_constructs_a_simulator(store, monkeypatch):
    import repro.sysc.kernel as kernel_module

    def forbidden(self, *args, **kwargs):
        raise AssertionError(
            "analytics touched the simulator: Simulator() was constructed"
        )

    monkeypatch.setattr(kernel_module.Simulator, "__init__", forbidden)

    build_index(store)
    with open_index(store) as index:
        headers, rows = index.query(where=("spec.kernel=tkernel",))
        assert len(rows) == RUNS
        headers, rows = index.query(
            group_by=("spec.extra.family",),
            aggregate=("count", "mean:metrics.cpu_utilization"),
        )
        assert rows[0][1] == RUNS


def test_index_rebuild_throughput_floor(store):
    best = 0.0
    for _ in range(3):
        start = time.perf_counter()
        stats = build_index(store)
        elapsed = time.perf_counter() - start
        best = max(best, RUNS / elapsed if elapsed else float("inf"))
    assert stats["runs"] == RUNS
    print(f"\nindex rebuild: {best:,.0f} runs/s")
    # Trajectory measured ~3,800 runs/s (BENCH_PR6.json); the floor leaves
    # >10x headroom for slow CI hosts.
    assert best > 200, (
        f"index rebuild managed only {best:.0f} runs/s — "
        "the build path has stopped being a cheap manifest scan"
    )


def test_warm_query_latency_floor(store):
    build_index(store)
    with open_index(store) as index:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(20):
                index.query(
                    where=("spec.kernel=tkernel",),
                    group_by=("spec.extra.family",),
                    aggregate=("count", "mean:metrics.cpu_utilization"),
                )
            best = min(best, (time.perf_counter() - start) / 20)
    print(f"\nwarm query: {best * 1e3:.3f} ms")
    # Trajectory measured ~0.06 ms; 50 ms catches any path that re-reads
    # store artifacts (or worse, simulates) per query.
    assert best < 0.05, (
        f"warm query took {best * 1e3:.1f} ms — the query plane is no "
        "longer an indexed read"
    )
