"""Fused-executor perf guards: the speedup must survive, structurally.

Two layers of protection for the PR-7 headline number:

* **Wall-clock floor.**  On a short-run family sweep — the fixed-cost
  dominated regime fusing targets — the fused engine must stay ≥1.5x the
  per-process engine.  The committed trajectory number is ~2.2x; the floor
  leaves room for CI noise while catching a structural regression (losing
  composition reuse, shipping events per-run again, per-run process round
  trips) which lands far below the wire.
* **Structural invariant.**  The fused path composes each distinct spec at
  most once per process.  This is the property the wall-clock floor
  ultimately rests on, asserted directly so a cache regression is named,
  not inferred from timing.

The committed ``BENCH_PR7.json`` batch section is validated here too — the
acceptance artifact must show the ≥2x sweep on a ≥24-member family.
"""

import gc
import json
import os
import time

import pytest

from repro.campaign.batch import run_batch
from repro.workload.families import FamilySpec, expand_family

MEMBERS = 24


@pytest.fixture(scope="module")
def family_specs():
    family = FamilySpec(
        name="bench-fuse", count=MEMBERS, seed=9,
        kernels=("tkernel", "rtkspec1", "rtkspec2"), duration_ms=5.0,
    )
    specs = expand_family(family)
    # Warm imports + the process composition cache outside the timed region.
    run_batch(specs[:2], workers=1, collect_events=False)
    return specs


def best_of(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fused_sweep_is_at_least_1_5x_per_process(family_specs):
    per_process = best_of(
        lambda: run_batch(family_specs, collect_events=False, fuse=False)
    )
    fused = best_of(
        lambda: run_batch(family_specs, collect_events=False, fuse=True)
    )
    speedup = per_process / fused
    print(f"\nper-process: {MEMBERS / per_process:,.0f} runs/s   "
          f"fused: {MEMBERS / fused:,.0f} runs/s   speedup: {speedup:.2f}x")
    assert speedup >= 1.5, (
        f"fused sweep only {speedup:.2f}x the per-process engine — "
        "composition reuse / grouped IPC / pooled plumbing regressed"
    )


def test_fused_path_never_recomposes_a_seen_spec(monkeypatch):
    import repro.workload.components as components
    from repro.campaign.fused import process_composition_cache

    composed = []
    real_compose = components.compose

    def counting(spec, *args, **kwargs):
        composed.append(spec.name)
        return real_compose(spec, *args, **kwargs)

    monkeypatch.setattr(components, "compose", counting)
    specs = expand_family(FamilySpec(
        name="fuse-once", count=4, seed=2, duration_ms=5.0,
    ))
    process_composition_cache().clear()
    try:
        # Each spec twice in one sweep: distinct runs, shared compositions.
        run_batch(specs + specs, workers=1, collect_events=False, fuse=True)
        assert len(composed) == len(specs), (
            f"fused sweep composed {len(composed)} times for "
            f"{len(specs)} distinct specs: {composed}"
        )
    finally:
        process_composition_cache().clear()


def test_committed_trajectory_shows_the_fused_speedup():
    from repro.perf.bench import default_report_path

    path = default_report_path()
    if not os.path.exists(path):
        pytest.skip("trajectory file not generated in this checkout")
    with open(path, "r", encoding="utf-8") as handle:
        batch = json.load(handle)["batch"]
    assert batch["members"] >= 24
    assert batch["fused_speedup"] >= 2.0
