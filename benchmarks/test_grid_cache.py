"""Grid result-store guard: a cache hit must stay cheap, forever.

The whole point of the content-addressed store is *never recompute*: a hit
replays stored artifacts without building a simulator or advancing a single
delta cycle.  Two properties are pinned here:

* **No re-simulation.**  On a warm store, the scenario builder is never
  invoked — structurally asserted by poisoning ``build_scenario``.
* **Bounded lookup overhead.**  Hit cost is verification + artifact I/O
  (hash two small files, read the metrics document) — it must stay well
  below the fresh simulation it replaces, and must not grow with the
  simulated horizon the way simulation time does.  The wall-time assertion
  is deliberately generous (hit < half of fresh) so a slow CI disk cannot
  flake it, while a structural regression — re-simulating on hit, hashing
  per-event, re-parsing the stream for a metrics-only replay — lands far
  over the wire.
"""

import time

import pytest

from repro.campaign import get_scenario, run_spec
from repro.grid import ResultStore


def timed(fn, repeats=3):
    """Best-of-N wall clock (microbenchmark convention: min, not mean)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


def test_cache_hit_never_rebuilds_the_scenario(store, monkeypatch):
    spec = get_scenario("synthetic-rtk")
    run_spec(spec, collect_events=False, store=store)

    import repro.campaign.runner as runner_module

    def forbidden(_spec, *args, **kwargs):
        raise AssertionError("cache hit re-simulated: build_scenario was called")

    monkeypatch.setattr(runner_module, "build_scenario", forbidden)
    hit = run_spec(spec, collect_events=False, store=store)
    assert hit.cached
    assert hit.metrics["scenario"] == spec.name


def test_cache_hit_wall_time_is_bounded(store):
    spec = get_scenario("synthetic-rtk")  # 150 ms horizon: a real simulation

    start = time.perf_counter()
    fresh = run_spec(spec, collect_events=False, store=store)
    fresh_seconds = time.perf_counter() - start
    assert not fresh.cached

    hit, hit_seconds = timed(
        lambda: run_spec(spec, collect_events=False, store=store)
    )
    assert hit.cached
    print(f"\nfresh: {fresh_seconds * 1e3:.1f} ms   "
          f"hit: {hit_seconds * 1e3:.2f} ms   "
          f"speedup: {fresh_seconds / hit_seconds:.0f}x")
    assert hit_seconds < fresh_seconds / 2, (
        f"cache hit took {hit_seconds:.3f}s vs {fresh_seconds:.3f}s fresh — "
        "lookup overhead is no longer O(artifact size)"
    )


def test_cache_hit_does_not_scale_with_simulated_horizon(store):
    """Doubling the horizon multiplies simulation work, not hit work.

    Hit cost is dominated by artifact verification (events file hashing),
    which grows with the *event stream size*, never with re-simulation.
    The tolerance (8x for a 4x horizon) leaves room for I/O noise while
    catching any path that re-enters the simulator.
    """
    short = get_scenario("rtk-priority").with_overrides(
        {"duration_ms": 50.0}
    ).validate()
    long = get_scenario("rtk-priority").with_overrides(
        {"duration_ms": 200.0}
    ).validate()
    run_spec(short, collect_events=False, store=store)
    run_spec(long, collect_events=False, store=store)

    _, short_hit = timed(
        lambda: run_spec(short, collect_events=False, store=store), repeats=5
    )
    _, long_hit = timed(
        lambda: run_spec(long, collect_events=False, store=store), repeats=5
    )
    print(f"\nhit @50ms: {short_hit * 1e3:.2f} ms   "
          f"hit @200ms: {long_hit * 1e3:.2f} ms")
    assert long_hit < max(short_hit * 8, 0.05), (
        f"hit time grew {long_hit / short_hit:.1f}x for a 4x horizon — "
        "the hit path is re-simulating"
    )
