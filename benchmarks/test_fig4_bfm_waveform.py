"""Fig. 4 — interaction with the BFM and waveform probing.

The figure shows a task interacting with the hardware peripherals through
BFM calls (driver-model handshake functions) while the bus signals are probed
in a waveform viewer.  This benchmark drives LCD writes and keypad reads from
a task, records the bus signals in a trace, and asserts the transactions are
visible both in the trace and in the cycle/energy accounting (every BFM
access is charged in the BFM_ACCESS context).
"""

import pytest

from repro.bfm import I8051BFM
from repro.bfm.i8051 import KEYPAD_PORT, LCD_PORT
from repro.core import PriorityScheduler, SimApi
from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator


def run_bfm_scenario():
    simulator = Simulator("fig4")
    api = SimApi(simulator, scheduler=PriorityScheduler(), system_tick=SimTime.ms(1))
    bfm = I8051BFM(api)
    trace = bfm.attach_trace()
    read_values = []

    def driver_task():
        for index, character in enumerate("HELLO"):
            yield from bfm.pio.write_port(LCD_PORT, ord(character))
            value = yield from bfm.pio.read_port(KEYPAD_PORT)
            read_values.append(value)
            yield from bfm.memory.write_xram(0x100 + index, index)
        data = yield from bfm.memory.read_block(0x100, 5)
        read_values.append(tuple(data))
        yield from bfm.serial.send_string("OK")

    task = api.create_thread("driver", driver_task, priority=10)
    api.start_thread(task)
    simulator.run(SimTime.ms(20))
    return api, bfm, trace, read_values, task


@pytest.fixture(scope="module")
def bfm_scenario():
    return run_bfm_scenario()


def test_bfm_accesses_visible_in_waveform(bfm_scenario):
    api, bfm, trace, read_values, task = bfm_scenario
    write_changes = trace.changes_of(f"{bfm.name}.bus.wr")
    address_changes = trace.changes_of(f"{bfm.name}.bus.address")
    print(f"\nFig. 4 — {len(address_changes)} address changes, "
          f"{len(write_changes)} write-strobe edges recorded")
    assert len(write_changes) >= 2           # strobes toggled
    assert len(address_changes) >= 5
    vcd = trace.to_vcd()
    assert "$enddefinitions" in vcd and "bus.address" in vcd


def test_bfm_calls_carry_cycle_and_energy_budgets(bfm_scenario):
    api, bfm, trace, read_values, task = bfm_scenario
    breakdown = task.token.cet_by_context()
    assert ExecutionContext.BFM_ACCESS in breakdown
    assert breakdown[ExecutionContext.BFM_ACCESS] > SimTime(0)
    energy = task.token.cee_by_context()[ExecutionContext.BFM_ACCESS]
    assert energy > 0
    stats = bfm.access_statistics()
    assert stats["bus_accesses"] == bfm.driver.access_count
    assert stats["port_writes"][LCD_PORT] == 5
    assert stats["serial_sent"] == 2


def test_peripheral_state_follows_writes(bfm_scenario):
    api, bfm, trace, read_values, task = bfm_scenario
    assert "HELLO" in "".join(bfm.lcd.text())
    assert read_values[-1] == (0, 1, 2, 3, 4)
    assert bfm.serial.transmitted_text() == "OK"


def test_fig4_benchmark(benchmark):
    api, bfm, *_ = benchmark(run_bfm_scenario)
    assert bfm.driver.access_count > 0
