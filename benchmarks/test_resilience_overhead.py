"""Resilience-plane perf guard: failure envelopes must be nearly free.

The PR-8 contract is that every CLI sweep runs with the resilient engine
by default, so its clean-path cost is the cost of *every* sweep.  Two
layers of protection:

* **Wall-clock ceiling.**  On a warm 24-member fused family sweep the
  resilient engine (default policy: envelopes, retry accounting, chaos
  points armed but dormant) must stay within 20% of the plain fused
  engine.  The committed trajectory number is ~0, and single-core CI
  hosts show ±10% run-to-run jitter on a half-second sweep — the ceiling
  sits above the noise while still catching a structural regression
  (per-run deep copies, sidecar writes on the hot path, an accidental
  watchdog arm on every advance), which costs far more than 20%.
* **Committed trajectory.**  ``BENCH_PR8.json``'s resilience section must
  show ≤3% overhead, the acceptance number for the PR.
"""

import gc
import json
import os
import time

import pytest

from repro.campaign.batch import run_batch
from repro.resilience.envelope import ResiliencePolicy
from repro.workload.families import FamilySpec, expand_family

MEMBERS = 24


@pytest.fixture(scope="module")
def family_specs():
    family = FamilySpec(
        name="bench-resilience", count=MEMBERS, seed=9,
        kernels=("tkernel", "rtkspec1", "rtkspec2"), duration_ms=5.0,
    )
    specs = expand_family(family)
    # Warm imports + the process composition cache outside the timed region.
    run_batch(specs[:2], workers=1, collect_events=False)
    run_batch(specs[:2], workers=1, collect_events=False,
              policy=ResiliencePolicy())
    return specs


def best_of(fn, repeats=4):
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_clean_sweep_overhead_is_within_20_percent(family_specs):
    policy = ResiliencePolicy()
    plain = best_of(
        lambda: run_batch(family_specs, workers=1, collect_events=False)
    )
    resilient = best_of(
        lambda: run_batch(family_specs, workers=1, collect_events=False,
                          policy=policy)
    )
    overhead = (resilient / plain - 1.0) * 100.0
    print(f"\nplain: {MEMBERS / plain:,.0f} runs/s   "
          f"resilient: {MEMBERS / resilient:,.0f} runs/s   "
          f"overhead: {overhead:.2f}%")
    assert overhead <= 20.0, (
        f"resilient engine costs {overhead:.2f}% on a clean sweep — "
        "envelope bookkeeping / chaos points / retry accounting grew a "
        "hot-path cost"
    )


def test_committed_trajectory_shows_noise_level_overhead():
    from repro.perf.bench import default_report_path

    path = default_report_path()
    if not os.path.exists(path):
        pytest.skip("trajectory file not generated in this checkout")
    with open(path, "r", encoding="utf-8") as handle:
        resilience = json.load(handle)["resilience"]
    assert resilience["members"] >= 24
    assert resilience["overhead_pct"] <= 3.0
