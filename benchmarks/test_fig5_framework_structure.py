"""Fig. 5 — the RTOS-centric co-simulator structure.

The figure shows the framework assembly: RTK-Spec TRON (central module with
its three SC_THREADs), the i8051 BFM (RTC, memory controller, interrupt
controller, serial I/O, parallel I/O), the peripherals wrapped in GUI
widgets, and the application tasks module.  This benchmark constructs the
framework and asserts the full inventory is wired, then times construction.
"""

import pytest

from repro.app import CoSimulationFramework, FrameworkConfig
from repro.sysc import SimTime


def build_framework():
    config = FrameworkConfig(simulated_duration=SimTime.ms(100))
    return CoSimulationFramework(config)


@pytest.fixture(scope="module")
def framework():
    framework = build_framework()
    framework.run(SimTime.ms(100))
    return framework


def test_component_inventory_matches_fig5(framework):
    inventory = framework.component_inventory()
    print("\nFig. 5 — component inventory:")
    for group, members in inventory.items():
        print(f"  {group}: {members}")
    assert len(inventory["kernel_processes"]) == 3
    assert set(inventory["bfm_controllers"]) == {
        "rtc", "bus_driver", "memory_controller", "interrupt_controller",
        "serial_io", "parallel_io",
    }
    assert set(inventory["peripherals"]) == {"lcd", "keypad", "seven_segment_display"}
    assert set(inventory["application_tasks"]) == {"T1_lcd", "T2_keypad", "T3_ssd", "T4_idle"}
    assert "H1_cyclic" in inventory["application_handlers"]
    assert "keypad_isr" in inventory["application_handlers"]


def test_rtc_drives_the_kernel_tick(framework):
    # The kernel's tick handler is driven by the BFM's real-time clock.
    assert framework.kernel.tick_signal is framework.bfm.tick_signal
    assert framework.kernel.tick_handler_runs >= 90
    assert framework.bfm.rtc.tick_count >= 90


def test_interrupt_controller_is_attached(framework):
    assert framework.kernel._intc is framework.bfm.intc
    # Keypad presses from the scripted user reached the kernel as interrupts.
    results = framework.results()
    assert results["application"]["frames_rendered"] > 0


def test_fig5_construction_benchmark(benchmark):
    framework = benchmark(build_framework)
    assert framework.kernel is not None
