"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation (a table
or a figure).  The regenerated rows/series are printed so ``pytest
benchmarks/ --benchmark-only -s`` shows them, and the shape assertions encode
the qualitative claims the paper makes about each artifact.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
