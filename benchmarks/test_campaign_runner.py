"""Campaign smoke benchmark: the batch runner through the public CLI.

Batch-runs three built-in scenarios through ``python -m repro``'s entry
point (the ``cli.main`` function the module dispatches to), on two workers,
and asserts every run produced non-empty metrics and a non-empty JSONL
event stream.  This keeps the orchestration backbone — spec expansion,
multiprocessing fan-out, artifact writing — inside the tier-1 gate.
"""

import json

from repro.campaign.cli import main

SCENARIOS = ("quickstart", "rtk-round-robin", "rtk-priority")


def test_cli_batch_smoke(tmp_path, capsys):
    out_dir = tmp_path / "campaign"
    argv = ["batch", "--matrix", "seed=3", "--set", "duration_ms=60",
            "--workers", "2", "--out", str(out_dir)]
    for scenario in SCENARIOS:
        argv += ["--scenario", scenario]

    assert main(argv) == 0
    out = capsys.readouterr().out
    assert f"{len(SCENARIOS)} runs on 2 fused worker(s)" in out

    document = json.loads((out_dir / "metrics.json").read_text())
    assert document["campaign"]["runs"] == len(SCENARIOS)
    assert document["campaign"]["scenarios"] == [
        f"{name}[seed=3]" for name in SCENARIOS
    ]
    for run in document["runs"]:
        metrics = run["metrics"]
        assert metrics["context_switches"] > 0
        assert metrics["simulated_ms"] > 0
        assert metrics["energy_mj"] > 0
    assert document["aggregate"]["runs"] == len(SCENARIOS)

    event_files = sorted(out_dir.glob("events_*.jsonl"))
    assert len(event_files) == len(SCENARIOS)
    for path in event_files:
        lines = path.read_text().splitlines()
        assert lines, f"{path.name} must not be empty"
        first = json.loads(lines[0])
        assert {"t_ms", "thread", "kind"} <= set(first)
