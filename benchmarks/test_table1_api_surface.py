"""Table 1 — the RTOS modeling API surface.

The paper's Table 1 lists (a partial view of) the SIM_API programming
constructs.  This benchmark verifies that every construct class the paper
names is present and callable in our SIM_API implementation and that the
T-Kernel service-call surface built on top of it is complete, then times how
quickly a kernel exercising a representative slice of that surface can be
constructed and booted.
"""

import pytest

from repro.core import SimApi
from repro.sysc import SimTime, Simulator
from repro.tkernel import TKernelOS

#: The SIM_API construct classes of Table 1 mapped to our attribute names.
SIM_API_CONSTRUCTS = {
    "thread creation": "create_thread",
    "thread startup": "start_thread",
    "annotated wait (SIM_Wait)": "sim_wait",
    "annotated wait by key": "sim_wait_key",
    "preemption point": "preemption_point",
    "voluntary sleep": "block_current",
    "wakeup": "wakeup",
    "ready pool insert": "make_ready",
    "ready pool remove": "make_unready",
    "dispatch request": "request_dispatch",
    "forced preemption": "preempt_current",
    "interrupt notification": "notify_interrupt",
    "handler activation": "activate_handler",
    "dispatch disable": "dispatch_disable",
    "dispatch enable": "dispatch_enable",
    "thread hash table": "hashtb",
    "interrupt stack": "stack",
    "Gantt chart": "gantt",
    "energy statistics": "energy_statistics",
}

#: The T-Kernel/OS service calls the kernel model must expose (by family).
TKERNEL_SERVICES = [
    # task management
    "tk_cre_tsk", "tk_del_tsk", "tk_sta_tsk", "tk_ext_tsk", "tk_exd_tsk",
    "tk_ter_tsk", "tk_slp_tsk", "tk_wup_tsk", "tk_can_wup", "tk_dly_tsk",
    "tk_rel_wai", "tk_sus_tsk", "tk_rsm_tsk", "tk_frsm_tsk", "tk_chg_pri",
    "tk_get_tid", "tk_ref_tsk",
    # synchronization & communication
    "tk_cre_sem", "tk_del_sem", "tk_sig_sem", "tk_wai_sem", "tk_ref_sem",
    "tk_cre_flg", "tk_del_flg", "tk_set_flg", "tk_clr_flg", "tk_wai_flg", "tk_ref_flg",
    "tk_cre_mtx", "tk_del_mtx", "tk_loc_mtx", "tk_unl_mtx", "tk_ref_mtx",
    "tk_cre_mbx", "tk_del_mbx", "tk_snd_mbx", "tk_rcv_mbx", "tk_ref_mbx",
    "tk_cre_mbf", "tk_del_mbf", "tk_snd_mbf", "tk_rcv_mbf", "tk_ref_mbf",
    # memory pools
    "tk_cre_mpf", "tk_del_mpf", "tk_get_mpf", "tk_rel_mpf", "tk_ref_mpf",
    "tk_cre_mpl", "tk_del_mpl", "tk_get_mpl", "tk_rel_mpl", "tk_ref_mpl",
    # time management & handlers
    "tk_set_tim", "tk_get_tim", "tk_get_otm", "tk_ref_sys",
    "tk_cre_cyc", "tk_del_cyc", "tk_sta_cyc", "tk_stp_cyc", "tk_ref_cyc",
    "tk_cre_alm", "tk_del_alm", "tk_sta_alm", "tk_stp_alm", "tk_ref_alm",
    # interrupt management
    "tk_def_int", "tk_ena_int", "tk_dis_int",
]


def test_sim_api_constructs_present():
    """Every Table 1 construct exists on the SIM_API library object."""
    api = SimApi(Simulator("table1"))
    missing = [name for name, attr in SIM_API_CONSTRUCTS.items()
               if not hasattr(api, attr)]
    assert missing == []


def test_tkernel_service_surface_complete():
    """Every documented T-Kernel service call is exposed by the kernel model."""
    kernel = TKernelOS(Simulator("table1-kernel"))
    missing = [name for name in TKERNEL_SERVICES if not callable(getattr(kernel, name, None))]
    assert missing == []
    print(f"\nTable 1 — {len(SIM_API_CONSTRUCTS)} SIM_API constructs, "
          f"{len(TKERNEL_SERVICES)} T-Kernel service calls available")


def _boot_kernel_exercising_api():
    created = {}

    def user_main(kernel):
        def worker(stacd, exinf):
            yield from kernel.api.sim_wait(duration=SimTime.ms(1))

        created["tsk"] = yield from kernel.tk_cre_tsk(worker, itskpri=10)
        created["sem"] = yield from kernel.tk_cre_sem(isemcnt=1, maxsem=2)
        created["flg"] = yield from kernel.tk_cre_flg()
        created["mtx"] = yield from kernel.tk_cre_mtx()
        created["mbx"] = yield from kernel.tk_cre_mbx()
        created["mbf"] = yield from kernel.tk_cre_mbf()
        created["mpf"] = yield from kernel.tk_cre_mpf(2, 32)
        created["mpl"] = yield from kernel.tk_cre_mpl(128)
        yield from kernel.tk_sta_tsk(created["tsk"])

    simulator = Simulator("table1-boot")
    kernel = TKernelOS(simulator, user_main=user_main)
    simulator.run(SimTime.ms(10))
    assert all(object_id > 0 for object_id in created.values())
    return kernel


def test_api_surface_boot_benchmark(benchmark):
    """Time the construction + boot of a kernel touching every object family."""
    kernel = benchmark(_boot_kernel_exercising_api)
    assert kernel.booted
