"""Fig. 3 — kernel dynamics and SIM_API usage.

The figure shows the central module's three SC_THREADs (Boot, Thread
Dispatch, Interrupt Dispatch), the timer handler activating cyclic/alarm
handlers and resuming tasks from the timer queue, wait services switching
context via the simulation library, and interrupt notification of dedicated
ISRs.  This benchmark boots a kernel exercising all of those paths and
asserts each observable.
"""

import pytest

from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator
from repro.tkernel import TKernelOS, TMO_FEVR


def run_dynamics(duration_ms=120):
    log = []

    def user_main(kernel):
        api = kernel.api

        def sleeper(stacd, exinf):
            while True:
                ercd = yield from kernel.tk_slp_tsk(TMO_FEVR)
                if ercd != 0:
                    return
                log.append(("sleeper-woken", kernel.simulator.now.to_ms()))
                yield from api.sim_wait(duration=SimTime.ms(1))

        def busy(stacd, exinf):
            yield from api.sim_wait(duration=SimTime.ms(40))
            log.append(("busy-done", kernel.simulator.now.to_ms()))

        def cyclic_handler(exinf):
            yield from api.sim_wait(duration=SimTime.us(200),
                                    context=ExecutionContext.HANDLER)
            yield from kernel.tk_wup_tsk(exinf)

        def isr(exinf):
            log.append(("isr", kernel.simulator.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.us(300),
                                    context=ExecutionContext.HANDLER)

        sleeper_id = yield from kernel.tk_cre_tsk(sleeper, itskpri=5, name="sleeper")
        busy_id = yield from kernel.tk_cre_tsk(busy, itskpri=20, name="busy")
        yield from kernel.tk_sta_tsk(sleeper_id)
        yield from kernel.tk_sta_tsk(busy_id)
        yield from kernel.tk_cre_cyc(cyclic_handler, cyctim=15, name="wake_cycle",
                                     cycatr=0x02, exinf=sleeper_id)
        yield from kernel.tk_def_int(1, isr, name="ext_isr")

    simulator = Simulator("fig3")
    kernel = TKernelOS(simulator, user_main=user_main)

    def external_interrupts():
        from repro.sysc.process import Wait
        yield Wait(SimTime.ms(25))
        kernel.raise_interrupt(1)
        yield Wait(SimTime.ms(30))
        kernel.raise_interrupt(1)

    simulator.register_thread("externals", external_interrupts)
    simulator.run(SimTime.ms(duration_ms))
    return kernel, log


@pytest.fixture(scope="module")
def dynamics():
    return run_dynamics()


def test_central_module_has_three_processes(dynamics):
    kernel, _ = dynamics
    names = [handle.name for handle in kernel.threads]
    assert any("boot" in name for name in names)
    assert any("thread_dispatch" in name for name in names)
    assert any("interrupt_dispatch" in name for name in names)


def test_timer_handler_drives_cyclic_wakeups(dynamics):
    kernel, log = dynamics
    wakeups = [t for name, t in log if name == "sleeper-woken"]
    print(f"\nFig. 3 — sleeper wakeups at {wakeups}")
    # The cyclic handler fires every 15 ms and wakes the sleeper each time.
    assert len(wakeups) >= 5
    assert kernel.tick_handler_runs >= 100


def test_wait_service_and_dispatching(dynamics):
    kernel, log = dynamics
    # The busy task (low priority) is preempted whenever the sleeper wakes;
    # its completion is pushed out past its 40 ms of pure execution.
    busy_done = [t for name, t in log if name == "busy-done"]
    assert busy_done and busy_done[0] > 42.0
    assert kernel.api.preemption_count >= 2


def test_interrupt_dispatch_notifies_isrs(dynamics):
    kernel, log = dynamics
    isr_times = [t for name, t in log if name == "isr"]
    assert len(isr_times) == 2
    assert kernel.api.interrupt_count >= 2
    assert kernel.api.stack.is_empty()


def test_fig3_benchmark(benchmark):
    kernel, log = benchmark.pedantic(run_dynamics, rounds=2, iterations=1)
    assert kernel.booted
