"""Table 2 — co-simulation speed measure.

The paper simulates the overall framework for a reference unit time S = 1 s
and measures the wall-clock time R, with and without GUI overhead and for
different BFM access rates driving the GUI widgets (every 10 ms at the
maximum).  The reported shape: S/R = 0.2 without GUI overhead and 0.1 with
GUI overhead at the maximum access rate (i.e. GUI callbacks roughly halve the
speed), and lowering the access rate reduces the penalty.

Absolute R/S values differ from the paper (different host, Python DES vs a
compiled SystemC kernel), so the assertions are about the *shape*:

* the with-GUI run at the fastest access rate is measurably slower than the
  no-GUI run,
* increasing the LCD update period (fewer widget-driving BFM accesses)
  monotonically (within noise) reduces the GUI penalty.

A shorter reference window than 1 s is used so the whole benchmark stays
fast; R/S is a ratio, so the window length does not change the shape.
"""

import pytest

from repro.analysis.speed import measure_speed_table, render_speed_table
from repro.sysc import SimTime

#: Simulated reference window per configuration.
REFERENCE_WINDOW = SimTime.ms(400)
#: Host cost per GUI callback; large enough to dominate Python jitter.
GUI_CALLBACK_COST_S = 0.0008


@pytest.fixture(scope="module")
def speed_rows():
    return measure_speed_table(
        lcd_update_periods_ms=(10, 20, 50, 100),
        simulated_duration=REFERENCE_WINDOW,
        gui_host_seconds_per_callback=GUI_CALLBACK_COST_S,
    )


def test_table2_rows_and_shape(speed_rows):
    print("\n" + render_speed_table(speed_rows))
    no_gui = next(row for row in speed_rows if not row.gui_enabled)
    gui_fastest = next(row for row in speed_rows
                       if row.gui_enabled and row.lcd_update_period_ms == 10)
    gui_slowest = next(row for row in speed_rows
                       if row.gui_enabled and row.lcd_update_period_ms == 100)

    # GUI callbacks must cost measurable wall-clock time at the fastest rate.
    assert gui_fastest.gui_callbacks > 0
    assert gui_fastest.wall_clock_seconds > no_gui.wall_clock_seconds
    # The paper reports roughly a 2x slowdown; accept anything clearly > 1.15x.
    assert gui_fastest.r_over_s > no_gui.r_over_s * 1.15
    # Slowing the widget-driving BFM access rate reduces the GUI penalty.
    assert gui_slowest.wall_clock_seconds <= gui_fastest.wall_clock_seconds * 1.05
    # Every configuration simulates the same reference window.
    for row in speed_rows:
        assert row.simulated_seconds == pytest.approx(REFERENCE_WINDOW.to_sec())


def test_table2_benchmark_no_gui(benchmark):
    """Wall-clock cost of the reference window without GUI overhead."""
    from repro.analysis.speed import CoSimSpeedMeasurement

    def run():
        return CoSimSpeedMeasurement(
            gui_enabled=False, lcd_update_period_ms=10,
            simulated_duration=SimTime.ms(200),
        ).run()

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row.simulated_seconds == pytest.approx(0.2)


def test_table2_benchmark_with_gui(benchmark):
    """Wall-clock cost of the reference window with GUI callbacks enabled."""
    from repro.analysis.speed import CoSimSpeedMeasurement

    def run():
        return CoSimSpeedMeasurement(
            gui_enabled=True, lcd_update_period_ms=10,
            simulated_duration=SimTime.ms(200),
            gui_host_seconds_per_callback=GUI_CALLBACK_COST_S,
        ).run()

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row.gui_callbacks > 0
