"""Perf-regression floors for the PR-3 fast core.

Guards the ISSUE 3 acceptance criteria with *generous, noise-tolerant*
absolute floors: the development host measures far above these (see the
table), so a slow CI host still passes while a structural regression —
re-introducing per-wait allocations, a sorted() scan in the scheduler, a
SimTime round-trip in the kernel loop — lands well below the wire.

Measured on the development host (CPython 3.11; the "PR 2" column is the
PR-2 code re-measured on *this* host at PR-3 time — PR 2's own table
recorded ~495k/~313k on its host):

====================  ==============  ==============
workload              PR 2            PR 3 (this)
====================  ==============  ==============
timed waits/s         ~497,000        ~1,400,000
event+timeout waits/s ~337,000        ~570,000
dispatches/s          (unmeasured)    ~68,000
scheduler ops/s       (unmeasured)    ~4,000,000
====================  ==============  ==============

The floors sit ~6-8x below the measured figures.  ``repro bench`` records
the precise numbers per PR in ``BENCH_PR<n>.json``; this module only trips
on gross regressions.
"""

from repro.perf.bench import (
    bench_dispatch_rate,
    bench_scheduler_ops,
    bench_timed_wait_throughput,
    bench_timeout_wait_throughput,
)

#: Conservative absolute floors for any plausible host.
TIMED_WAIT_FLOOR = 180_000
TIMEOUT_WAIT_FLOOR = 90_000
DISPATCH_FLOOR = 9_000
SCHEDULER_OPS_FLOOR = 500_000


def test_timed_wait_throughput_floor():
    rate = bench_timed_wait_throughput(waits=4000, repeats=3)
    print(f"\ntimed waits: {rate:,.0f}/s (floor {TIMED_WAIT_FLOOR:,}/s)")
    assert rate > TIMED_WAIT_FLOOR, (
        f"timed-wait throughput {rate:,.0f}/s fell below the "
        f"{TIMED_WAIT_FLOOR:,}/s floor — the kernel wait hot path regressed"
    )


def test_timeout_wait_throughput_floor():
    rate = bench_timeout_wait_throughput(waits=2000, repeats=3)
    print(f"\ntimeout waits: {rate:,.0f}/s (floor {TIMEOUT_WAIT_FLOOR:,}/s)")
    assert rate > TIMEOUT_WAIT_FLOOR


def test_dispatch_rate_floor():
    rate = bench_dispatch_rate(rounds=2000, repeats=3)
    print(f"\ndispatches: {rate:,.0f}/s (floor {DISPATCH_FLOOR:,}/s)")
    assert rate > DISPATCH_FLOOR, (
        f"dispatch rate {rate:,.0f}/s fell below the {DISPATCH_FLOOR:,}/s "
        f"floor — the SIM_API dispatch/scheduler hot path regressed"
    )


def test_scheduler_ops_floor():
    rate = bench_scheduler_ops(threads=64, rounds=500, repeats=3)
    print(f"\nscheduler ops: {rate:,.0f}/s (floor {SCHEDULER_OPS_FLOOR:,}/s)")
    assert rate > SCHEDULER_OPS_FLOOR, (
        f"ready-queue ops {rate:,.0f}/s fell below the "
        f"{SCHEDULER_OPS_FLOOR:,}/s floor — the bitmap scheduler regressed"
    )
