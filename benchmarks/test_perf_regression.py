"""Perf-regression floors for the PR-3 fast core.

Guards the ISSUE 3 acceptance criteria with *generous, noise-tolerant*
absolute floors: the development host measures far above these (see the
table), so a slow CI host still passes while a structural regression —
re-introducing per-wait allocations, a sorted() scan in the scheduler, a
SimTime round-trip in the kernel loop — lands well below the wire.

Measured on the development host (CPython 3.11; the "PR 2" column is the
PR-2 code re-measured on *this* host at PR-3 time — PR 2's own table
recorded ~495k/~313k on its host):

====================  ==============  ==============
workload              PR 2            PR 3 (this)
====================  ==============  ==============
timed waits/s         ~497,000        ~1,400,000
event+timeout waits/s ~337,000        ~570,000
dispatches/s          (unmeasured)    ~68,000
scheduler ops/s       (unmeasured)    ~4,000,000
====================  ==============  ==============

PR 10 (the second hot-plane pass) added the event-pipeline and artifact-I/O
floors; the development host measured ~97,000 dispatches/s, ~280,000
streamed events/s, ~1,300 store puts/s and ~7,800 indexed runs/s — each
floor again sits ~5x and more below its measurement.

The floors sit far below the measured figures.  ``repro bench`` records
the precise numbers per PR in ``BENCH_PR<n>.json``; this module only trips
on gross regressions.
"""

from repro.perf.bench import (
    bench_analytics,
    bench_dispatch_rate,
    bench_event_stream,
    bench_scheduler_ops,
    bench_store_put,
    bench_timed_wait_throughput,
    bench_timeout_wait_throughput,
)

#: Conservative absolute floors for any plausible host.
TIMED_WAIT_FLOOR = 180_000
TIMEOUT_WAIT_FLOOR = 90_000
DISPATCH_FLOOR = 18_000
SCHEDULER_OPS_FLOOR = 500_000
EVENT_STREAM_FLOOR = 50_000
STORE_PUT_FLOOR = 200
INDEX_RUNS_FLOOR = 1_200


def test_timed_wait_throughput_floor():
    rate = bench_timed_wait_throughput(waits=4000, repeats=3)
    print(f"\ntimed waits: {rate:,.0f}/s (floor {TIMED_WAIT_FLOOR:,}/s)")
    assert rate > TIMED_WAIT_FLOOR, (
        f"timed-wait throughput {rate:,.0f}/s fell below the "
        f"{TIMED_WAIT_FLOOR:,}/s floor — the kernel wait hot path regressed"
    )


def test_timeout_wait_throughput_floor():
    rate = bench_timeout_wait_throughput(waits=2000, repeats=3)
    print(f"\ntimeout waits: {rate:,.0f}/s (floor {TIMEOUT_WAIT_FLOOR:,}/s)")
    assert rate > TIMEOUT_WAIT_FLOOR


def test_dispatch_rate_floor():
    rate = bench_dispatch_rate(rounds=2000, repeats=3)
    print(f"\ndispatches: {rate:,.0f}/s (floor {DISPATCH_FLOOR:,}/s)")
    assert rate > DISPATCH_FLOOR, (
        f"dispatch rate {rate:,.0f}/s fell below the {DISPATCH_FLOOR:,}/s "
        f"floor — the SIM_API dispatch/scheduler hot path regressed"
    )


def test_scheduler_ops_floor():
    rate = bench_scheduler_ops(threads=64, rounds=500, repeats=3)
    print(f"\nscheduler ops: {rate:,.0f}/s (floor {SCHEDULER_OPS_FLOOR:,}/s)")
    assert rate > SCHEDULER_OPS_FLOOR, (
        f"ready-queue ops {rate:,.0f}/s fell below the "
        f"{SCHEDULER_OPS_FLOOR:,}/s floor — the bitmap scheduler regressed"
    )


def test_event_stream_floor():
    rate = bench_event_stream(events=8000, repeats=3)["stream_events_per_s"]
    print(f"\nevent stream: {rate:,.0f}/s (floor {EVENT_STREAM_FLOOR:,}/s)")
    assert rate > EVENT_STREAM_FLOOR, (
        f"streamed-event throughput {rate:,.0f}/s fell below the "
        f"{EVENT_STREAM_FLOOR:,}/s floor — the publish→encode→write "
        f"pipeline regressed"
    )


def test_store_put_floor():
    rate = bench_store_put(puts=60, repeats=3)["put_per_s"]
    print(f"\nstore puts: {rate:,.0f}/s (floor {STORE_PUT_FLOOR:,}/s)")
    assert rate > STORE_PUT_FLOOR, (
        f"store put rate {rate:,.0f}/s fell below the {STORE_PUT_FLOOR:,}/s "
        f"floor — the single-write artifact path regressed"
    )


def test_index_build_floor():
    rate = bench_analytics(runs=32, repeats=3, queries=5)["index_runs_per_s"]
    print(f"\nindex build: {rate:,.0f} runs/s (floor {INDEX_RUNS_FLOOR:,}/s)")
    assert rate > INDEX_RUNS_FLOOR, (
        f"corpus index build {rate:,.0f} runs/s fell below the "
        f"{INDEX_RUNS_FLOOR:,}/s floor — the single-walk batched build "
        f"regressed"
    )
