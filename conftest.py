"""Pytest root configuration.

Ensures the in-tree ``src`` layout is importable even when the package has
not been installed (the CI environment for this reproduction is offline, so
``pip install -e .`` may not be able to bootstrap wheel/setuptools).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
