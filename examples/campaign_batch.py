#!/usr/bin/env python3
"""A simulation campaign: one parameter matrix, many parallel runs.

Expands the scheduler-comparison scenario across both RTK-Spec kernels and
a seed sweep, fans the runs out over multiprocessing workers, and prints
the aggregate — the programmatic twin of:

    python -m repro batch --scenario rtk-round-robin --scenario rtk-priority \
        --matrix seed=1,2 --matrix task_count=4,6 --out campaign_out

Sweeps run **fused** by default (``--fuse``): many members per worker
process, compositions memoized, events shipped back only when needed —
about 2x a per-process sweep on short-run families, with byte-identical
artifacts.  ``--no-fuse`` (or ``fuse=False`` below) restores the
one-process-round-trip-per-run engine, and the perf-trend gate keeps the
difference honest across PRs:

    python -m repro bench compare BENCH_PR6.json BENCH_PR7.json

The script then repeats the sweep through a grid result store
(``repro.grid.ResultStore``): the second pass completes entirely from
cache — zero simulations — with the deterministic aggregate byte-identical
to the fresh one.

The same sweep scales out across hosts with the shard verbs.  Every worker
expands the same matrix and takes its deterministic slice; the merge is
byte-identical (``aggregate.json`` + per-run event streams) to running the
whole batch on one host:

    SWEEP="--scenario rtk-round-robin --scenario rtk-priority \
           --matrix seed=1,2 --matrix task_count=4,6"
    python -m repro shard plan  --shards 4 --index 3 $SWEEP   # what runs where
    python -m repro shard run   --shards 4 --index $I $SWEEP \
        --cache sweep_cache --out shard$I                     # per host/process
    python -m repro shard merge shard0 shard1 shard2 shard3 --out merged

Interrupted shards resume from the cache, skipping completed runs.

Run with:  python examples/campaign_batch.py [workers]
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import plan_batch, run_batch


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None

    specs = plan_batch(
        ["rtk-round-robin", "rtk-priority"],
        matrix={"seed": [1, 2], "task_count": [4, 6]},
        overrides={"duration_ms": 150.0},
    )
    print(f"matrix expanded to {len(specs)} runs:")
    for spec in specs:
        print(f"  {spec.name:<40} kernel={spec.kernel:<9} seed={spec.seed}")

    batch = run_batch(specs, workers=workers)          # fused by default
    print(f"\nexecuted on {batch.workers} worker(s), fused")

    # The pre-fused engine produces the same bytes, just slower.
    unfused = run_batch(specs, workers=workers, fuse=False)
    assert unfused.aggregate == batch.aggregate

    print("\nper-run completions (workload metrics):")
    for result in batch.results:
        workload = result.metrics["workload_metrics"]
        print(f"  {result.metrics['scenario']:<40} "
              f"completions={workload['completions']} "
              f"makespan={workload['makespan_ms']} ms "
              f"preemptions={result.metrics['preemptions']}")

    aggregate = batch.aggregate
    print(f"\naggregate over {aggregate['runs']} runs:")
    for key in ("context_switches", "preemptions", "energy_mj"):
        print(f"  total {key:<18} {aggregate['total'][key]:g}")

    out_dir = os.path.join(tempfile.gettempdir(), "repro_campaign_example")
    manifest = batch.write_outputs(out_dir)
    print(f"\nartifacts: {manifest['metrics']} + {len(manifest['events'])} event files")

    # The grid result store: repeat the sweep, simulate nothing.
    from repro.grid import ResultStore
    from repro.obs.bus import canonical_json

    store = ResultStore(os.path.join(out_dir, "cache"))
    warm = run_batch(specs, workers=workers, store=store)     # fills the store
    cached = run_batch(specs, workers=workers, store=store)   # replays it
    assert cached.cache_hits == len(specs)
    assert canonical_json(cached.deterministic_document()) == \
        canonical_json(warm.deterministic_document())
    print(f"cached re-run: {cached.cache_hits}/{len(specs)} hits, "
          f"aggregate byte-identical ({store})")


if __name__ == "__main__":
    main()
