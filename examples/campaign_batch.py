#!/usr/bin/env python3
"""A simulation campaign: one parameter matrix, many parallel runs.

Expands the scheduler-comparison scenario across both RTK-Spec kernels and
a seed sweep, fans the runs out over multiprocessing workers, and prints
the aggregate — the programmatic twin of:

    python -m repro batch --scenario rtk-round-robin --scenario rtk-priority \
        --matrix seed=1,2 --matrix task_count=4,6 --out campaign_out

Run with:  python examples/campaign_batch.py [workers]
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import plan_batch, run_batch


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None

    specs = plan_batch(
        ["rtk-round-robin", "rtk-priority"],
        matrix={"seed": [1, 2], "task_count": [4, 6]},
        overrides={"duration_ms": 150.0},
    )
    print(f"matrix expanded to {len(specs)} runs:")
    for spec in specs:
        print(f"  {spec.name:<40} kernel={spec.kernel:<9} seed={spec.seed}")

    batch = run_batch(specs, workers=workers)
    print(f"\nexecuted on {batch.workers} worker(s)")

    print("\nper-run completions (workload metrics):")
    for result in batch.results:
        workload = result.metrics["workload_metrics"]
        print(f"  {result.metrics['scenario']:<40} "
              f"completions={workload['completions']} "
              f"makespan={workload['makespan_ms']} ms "
              f"preemptions={result.metrics['preemptions']}")

    aggregate = batch.aggregate
    print(f"\naggregate over {aggregate['runs']} runs:")
    for key in ("context_switches", "preemptions", "energy_mj"):
        print(f"  total {key:<18} {aggregate['total'][key]:g}")

    out_dir = os.path.join(tempfile.gettempdir(), "repro_campaign_example")
    manifest = batch.write_outputs(out_dir)
    print(f"\nartifacts: {manifest['metrics']} + {len(manifest['events'])} event files")


if __name__ == "__main__":
    main()
