#!/usr/bin/env python3
"""Quickstart: run the built-in producer/consumer scenario via the campaign.

Since the campaign subsystem landed, the smallest useful scenario is one
registry lookup away: a kernel with producer tasks signalling semaphores,
consumer tasks waiting on them and a cyclic heartbeat handler.  This script
shows the three things every user of the campaign layer touches:

1. fetching (and overriding) a declarative ``ScenarioSpec`` from the registry,
2. executing it with ``run_spec`` into a structured ``RunResult``,
3. reading the result: deterministic metrics, host timing, the JSONL-able
   event stream — and the classic Gantt chart via ``build_scenario`` when
   you want to hold the live simulator yourself.

The command-line equivalent of this script is:

    python -m repro run quickstart --set duration_ms=50

Since the grid subsystem (PR 4) the same run also caches: point the run at
a result store and a repeat replays the stored metrics + event stream
byte-identically instead of re-simulating —

    python -m repro run quickstart --cache ~/.cache/repro-grid   # simulates
    python -m repro run quickstart --cache ~/.cache/repro-grid   # cache hit
    python -m repro cache stats    --cache ~/.cache/repro-grid

(or export REPRO_CACHE_DIR once and drop the flag; --no-cache / --refresh
are the escape hatches).  Specs also load from files: save
``json.dumps(spec.to_dict())`` anywhere and run it with
``python -m repro run --spec myspec.json``.

Once a cache holds runs, the analytics plane (PR 6) answers questions
across all of them without simulating anything —

    python -m repro index build --cache ~/.cache/repro-grid
    python -m repro query --cache ~/.cache/repro-grid \
        --group-by spec.kernel --agg count --agg mean:cpu_utilization
    python -m repro report audit --cache ~/.cache/repro-grid

(see examples/trace_analytics.py for the full walkthrough).

Sweeps fuse by default since PR 7 — ``python -m repro batch ...`` runs many
members per worker process, reusing compositions and event plumbing
(``--no-fuse`` opts out; artifacts are byte-identical either way), and the
perf trajectory is enforceable.

Reading BENCH files: every perf PR commits a ``BENCH_PR<n>.json``
(``python -m repro bench --out ...``) — sections ``microbench`` (dispatch
loop), ``events``/``store`` (publish + artifact I/O, PR 10), ``grid``
(cache hit vs fresh), ``batch`` (fused vs per-process), ``analytics``
(index build/query), ``scenarios``/``table2`` (the paper's S/R speed
measure), plus a ``host`` echo.  Microbenchmark wall clocks are the
*minimum* over repeats (sheds scheduler noise); ``*_per_s``/``s_over_r``
are higher-is-better, ``*_seconds``/``*_ms`` lower, and the gate infers
direction from those suffixes:

    python -m repro bench compare BENCH_PR8.json BENCH_PR10.json

exits 0 when no directional metric regressed beyond ``--max-regress``
(default 10%), 1 on a regression, 2 on an unusable report.  Two reports
from *different hosts* (or different core counts) will trip on metrics
the code never touched; filter those rows out rather than loosening the
threshold —

    python -m repro bench compare OLD NEW --ignore 'host.*' \
        --ignore 'scenarios.*'           # fnmatch globs over flat keys
    python -m repro bench compare OLD NEW --preset code-metrics
        # the curated list: host echoes, config knobs (members/runs/
        # workers) and workload-shape tallies — keeps every dispatch/
        # publish/store/index code gate active

The table footer reports ``[N key(s) ignored via M glob(s)]`` so a
too-broad glob is visible in the output it silences.

When sweeps fail (PR 8), the sweep keeps going: a bad member is retried
(transient failures re-run the identical spec + seed, up to
``--max-attempts``), runaway runs are cancelled by watchdog budgets, and
persistent failures quarantine with a structured record in a
``failures.jsonl`` sidecar while every healthy run completes and
aggregates —

    python -m repro batch --family big_family.json --cache DIR \
        --run-timeout 30 --max-attempts 3        # exit 1: partial, usable
    cat campaign_out/failures.jsonl              # who failed, where, why
    python -m repro cache verify --cache DIR --repair   # quarantine rot
    python -m repro batch --family big_family.json --cache DIR  # resume:
        # completed runs replay from the store, only the gaps simulate

Shard merges degrade the same way: ``repro shard merge ... --allow-partial``
merges whatever exists and writes a ``coverage.json`` naming the missing
run indices and absent shards (``--fail-fast`` flips a sweep to abort on
first failure with exit 2 instead).

Run with:  python examples/quickstart.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import build_scenario, get_scenario, run_spec
from repro.sysc import SimTime, Simulator


def main():
    # 1. A declarative spec from the registry, with a knob override.
    spec = get_scenario("quickstart").with_overrides({"items": 5}).validate()
    print(f"spec: {json.dumps(spec.to_dict(), sort_keys=True)}")

    # 2. One in-process run -> structured result.
    result = run_spec(spec)

    print("\n--- deterministic metrics ---")
    for key in ("context_switches", "preemptions", "interrupts",
                "syscall_total", "cpu_utilization", "energy_mj"):
        print(f"{key:<18} {result.metrics[key]}")
    print(f"{'workload':<18} {result.metrics['workload_metrics']}")

    print("\n--- host timing (Table 2 speed measure) ---")
    print(f"R = {result.timing['wall_clock_seconds']:.3f} s   "
          f"S/R = {result.timing['s_over_r']:.1f}")

    print("\n--- first 10 events of the JSONL stream ---")
    for event in result.events[:10]:
        print(json.dumps(event, sort_keys=True))

    # 3. Holding the live simulator: build the same scenario yourself when
    #    you want the debugging output (Gantt chart, energy statistics).
    build = build_scenario(spec)
    build.simulator.run(SimTime.ms(spec.duration_ms))
    print("\n--- Gantt chart (first 50 ms) ---")
    print(build.api.gantt.render(0, SimTime.ms(50)))
    print("\n--- energy statistics ---")
    for name, stats in build.api.energy_statistics().items():
        print(f"{name:<12} CET {stats['cet_ms']:7.2f} ms   CEE {stats['cee_mj']:.4f} mJ")
    Simulator.reset()


if __name__ == "__main__":
    main()
