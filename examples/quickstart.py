#!/usr/bin/env python3
"""Quickstart: boot RTK-Spec TRON, run two tasks and print the Gantt chart.

This is the smallest useful scenario: a kernel with a producer task signalling
a semaphore and a consumer task waiting on it, plus a cyclic handler.  It
shows the three things every user of the library touches:

1. a ``user_main`` generator creating kernel objects and tasks,
2. task bodies expressing execution time with ``api.sim_wait`` and using
   ``tk_*`` services via ``yield from``,
3. the debugging output (Gantt chart, energy statistics, T-Kernel/DS listing).

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator
from repro.tkernel import TKernelDS, TKernelOS


def build_user_main(log):
    """Return the user_main generator creating the demo scenario."""

    def user_main(kernel):
        api = kernel.api
        semid = yield from kernel.tk_cre_sem(isemcnt=0, maxsem=4, name="items")

        def producer(stacd, exinf):
            for index in range(5):
                yield from api.sim_wait(duration=SimTime.ms(3), label="produce")
                yield from kernel.tk_sig_sem(semid)
                log.append(("produced", index, kernel.simulator.now.to_ms()))

        def consumer(stacd, exinf):
            for index in range(5):
                yield from kernel.tk_wai_sem(semid)
                yield from api.sim_wait(duration=SimTime.ms(1), label="consume")
                log.append(("consumed", index, kernel.simulator.now.to_ms()))

        def heartbeat(exinf):
            yield from api.sim_wait(duration=SimTime.us(200),
                                    context=ExecutionContext.HANDLER)
            log.append(("heartbeat", kernel.simulator.now.to_ms()))

        producer_id = yield from kernel.tk_cre_tsk(producer, itskpri=10, name="producer")
        consumer_id = yield from kernel.tk_cre_tsk(consumer, itskpri=5, name="consumer")
        yield from kernel.tk_sta_tsk(producer_id)
        yield from kernel.tk_sta_tsk(consumer_id)
        cycid = yield from kernel.tk_cre_cyc(heartbeat, cyctim=10, name="heartbeat")
        yield from kernel.tk_sta_cyc(cycid)

    return user_main


def main():
    log = []
    simulator = Simulator("quickstart")
    kernel = TKernelOS(simulator, user_main=build_user_main(log))
    simulator.run(SimTime.ms(50))

    print("--- event log ---")
    for entry in log:
        print(entry)

    print("\n--- Gantt chart (first 50 ms) ---")
    print(kernel.api.gantt.render(0, SimTime.ms(50)))

    print("\n--- energy statistics ---")
    for name, stats in kernel.api.energy_statistics().items():
        print(f"{name:<12} CET {stats['cet_ms']:7.2f} ms   CEE {stats['cee_mj']:.4f} mJ")

    print("\n--- T-Kernel/DS listing ---")
    print(TKernelDS(kernel).render_listing())


if __name__ == "__main__":
    main()
