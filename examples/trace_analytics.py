#!/usr/bin/env python3
"""The trace analytics plane: index a warm corpus, query it, audit it.

A sweep leaves a content-addressed result store behind; everything after
that is pure artifact analysis — the corpus index is a deterministic
function of the store, queries and reports never construct a simulator,
and pipeline telemetry (host wall-clock phase spans) lives strictly in a
sidecar, never inside the deterministic artifacts.  The CLI twin:

    python -m repro batch --family family.json --cache sweep_cache \
        --out out/ --telemetry           # spans -> out/telemetry.jsonl
    python -m repro index build --cache sweep_cache
    python -m repro index status --cache sweep_cache
    python -m repro query --cache sweep_cache \
        --where kernel=tkernel --group-by spec.workload \
        --agg count --agg mean:cpu_utilization --json
    python -m repro report audit     --cache sweep_cache
    python -m repro report deadlines --cache sweep_cache
    python -m repro report latency   --cache sweep_cache
    python -m repro report family    --cache sweep_cache
    python -m repro report telemetry out/telemetry.jsonl

Run with:  python examples/trace_analytics.py
"""

import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.analytics import (  # noqa: E402
    build_index,
    deadline_report,
    family_report,
    format_telemetry_summary,
    index_status,
    latency_report,
    open_index,
    schedulability_audit,
    TelemetryRecorder,
)
from repro.campaign.batch import run_batch  # noqa: E402
from repro.grid.store import ResultStore  # noqa: E402
from repro.obs.bus import canonical_json  # noqa: E402
from repro.workload.families import FamilySpec, expand_family  # noqa: E402


def main():
    root = tempfile.mkdtemp(prefix="repro-analytics-demo-")
    store = ResultStore(os.path.join(root, "cache"))

    # 1. One small periodic family swept into the store — the only phase
    #    that simulates anything.  The recorder collects pipeline spans.
    family = FamilySpec(name="demo", count=6, seed=17, duration_ms=30.0,
                        laws=("periodic",)).validate()
    telemetry = TelemetryRecorder()
    run_batch(expand_family(family), workers=1, collect_events=False,
              store=store, telemetry=telemetry)
    print(format_telemetry_summary(telemetry.summary()))

    # 2. Index the corpus: one row per run, spec knobs x metrics, rebuilt
    #    as a pure function of the store (wall clock never enters it).
    stats = build_index(store)
    print(f"\nindexed {stats['runs']} runs x {stats['columns']} columns")
    print(f"fresh: {index_status(store)['fresh']}")

    # 3. Ask questions across the corpus — no simulation from here on.
    with open_index(store) as index:
        headers, rows = index.query(
            group_by=["spec.kernel"],
            aggregate=["count", "mean:metrics.cpu_utilization",
                       "max:metrics.preemptions"],
        )
        print("\n--- grouped query (canonical JSON) ---")
        print(canonical_json(index.documents(headers, rows)))

        print("\n--- schedulability audit (RM bound) ---")
        for row in schedulability_audit(index):
            print(f"{row['name']:<12} U={row['requested_utilization']:.3f} "
                  f"bound={row['rm_bound']:.3f}  {row['verdict']}")

        print("\n--- deadline reconstruction ---")
        for row in deadline_report(index, store):
            print(f"{row['name']:<12} jobs={row['jobs']:<3} "
                  f"misses={row['misses']:<3} "
                  f"p99 response {row['response_p99_ms']:.2f} ms")

        print("\n--- execution-slice latency (aggregate) ---")
        print(canonical_json(latency_report(index, store)["aggregate"]))

        print("\n--- per-family means ---")
        for row in family_report(index):
            print(f"{row['family']:<12} runs={row['runs']} "
                  f"mean CPU {row['mean.metrics.cpu_utilization']:.3f}")


if __name__ == "__main__":
    main()
