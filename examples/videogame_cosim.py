#!/usr/bin/env python3
"""The full case study: video game on RTK-Spec TRON + i8051 BFM + widgets.

Reproduces the paper's section 5 scenario headlessly: the game runs for a
configurable simulated duration while a scripted user presses keypad keys
(raising external interrupts); afterwards the script prints the virtual
prototype dashboard, the Fig. 6 execution trace, the Fig. 7 energy
distribution and the Fig. 8 kernel listing.

Run with:  python examples/videogame_cosim.py [simulated_ms]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import ExecutionTraceReport, TimeEnergyDistribution
from repro.app import CoSimulationFramework, FrameworkConfig
from repro.app.videogame import VideoGameConfig
from repro.sysc import SimTime


def main():
    simulated_ms = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    config = FrameworkConfig(
        simulated_duration=SimTime.ms(simulated_ms),
        gui_enabled=True,
        game=VideoGameConfig(lcd_update_period_ms=10, game_over_ms=simulated_ms - 50),
        key_script=FrameworkConfig.default_key_script(simulated_ms, period_ms=80),
        trace_waveforms=True,
    )
    framework = CoSimulationFramework(config)
    results = framework.run()

    print(f"simulated {results['simulated_seconds']:.3f} s "
          f"in {results['wall_clock_seconds']:.3f} s wall clock "
          f"(S/R = {results['s_over_r']:.1f})")
    print(f"frames rendered: {results['application']['frames_rendered']}   "
          f"keys handled: {results['application']['keys_handled']}   "
          f"score: {results['application']['score']}")
    print(f"BFM accesses: {results['bfm']['bus_accesses']}   "
          f"interrupts raised: {results['bfm']['interrupts_raised']}")

    print("\n--- virtual prototype dashboard ---")
    print(framework.widgets.render_dashboard())

    print("\n--- execution time/energy trace (Fig. 6), first 200 ms ---")
    report = ExecutionTraceReport(framework.api, 0, SimTime.ms(200))
    print(report.render())

    print("\n--- consumed time/energy distribution (Fig. 7) ---")
    print(TimeEnergyDistribution(framework.api).render())

    print("\n--- T-Kernel/DS listing (Fig. 8) ---")
    print(framework.debugger.render_listing())

    if framework.trace is not None:
        print("\n--- bus waveform (Fig. 4), first 50 ms ---")
        print(framework.trace.render_ascii(stop=SimTime.ms(50), step=SimTime.ms(1)))


if __name__ == "__main__":
    main()
