#!/usr/bin/env python3
"""A tour of the T-Kernel synchronization & communication services.

Demonstrates every object class the paper's T-Kernel/OS model provides:
event flags, semaphores, mutexes (with priority inheritance), mailboxes,
message buffers and memory pools, in one multi-task scenario.

Run with:  python examples/sync_primitives_tour.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sysc import SimTime, Simulator
from repro.tkernel import (
    TA_INHERIT,
    TA_WMUL,
    TKernelDS,
    TKernelOS,
    TWF_ANDW,
    error_name,
)


def user_main(kernel):
    api = kernel.api
    flag_id = yield from kernel.tk_cre_flg(iflgptn=0, flgatr=TA_WMUL, name="phases")
    mutex_id = yield from kernel.tk_cre_mtx(mtxatr=TA_INHERIT, name="shared_state")
    mailbox_id = yield from kernel.tk_cre_mbx(name="commands")
    buffer_id = yield from kernel.tk_cre_mbf(bufsz=64, maxmsz=16, name="samples")
    pool_id = yield from kernel.tk_cre_mpf(mpfcnt=3, blfsz=32, name="frame_pool")

    def sensor(stacd, exinf):
        """Produces samples into the message buffer and signals phase bits."""
        for sample in range(4):
            yield from api.sim_wait(duration=SimTime.ms(2), label="sample")
            yield from kernel.tk_snd_mbf(buffer_id, ("sample", sample), size=4)
            yield from kernel.tk_set_flg(flag_id, 0b01)
        yield from kernel.tk_snd_mbx(mailbox_id, "shutdown")
        yield from kernel.tk_set_flg(flag_id, 0b10)

    def processor(stacd, exinf):
        """Consumes samples under a mutex-protected critical section."""
        while True:
            ercd, payload, size = yield from kernel.tk_rcv_mbf(buffer_id, tmout=50)
            if ercd != 0:
                print(f"[processor] receive ended: {error_name(ercd)}")
                return
            yield from kernel.tk_loc_mtx(mutex_id)
            yield from api.sim_wait(duration=SimTime.ms(1), label="process")
            yield from kernel.tk_unl_mtx(mutex_id)
            ercd, block = yield from kernel.tk_get_mpf(pool_id)
            print(f"[processor] {payload} -> block {block.block_id}")
            yield from kernel.tk_rel_mpf(pool_id, block)

    def supervisor(stacd, exinf):
        """Waits for both phase bits, then handles the mailbox command."""
        pattern = yield from kernel.tk_wai_flg(flag_id, 0b11, TWF_ANDW)
        print(f"[supervisor] phases complete (pattern 0b{pattern:b}) "
              f"at {kernel.simulator.now.to_ms():.1f} ms")
        ercd, command = yield from kernel.tk_rcv_mbx(mailbox_id)
        print(f"[supervisor] command: {command}")

    for name, fn, pri in [("sensor", sensor, 10), ("processor", processor, 8),
                          ("supervisor", supervisor, 5)]:
        task_id = yield from kernel.tk_cre_tsk(fn, itskpri=pri, name=name)
        yield from kernel.tk_sta_tsk(task_id)


def main():
    simulator = Simulator("sync-tour")
    kernel = TKernelOS(simulator, user_main=user_main)
    simulator.run(SimTime.ms(120))
    print("\n--- final kernel state ---")
    print(TKernelDS(kernel).render_listing())


if __name__ == "__main__":
    main()
