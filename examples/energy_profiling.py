#!/usr/bin/env python3
"""Energy profiling with the battery widget (Fig. 7 workflow).

Runs the video-game co-simulation for a short window, prints the CET/CEE
distribution over T-THREADs, the projected 10 Wh battery lifespan, and shows
how moving work out of the heaviest software task (shrinking its cycle
budget, as a stand-in for moving it to hardware) changes the distribution —
the HW/SW partitioning decision the paper motivates.

Run with:  python examples/energy_profiling.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import TimeEnergyDistribution
from repro.app import CoSimulationFramework, FrameworkConfig
from repro.app.videogame import VideoGameConfig
from repro.sysc import SimTime


def profile(render_cycles: int, label: str):
    config = FrameworkConfig(
        simulated_duration=SimTime.ms(400),
        gui_enabled=False,
        game=VideoGameConfig(lcd_update_period_ms=10, render_cycles=render_cycles),
        key_script=FrameworkConfig.default_key_script(400),
    )
    framework = CoSimulationFramework(config)
    framework.run()
    distribution = TimeEnergyDistribution(framework.api)
    print(f"=== {label} (render budget {render_cycles} cycles) ===")
    print(distribution.render())
    lifespan = distribution.battery_lifespan_hours()
    dominant = ", ".join(distribution.dominant_consumers())
    print(f"dominant consumers: {dominant}")
    if lifespan is not None:
        print(f"projected battery lifespan: {lifespan:.1f} hours")
    print()
    return distribution


def main():
    software_rendering = profile(render_cycles=400, label="software rendering")
    hardware_rendering = profile(render_cycles=40, label="rendering moved to hardware")

    software_total = software_rendering.totals()["total_cee_mj"]
    hardware_total = hardware_rendering.totals()["total_cee_mj"]
    print(f"software CEE {software_total:.4f} mJ  ->  "
          f"hardware-assisted CEE {hardware_total:.4f} mJ "
          f"({(1 - hardware_total / software_total) * 100:.1f}% saved)")


if __name__ == "__main__":
    main()
