#!/usr/bin/env python3
"""RTK-Spec I vs RTK-Spec II: the same task set under two schedulers.

Section 4 of the paper validates SIM_API coverage with two user-defined
kernels: RTK-Spec I (round robin) and RTK-Spec II (priority preemptive).
This example runs an identical four-task workload on both and prints how the
completion order and response times differ.

Run with:  python examples/rtkspec_scheduler_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.rtkspec import RTKSpec1, RTKSpec2
from repro.sysc import SimTime, Simulator


WORKLOAD = [
    # (name, priority, execution_ms)
    ("logger", 30, 12),
    ("control", 5, 6),
    ("comms", 15, 9),
    ("background", 40, 15),
]


def run_workload(kernel_class, **kwargs):
    simulator = Simulator(kernel_class.__name__)
    kernel = kernel_class(simulator, **kwargs)
    completions = {}

    def make_body(name, execution_ms):
        def body():
            yield from kernel.api.sim_wait(duration=SimTime.ms(execution_ms), label=name)
            completions[name] = simulator.now.to_ms()
        return body

    for name, priority, execution_ms in WORKLOAD:
        task = kernel.create_task(make_body(name, execution_ms), priority=priority,
                                  name=name)
        kernel.start_task(task)
    simulator.run(SimTime.ms(200))
    return kernel, completions


def main():
    for kernel_class, kwargs in [(RTKSpec1, {"time_slice_ticks": 4}), (RTKSpec2, {})]:
        kernel, completions = run_workload(kernel_class, **kwargs)
        print(f"=== {kernel.kernel_name} ({kernel.describe()['scheduler']}) ===")
        for name, finished in sorted(completions.items(), key=lambda item: item[1]):
            print(f"  {name:<12} finished at {finished:6.1f} ms")
        print(f"  preemptions: {kernel.api.preemption_count}   "
              f"dispatches: {kernel.api.dispatch_count}")
        print()
    print("RTK-Spec II finishes the high-priority 'control' task first;")
    print("RTK-Spec I shares the CPU fairly so everything finishes late together.")


if __name__ == "__main__":
    main()
