#!/usr/bin/env python3
"""Table 2 from the command line: the co-simulation speed sweep.

Runs the video-game co-simulation with and without GUI-callback overhead and
across several BFM access rates (how often a BFM access burst drives the LCD
widget), then prints the Table 2 rows: simulated time S, wall clock R, R/S
and S/R.

Run with:  python examples/cosim_speed_sweep.py [simulated_ms]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.speed import measure_speed_table, render_speed_table
from repro.sysc import SimTime


def main():
    simulated_ms = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    rows = measure_speed_table(
        lcd_update_periods_ms=(10, 20, 50, 100),
        simulated_duration=SimTime.ms(simulated_ms),
    )
    print(render_speed_table(rows))
    no_gui = [row for row in rows if not row.gui_enabled][0]
    fastest_gui = [row for row in rows if row.gui_enabled and
                   row.lcd_update_period_ms == 10][0]
    print()
    print(f"GUI overhead at the maximum BFM access rate slows the co-simulation "
          f"by {fastest_gui.r_over_s / no_gui.r_over_s:.2f}x "
          f"(paper: about 2x, S/R 0.2 -> 0.1).")


if __name__ == "__main__":
    main()
