#!/usr/bin/env python3
"""A generated workload family swept through the sharded grid.

One small seeded :class:`~repro.workload.FamilySpec` document expands into
dozens of distinct-but-reproducible scenarios — periodic / jittered /
sporadic / bursty arrival laws, service-call mixes, cyclic handler
patterns, mixed kernel models — which flow through the result store and
the shard planner exactly like hand-written specs.  The CLI twin:

    cat > family.json <<'JSON'
    {"schema": "repro-workload-family/1", "name": "demo", "count": 24,
     "seed": 7, "kernels": ["tkernel", "rtkspec2"], "duration_ms": 15.0}
    JSON
    python -m repro shard run --shards 2 --index 0 --family family.json \
        --cache sweep_cache --out shard0
    python -m repro shard run --shards 2 --index 1 --family family.json \
        --cache sweep_cache --out shard1
    python -m repro shard merge shard0 shard1 --out merged
    python -m repro batch --family family.json --cache sweep_cache \
        --out warm      # second sweep: every run is a cache hit

Inspect any member's composed parts with:

    python -m repro describe --spec member.json      # ScenarioSpec document

Run with:  python examples/workload_families.py [workers]
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import run_batch, spec_hash
from repro.grid import ResultStore
from repro.grid.shard import plan_all_shards
from repro.obs.bus import canonical_json
from repro.workload import FamilySpec, expand_family


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None

    family = FamilySpec(
        name="demo",
        count=24,
        seed=7,
        kernels=("tkernel", "rtkspec2"),
        duration_ms=15.0,
        cyclic_rate=0.3,
        rtc_rate=0.2,
    )
    members = expand_family(family)
    print(f"family {family.name!r} expanded to {len(members)} members "
          f"({len({spec_hash(s) for s in members})} distinct spec hashes):")
    for spec in members[:6]:
        laws = ",".join(task["law"] for task in spec.extra["tasks"])
        print(f"  {spec.name:<12} kernel={spec.kernel:<9} "
              f"tasks={spec.task_count} laws=[{laws}]")
    print("  ...")

    # Shard the family across two simulated hosts, no coordinator needed:
    # both expand the same document and take deterministic slices.
    plans = plan_all_shards(members, shards=2)
    for plan in plans:
        print(f"shard {plan.index}/{plan.shards}: {len(plan)} members")

    out_dir = os.path.join(tempfile.gettempdir(), "repro_family_example")
    store = ResultStore(os.path.join(out_dir, "cache"))

    cold = run_batch(members, workers=workers, store=store)
    print(f"\ncold sweep: {len(cold.results)} runs, "
          f"{cold.cache_hits} cache hits, "
          f"{cold.aggregate['total']['context_switches']:.0f} context switches")

    warm = run_batch(members, workers=workers, store=store)
    assert warm.cache_hits == len(members), "warm sweep simulated something"
    assert canonical_json(warm.deterministic_document()) == \
        canonical_json(cold.deterministic_document())
    print(f"warm sweep: {warm.cache_hits}/{len(members)} cache hits — "
          "zero simulations, aggregate byte-identical")

    manifest = cold.write_outputs(out_dir)
    print(f"artifacts: {manifest['metrics']} + "
          f"{len(manifest['events'])} event files")


if __name__ == "__main__":
    main()
