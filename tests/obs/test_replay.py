"""Replay round trips and damaged-stream recovery.

``event_from_dict(event_to_dict(e))`` must reproduce topic, kind,
timestamp and payload shape for every topic in the bus namespace — the
``sched`` topic restores the exact in-process shape (``dur_ns``,
:class:`ExecutionContext`), the rest keep their serialized payloads.
``read_events_jsonl`` stays strict by default (stored cache artifacts are
digest-verified, so a decode error is corruption worth crashing on) and
recovers with ``recover=True`` — malformed lines and truncated tails are
skipped, yielding the valid prefix.
"""

import io
import json

import pytest

from repro.core.events import ExecutionContext
from repro.obs.bus import TOPICS, Event, canonical_json, event_to_dict
from repro.obs.replay import event_from_dict, read_events_jsonl


def sample_event(topic):
    """One representative event per bus topic."""
    if topic == "sched":
        return Event("sched", "exec", 1_500_000, {
            "thread": "worker", "dur_ns": 250_000,
            "context": ExecutionContext.TASK,
            "energy_nj": 12.5, "label": "slice",
        })
    return Event(topic, f"{topic}_kind", 2_000_000, {
        "detail": f"{topic}-payload", "value": 3,
    })


class TestRoundTrip:
    @pytest.mark.parametrize("topic", TOPICS)
    def test_every_topic_round_trips(self, topic):
        original = sample_event(topic)
        replayed = event_from_dict(event_to_dict(original))
        assert replayed.topic == original.topic
        assert replayed.kind == original.kind
        assert replayed.t_ns == original.t_ns
        assert replayed.fields == original.fields

    def test_round_trip_is_byte_stable(self):
        """Serialize → replay → serialize is the identity on bytes."""
        for topic in TOPICS:
            document = event_to_dict(sample_event(topic))
            again = event_to_dict(event_from_dict(document))
            assert canonical_json(again) == canonical_json(document)

    def test_sched_marker_round_trips(self):
        marker = Event("sched", "dispatch", 3_000_000, {"thread": "t1"})
        replayed = event_from_dict(event_to_dict(marker))
        assert replayed.fields == {"thread": "t1"}
        assert replayed.t_ns == 3_000_000

    def test_stream_round_trips_through_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = [sample_event(topic) for topic in TOPICS]
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(canonical_json(event_to_dict(event)) + "\n")
        replayed = list(read_events_jsonl(path))
        assert [e.topic for e in replayed] == list(TOPICS)
        assert [e.t_ns for e in replayed] == [e.t_ns for e in events]


class TestRecovery:
    def good_line(self, t_ms=1.0):
        return canonical_json(
            {"t_ms": t_ms, "thread": "t0", "kind": "dispatch"}
        )

    def test_strict_mode_raises_on_malformed_json(self):
        stream = io.StringIO(self.good_line() + "\n{ torn li")
        with pytest.raises(json.JSONDecodeError):
            list(read_events_jsonl(stream))

    def test_strict_mode_raises_on_missing_fields(self):
        stream = io.StringIO('{"t_ms": 1.0, "kind": "dispatch"}\n')
        with pytest.raises(KeyError):
            list(read_events_jsonl(stream))

    def test_recover_skips_malformed_lines(self):
        stream = io.StringIO("\n".join([
            self.good_line(1.0),
            "{ torn li",            # interrupted write
            '{"not": "an event"}',  # valid JSON, wrong shape
            self.good_line(2.0),
        ]))
        events = list(read_events_jsonl(stream, recover=True))
        assert [event.t_ns for event in events] == [1_000_000, 2_000_000]

    def test_recover_yields_valid_prefix_of_truncated_file(self, tmp_path):
        path = str(tmp_path / "partial.jsonl")
        full = self.good_line(1.0) + "\n" + self.good_line(2.0) + "\n"
        # Simulate an interrupted run: the last line is half-written.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(full[: len(full) - 8])
        events = list(read_events_jsonl(path, recover=True))
        assert [event.t_ns for event in events] == [1_000_000]

    def test_blank_lines_skipped_in_both_modes(self):
        content = "\n" + self.good_line() + "\n\n"
        assert len(list(read_events_jsonl(io.StringIO(content)))) == 1
        assert len(list(
            read_events_jsonl(io.StringIO(content), recover=True)
        )) == 1

    def test_recovered_and_strict_agree_on_clean_streams(self):
        content = "\n".join(self.good_line(float(t)) for t in range(5))
        strict = list(read_events_jsonl(io.StringIO(content)))
        recovered = list(
            read_events_jsonl(io.StringIO(content), recover=True)
        )
        assert [e.t_ns for e in strict] == [e.t_ns for e in recovered]
