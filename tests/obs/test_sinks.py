"""Sink hardening: context managers, flush-on-error, idempotent close,
byte-stable snapshots, and the streaming histogram plane.

Complements ``test_bus.py`` (which pins the bus/sink wiring semantics);
this module pins the PR-6 hardening contract:

* every sink is a context manager whose ``__exit__`` closes — including on
  the error path, so a crashed run still flushes a valid, parseable prefix,
* ``close()`` is idempotent on the stream sinks,
* each JSONL event is a single ``write`` — an interruption between events
  never leaves a torn line,
* :meth:`CounterSink.snapshot` is byte-stable (sorted key order),
* :class:`StreamingHistogram` / :class:`HistogramSink` summarize numeric
  streams at O(1) memory with deterministic, merge-stable percentiles.
"""

import io
import json

import pytest

from repro.core.events import ExecutionContext
from repro.obs.bus import Event, canonical_json
from repro.obs.sinks import (
    CounterSink,
    HistogramSink,
    JsonlStreamSink,
    StreamingHistogram,
    VcdStreamSink,
)


def sched_exec(t_ns=1000, dur_ns=500, thread="t0"):
    return Event("sched", "exec", t_ns, {
        "thread": thread, "dur_ns": dur_ns,
        "context": ExecutionContext.TASK,
        "energy_nj": 0.0, "label": None,
    })


class _Signal:
    def __init__(self, name, value=0):
        self.name = name
        self._value = value

    def read(self):
        return self._value


class TestJsonlHardening:
    def test_context_manager_closes_owned_stream(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlStreamSink(path) as sink:
            sink.handle(sched_exec())
        assert sink._closed
        with open(path, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_flushes_on_error_path(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with pytest.raises(RuntimeError):
            with JsonlStreamSink(path) as sink:
                sink.handle(sched_exec())
                raise RuntimeError("mid-run crash")
        # The file on disk is a valid, parseable prefix.
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 1 and lines[0]["kind"] == "exec"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlStreamSink(str(tmp_path / "e.jsonl"))
        sink.handle(sched_exec())
        sink.close()
        sink.close()  # second close must not raise on the closed stream

    def test_batched_writes_are_whole_lines(self):
        """Batching delays lines but every write handed to the stream is a
        run of *whole* lines, so an interruption between batch flushes
        still leaves a valid JSONL prefix on disk."""
        writes = []

        class Spy(io.StringIO):
            def write(self, text):
                writes.append(text)
                return super().write(text)

            def writelines(self, lines):
                text = "".join(lines)
                writes.append(text)
                io.StringIO.write(self, text)

        spy = Spy()
        sink = JsonlStreamSink(spy, batch_lines=2)
        sink.handle(sched_exec())
        assert writes == []  # below the batch threshold: nothing written yet
        sink.handle(sched_exec(t_ns=2000))
        assert len(writes) == 1  # the batch boundary flushed both lines
        sink.handle(sched_exec(t_ns=3000))
        sink.close()  # close drains the partial batch
        assert len(writes) == 2
        for text in writes:
            assert text.endswith("\n")
            for line in text[:-1].split("\n"):
                json.loads(line)  # every write is whole JSON lines only

    def test_torn_run_leaves_valid_jsonl_prefix(self):
        """Kill mid-batch: a sink abandoned without close() (the process
        died) has written only complete batches — the stream contents are
        a valid JSONL prefix of the full event sequence."""
        stream = io.StringIO()
        sink = JsonlStreamSink(stream, batch_lines=4)
        expected = []
        for index in range(11):
            event = sched_exec(t_ns=1000 * (index + 1))
            sink.handle(event)
            expected.append(canonical_json(event.to_dict()))
        # No close: simulate the process dying between batches.
        flushed = stream.getvalue()
        lines = flushed.splitlines()
        assert len(lines) == 8  # two full batches reached the stream
        assert flushed.endswith("\n")
        assert lines == expected[:8]
        for line in lines:
            json.loads(line)
        # A later close must still deliver the tail.
        sink.close()
        assert stream.getvalue().splitlines() == expected

    def test_borrowed_stream_left_open(self):
        stream = io.StringIO()
        with JsonlStreamSink(stream) as sink:
            sink.handle(sched_exec())
        assert not stream.closed
        assert stream.getvalue().count("\n") == 1

    def test_close_tolerates_caller_closed_stream(self):
        stream = io.StringIO()
        sink = JsonlStreamSink(stream)
        stream.close()
        sink.close()  # must swallow the ValueError from flush


class TestVcdHardening:
    def test_context_manager_and_idempotent_close(self, tmp_path):
        path = str(tmp_path / "trace.vcd")
        with VcdStreamSink([_Signal("clk")], path) as sink:
            pass
        sink.close()
        with open(path, "r", encoding="utf-8") as handle:
            assert "$enddefinitions" in handle.read()


class TestCounterSnapshot:
    def test_snapshot_sorted_regardless_of_arrival(self):
        forward = CounterSink()
        backward = CounterSink()
        events = [
            Event("sched", "exec", 0, {}),
            Event("campaign", "run_start", 0, {}),
            Event("sched", "dispatch", 0, {}),
        ]
        for event in events:
            forward.handle(event)
        for event in reversed(events):
            backward.handle(event)
        assert canonical_json(forward.snapshot()) == (
            canonical_json(backward.snapshot())
        )
        assert list(forward.snapshot()) == sorted(forward.snapshot())

    def test_snapshot_keys_are_topic_slash_kind(self):
        sink = CounterSink()
        sink.handle(Event("sched", "exec", 0, {}))
        sink.handle(Event("sched", "exec", 0, {}))
        assert sink.snapshot() == {"sched/exec": 2}


class TestStreamingHistogram:
    def test_tracks_count_min_max_mean(self):
        histogram = StreamingHistogram()
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.add(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["min"] == 1.0 and snapshot["max"] == 10.0
        assert snapshot["mean"] == pytest.approx(4.0)

    def test_percentiles_clamped_to_observed_range(self):
        histogram = StreamingHistogram()
        for value in (5.0, 7.0, 9.0):
            histogram.add(value)
        assert histogram.percentile(0.0) >= 5.0
        assert histogram.percentile(1.0) <= 9.0
        assert 5.0 <= histogram.percentile(0.5) <= 9.0

    def test_order_independent(self):
        import random

        values = [float(v) for v in range(1, 200)]
        shuffled = list(values)
        random.Random(3).shuffle(shuffled)
        forward, scrambled = StreamingHistogram(), StreamingHistogram()
        for value in values:
            forward.add(value)
        for value in shuffled:
            scrambled.add(value)
        assert forward.snapshot() == scrambled.snapshot()

    def test_merge_equals_single_stream(self):
        merged, single = StreamingHistogram(), StreamingHistogram()
        left, right = StreamingHistogram(), StreamingHistogram()
        for value in (1.0, 4.0, 16.0):
            left.add(value)
            single.add(value)
        for value in (2.0, 8.0, 1000.0):
            right.add(value)
            single.add(value)
        merged.merge(left)
        merged.merge(right)
        assert merged.snapshot() == single.snapshot()

    def test_nonpositive_values_get_the_floor_bucket(self):
        histogram = StreamingHistogram()
        histogram.add(0.0)
        histogram.add(-5.0)
        histogram.add(100.0)
        assert histogram.min == -5.0
        assert histogram.percentile(0.01) == pytest.approx(0.0, abs=5.0)

    def test_empty_histogram_is_safe(self):
        histogram = StreamingHistogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.snapshot()["count"] == 0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram().percentile(1.5)


class TestHistogramSink:
    def test_measures_exec_durations_by_default(self):
        sink = HistogramSink()
        sink.handle(sched_exec(dur_ns=100))
        sink.handle(sched_exec(dur_ns=300))
        sink.handle(Event("sched", "dispatch", 0, {"thread": "t0"}))
        snapshot = sink.snapshot()
        assert snapshot["count"] == 2
        assert snapshot["max"] == 300.0

    def test_missing_or_non_numeric_field_skipped(self):
        sink = HistogramSink()
        sink.handle(Event("sched", "exec", 0, {"thread": "t0"}))
        sink.handle(Event("sched", "exec", 0, {"thread": "t0",
                                               "dur_ns": True}))
        assert sink.skipped == 2 and sink.snapshot()["count"] == 0

    def test_value_callable_derives_measure(self):
        sink = HistogramSink(
            kinds=None,
            value=lambda event: event.fields.get("dur_ns", 0) * 2 or None,
        )
        sink.handle(sched_exec(dur_ns=50))
        sink.handle(Event("sched", "dispatch", 0, {"thread": "t0"}))
        assert sink.snapshot()["count"] == 1
        assert sink.snapshot()["max"] == 100.0
        assert sink.skipped == 1
