"""Unit tests for the observability bus, its sinks and VCD helpers."""

import io
import json

import pytest

from repro.obs import (
    TOPICS,
    CounterSink,
    EventBus,
    JsonlStreamSink,
    ListSink,
    RingBufferSink,
    VcdStreamSink,
    event_to_dict,
    vcd_identifier,
)
from repro.obs.bus import Event, Topic
from repro.sysc import Signal, SimTime, Simulator, TraceFile, Wait


class TestTopic:
    def test_disabled_until_a_sink_attaches(self):
        bus = EventBus()
        topic = bus.topic("sched")
        assert not topic.enabled
        sink = ListSink()
        bus.subscribe(sink, ("sched",))
        assert topic.enabled
        bus.unsubscribe(sink)
        assert not topic.enabled

    def test_attach_is_idempotent(self):
        topic = Topic("t")
        sink = ListSink()
        topic.attach(sink)
        topic.attach(sink)
        assert topic.sink_count() == 1

    def test_emit_reaches_every_sink(self):
        bus = EventBus()
        first, second = ListSink(), ListSink()
        bus.subscribe(first, ("irq",))
        bus.subscribe(second, ("irq",))
        bus.topic("irq").emit("raise", 42, handler="isr0")
        assert len(first.events) == len(second.events) == 1
        assert first.events[0].kind == "raise"
        assert first.events[0].fields["handler"] == "isr0"

    def test_subscribe_uses_sink_topics_attribute(self):
        bus = EventBus()
        sink = ListSink(topics=("svc", "irq"))
        bus.subscribe(sink)
        assert bus.topic("svc").enabled and bus.topic("irq").enabled
        assert not bus.topic("sched").enabled

    def test_unknown_topic_rejected(self):
        with pytest.raises(KeyError):
            EventBus().topic("nope")

    def test_topic_namespace_is_fixed(self):
        assert set(TOPICS) == {
            "kernel", "sched", "svc", "irq", "signal", "bfm", "campaign",
            "telemetry",
        }


class TestEventToDict:
    def test_sched_marker_matches_legacy_shape(self):
        event = Event("sched", "dispatch", 2_000_000, {"thread": "a"})
        assert event_to_dict(event) == {"t_ms": 2.0, "thread": "a", "kind": "dispatch"}

    def test_generic_topic_coerces_payloads(self):
        from repro.core.events import ExecutionContext

        event = Event("svc", "enter", 1_000_000,
                      {"name": "tk_sig_sem", "ctx": ExecutionContext.TASK,
                       "when": SimTime.ms(3)})
        document = event_to_dict(event)
        assert document["topic"] == "svc"
        assert document["ctx"] == "task"
        assert document["when"] == 3.0
        json.dumps(document)  # JSON-safe


class TestRingBufferSink:
    def test_bounded_with_dropped_count(self):
        bus = EventBus()
        ring = bus.subscribe(RingBufferSink(capacity=4), ("kernel",))
        for index in range(10):
            bus.topic("kernel").emit("delta", index)
        assert len(ring) == 4
        assert ring.seen == 10
        assert ring.dropped == 6
        assert [event.t_ns for event in ring.events()] == [6, 7, 8, 9]

    def test_topic_and_kind_filters(self):
        bus = EventBus()
        ring = bus.subscribe(RingBufferSink(), ("kernel", "irq"))
        bus.topic("kernel").emit("delta", 1)
        bus.topic("irq").emit("raise", 2)
        assert len(ring.of_topic("irq")) == 1
        assert len(ring.of_kind("delta")) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestCounterSink:
    def test_counts_by_topic_and_kind(self):
        bus = EventBus()
        counter = bus.subscribe(CounterSink(), ("sched", "svc"))
        bus.topic("sched").emit("dispatch", 0, thread="a")
        bus.topic("sched").emit("dispatch", 1, thread="b")
        bus.topic("svc").emit("enter", 2, name="tk_slp_tsk")
        assert counter.count(topic="sched", kind="dispatch") == 2
        assert counter.count(topic="svc") == 1
        assert counter.total() == 3


class TestJsonlStreamSink:
    def test_streams_canonical_lines(self):
        stream = io.StringIO()
        bus = EventBus()
        sink = bus.subscribe(JsonlStreamSink(stream), ("sched",))
        bus.topic("sched").emit("dispatch", 1_000_000, thread="a")
        sink.close()
        assert stream.getvalue() == '{"kind":"dispatch","t_ms":1.0,"thread":"a"}\n'
        assert sink.lines_written == 1

    def test_owns_and_closes_path_target(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlStreamSink(str(path))
        sink.handle(Event("irq", "raise", 0, {"intno": 3}))
        sink.close()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["intno"] == 3


class TestVcdStreamSink:
    def test_stream_matches_batch_export(self):
        with Simulator("vcd") as sim:
            flag = Signal("flag", False, sim)
            bus_value = Signal("bus", 0, sim)
            trace = TraceFile()
            trace.trace(flag)
            trace.trace(bus_value)
            stream = io.StringIO()
            sink = VcdStreamSink([flag, bus_value], stream)
            sim.obs.subscribe(sink)

            def writer():
                yield Wait(SimTime.ms(1))
                flag.write(True)
                bus_value.write(0xAA)
                yield Wait(SimTime.ms(1))
                flag.write(False)

            sim.register_thread("writer", writer)
            sim.run()
            sink.close()
        Simulator.reset()
        assert stream.getvalue().strip() == trace.to_vcd().strip()
        assert "$var wire 1 " in stream.getvalue()  # bool is 1 bit wide

    def test_ignores_undeclared_signals(self):
        stream = io.StringIO()
        sink = VcdStreamSink([], stream)
        sink.handle(Event("signal", "change", 5, {"signal": "ghost", "new": 1}))
        assert "#5" not in stream.getvalue()


class TestVcdIdentifiers:
    def test_unique_and_printable_past_94_signals(self):
        identifiers = [vcd_identifier(index) for index in range(300)]
        assert len(set(identifiers)) == 300
        for identifier in identifiers:
            assert identifier
            assert all(33 <= ord(ch) <= 126 for ch in identifier)
        assert vcd_identifier(0) == "!"
        assert vcd_identifier(93) == "~"
        assert len(vcd_identifier(94)) == 2

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            vcd_identifier(-1)


class TestZeroCostFastPath:
    def test_no_sink_run_never_constructs_event_records(self, monkeypatch):
        """With no sinks attached, Topic.emit must never be reached."""
        from repro.campaign import get_scenario, run_spec

        def forbidden(self, kind, t_ns, **fields):  # pragma: no cover - trap
            raise AssertionError(
                f"Topic.emit({self.name}/{kind}) called with no sink attached"
            )

        monkeypatch.setattr(Topic, "emit", forbidden)
        result = run_spec(get_scenario("quickstart"), collect_events=False)
        assert result.metrics["context_switches"] > 0
        assert result.metrics["gantt_segments"] > 0  # counters still work

    def test_signal_settle_publishes_only_when_enabled(self):
        with Simulator("fast") as sim:
            sig = Signal("s", 0, sim)
            ring = RingBufferSink()

            def writer():
                sig.write(1)
                yield Wait(SimTime.ms(1))
                sim.obs.subscribe(ring, ("signal",))
                sig.write(2)
                yield Wait(SimTime.ms(1))

            sim.register_thread("writer", writer)
            sim.run()
        Simulator.reset()
        assert [event.fields["new"] for event in ring.events()] == [2]


class TestSecondReviewRegressions:
    def test_subscribe_with_explicit_empty_topics_attaches_nothing(self):
        bus = EventBus()
        bus.subscribe(ListSink(topics=()))
        assert not bus.any_enabled()

    def test_report_reads_from_list_sink(self):
        from repro.analysis.trace import ExecutionTraceReport

        sink = ListSink()
        sink.handle(Event("sched", "dispatch", 0, {"thread": "a"}))
        sink.handle(Event("sched", "exec", 0, {
            "thread": "a", "dur_ns": 1_000_000, "context": _task_context(),
            "energy_nj": 5.0, "label": "",
        }))
        report = ExecutionTraceReport(sink)
        assert report.threads() == ["a"]
        assert report.observed_dispatches() == 1

    def test_vcd_sink_ignores_same_named_undeclared_signal(self):
        with Simulator("vcd-imp") as sim:
            declared = Signal("data", 0, sim)
            impostor = Signal("data", 0, sim)
            stream = io.StringIO()
            sim.obs.subscribe(VcdStreamSink([declared], stream))

            def writer():
                yield Wait(SimTime.ms(1))
                impostor.write(99)
                yield Wait(SimTime.ms(1))
                declared.write(7)

            sim.register_thread("writer", writer)
            sim.run()
        Simulator.reset()
        body = stream.getvalue().split("$enddefinitions $end")[1]
        assert "b1100011 " not in body  # 99 never written
        assert "b111 " in body  # 7 was


def _task_context():
    from repro.core.events import ExecutionContext

    return ExecutionContext.TASK
