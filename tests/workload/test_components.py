"""The composable scenario plane: compose(), components, task model."""

import pytest

from repro.campaign.spec import ScenarioSpec, SpecError
from repro.workload import (
    KernelProfile,
    Platform,
    Probes,
    TaskDef,
    compose,
    workload_component,
    workload_names,
)
from repro.workload.tasks import CyclicDef, parse_taskset


class TestCompose:
    def test_every_spec_workload_has_a_component(self):
        from repro.campaign.spec import WORKLOADS

        assert workload_names() == sorted(WORKLOADS)

    def test_composition_parts_resolve_from_the_spec(self):
        spec = ScenarioSpec(
            name="x", kernel="rtkspec1", workload="scheduler_comparison",
            tick_ms=2.0, time_slice_ticks=7,
        )
        composition = compose(spec)
        assert composition.platform.kind == "bare"
        assert composition.platform.tick_ms == 2.0
        assert composition.kernel.model == "rtkspec1"
        assert composition.kernel.time_slice_ticks == 7
        assert composition.workload.name == "scheduler_comparison"
        assert composition.probes.topics == ("sched",)

    def test_framework_workloads_compose_the_i8051_platform(self):
        spec = ScenarioSpec(
            name="x", kernel="tkernel", workload="videogame",
            gui_enabled=True, bfm_access_period_ms=25,
        )
        platform = compose(spec).platform
        assert platform.kind == "i8051"
        assert platform.bfm_access_period_ms == 25
        described = platform.describe()
        assert "interrupt_controller" in described["controllers"]
        assert "lcd" in described["peripherals"]

    def test_describe_is_json_safe_and_fully_resolved(self):
        from repro.obs.bus import canonical_json

        spec = ScenarioSpec(name="x", kernel="rtkspec2", workload="synthetic",
                            seed=11, task_count=3)
        document = compose(spec).describe(spec)
        canonical_json(document)  # must not raise
        assert len(document["workload"]["tasks"]) == 3
        assert document["kernel"] == {"model": "rtkspec2", "tick_ms": 1.0}

    def test_workload_kernel_mismatch_is_a_spec_error(self):
        spec = ScenarioSpec(name="x", kernel="rtkspec2", workload="quickstart")
        with pytest.raises(SpecError):
            compose(spec)

    def test_unknown_component_name_is_a_spec_error(self):
        with pytest.raises(SpecError, match="no workload component"):
            workload_component("nope")


class TestComponentValidation:
    def test_platform_kind_is_checked(self):
        with pytest.raises(SpecError, match="platform kind"):
            Platform(kind="fpga").validate()

    def test_kernel_model_is_checked(self):
        with pytest.raises(SpecError, match="kernel model"):
            KernelProfile(model="linux").validate()

    def test_probes_must_keep_the_sched_topic(self):
        with pytest.raises(SpecError, match="sched"):
            Probes(topics=("irq",)).validate()
        assert Probes(topics=("sched", "irq")).validate()


class TestKernelModelRegistry:
    def test_rtk_kernels_register_their_model_keys(self):
        from repro.rtkspec import KERNEL_MODELS, RTKSpec1, RTKSpec2, \
            kernel_model_class

        assert KERNEL_MODELS["rtkspec1"] is RTKSpec1
        assert KERNEL_MODELS["rtkspec2"] is RTKSpec2
        assert kernel_model_class("rtkspec2") is RTKSpec2
        with pytest.raises(KeyError, match="unknown RTK-Spec kernel"):
            kernel_model_class("rtkspec99")

    def test_kernel_profile_instantiates_by_model_key(self):
        from repro.rtkspec import RTKSpec1
        from repro.sysc.kernel import Simulator

        simulator = Simulator("t")
        kernel = KernelProfile(
            model="rtkspec1", tick_ms=1.0, time_slice_ticks=9
        ).instantiate(simulator)
        assert isinstance(kernel, RTKSpec1)
        assert kernel.time_slice_ticks == 9
        Simulator.reset()


class TestTaskModel:
    def test_law_specific_round_trip(self):
        task = TaskDef(name="t0", law="sporadic", min_gap_ms=2.0,
                       max_gap_ms=8.0, services=("sem",)).validate()
        document = task.to_dict()
        assert document["law"] == "sporadic"
        assert "period_ms" not in document  # only the law's fields serialize
        assert TaskDef.from_dict(document) == TaskDef.from_dict(document)

    def test_unknown_fields_and_laws_are_rejected(self):
        with pytest.raises(SpecError, match="unknown task fields"):
            TaskDef.from_dict({"name": "t", "wcet": 3})
        with pytest.raises(SpecError, match="arrival law"):
            TaskDef(name="t", law="poisson").validate()
        with pytest.raises(SpecError, match="service calls"):
            TaskDef(name="t", services=("rpc",)).validate()

    def test_gaps_are_deterministic_per_seed(self):
        import random

        task = TaskDef(name="t", law="jittered", period_ms=10.0, jitter_ms=4.0)
        gaps_a = [task.gap_ms(random.Random(7), j) for j in range(5)]
        gaps_b = [task.gap_ms(random.Random(7), j) for j in range(5)]
        assert gaps_a == gaps_b
        assert all(10.0 <= gap <= 14.0 for gap in gaps_a)

    def test_bursty_gap_alternates_intra_and_burst(self):
        import random

        task = TaskDef(name="t", law="bursty", burst_size=2,
                       intra_gap_ms=1.0, burst_gap_ms=30.0)
        rng = random.Random(0)
        assert [task.gap_ms(rng, j) for j in range(4)] == [1.0, 30.0, 1.0, 30.0]

    def test_parse_taskset_rejects_duplicates_and_empties(self):
        with pytest.raises(SpecError, match="non-empty"):
            parse_taskset([])
        with pytest.raises(SpecError, match="duplicate"):
            parse_taskset([{"name": "t"}, {"name": "t"}])
        tasks, cyclics = parse_taskset(
            [{"name": "a"}, {"name": "b"}],
            [{"name": "c", "period_ms": 5, "execution_us": 80}],
        )
        assert [task.name for task in tasks] == ["a", "b"]
        assert isinstance(cyclics[0], CyclicDef)


class TestGeneratedWorkload:
    def _spec(self, **kwargs):
        base = dict(
            name="gen", kernel="tkernel", workload="generated",
            duration_ms=20.0, seed=5,
            extra={"tasks": [
                {"name": "t0", "law": "periodic", "period_ms": 5.0,
                 "execution_ms": 1.0, "jobs": 2, "services": ["sem"]},
                {"name": "t1", "law": "sporadic", "min_gap_ms": 2.0,
                 "max_gap_ms": 6.0, "execution_ms": 0.5, "jobs": 2},
            ]},
        )
        base.update(kwargs)
        return ScenarioSpec(**base)

    def test_runs_and_counts_jobs_and_service_rounds(self):
        from repro.campaign.runner import run_spec

        result = run_spec(self._spec())
        workload = result.metrics["workload_metrics"]
        assert workload["jobs_completed"] == 4
        assert workload["service_rounds"] == 2
        assert result.metrics["syscall_total"] > 0

    def test_is_deterministic(self):
        from repro.campaign.runner import run_spec

        first = run_spec(self._spec())
        second = run_spec(self._spec())
        assert first.metrics_json() == second.metrics_json()
        assert first.events == second.events

    def test_cyclic_handler_pattern_fires(self):
        from repro.campaign.runner import run_spec

        spec = self._spec()
        spec.extra["cyclics"] = [
            {"name": "cyc", "period_ms": 5, "execution_us": 100}
        ]
        result = run_spec(spec)
        assert result.metrics["workload_metrics"]["handler_fires"] > 0

    def test_rtc_platform_drives_the_kernel_tick(self):
        from repro.campaign.runner import run_spec

        spec = self._spec()
        spec.extra["platform"] = "rtc"
        assert compose(spec).platform.kind == "rtc"
        result = run_spec(spec)
        assert result.metrics["workload_metrics"]["jobs_completed"] == 4
        assert result.metrics["kernel_stats"]["tick_handler_runs"] > 0

    def test_rtk_members_reject_tkernel_only_features(self):
        from repro.campaign.registry import build_scenario, describe_scenario

        spec = self._spec(kernel="rtkspec2")
        with pytest.raises(SpecError, match="service-call mix"):
            build_scenario(spec)
        with pytest.raises(SpecError, match="service-call mix"):
            describe_scenario(spec)
        spec.extra["tasks"] = [{"name": "t0"}]
        spec.extra["cyclics"] = [{"name": "c", "period_ms": 5,
                                  "execution_us": 50}]
        with pytest.raises(SpecError, match="cyclic"):
            build_scenario(spec)
        del spec.extra["cyclics"]
        spec.extra["platform"] = "rtc"
        with pytest.raises(SpecError, match="rtc"):
            compose(spec)  # rejected at composition time, before any parse

    def test_rtk_priority_outside_scheduler_range_is_a_spec_error(self):
        from repro.campaign.registry import build_scenario

        spec = self._spec(kernel="rtkspec2")
        spec.extra["tasks"] = [{"name": "t0", "priority": 300}]
        with pytest.raises(SpecError, match=r"\[1, 256\)"):
            build_scenario(spec)
        # the tkernel interpreter clamps instead, so the same document runs
        spec = self._spec()
        spec.extra["tasks"] = [{"name": "t0", "priority": 300}]
        build_scenario(spec)
        from repro.sysc.kernel import Simulator

        Simulator.reset()

    def test_rtk_generated_runs(self):
        from repro.campaign.runner import run_spec

        spec = self._spec(kernel="rtkspec2")
        spec.extra["tasks"] = [
            {"name": "t0", "law": "bursty", "burst_size": 2,
             "intra_gap_ms": 1.0, "burst_gap_ms": 8.0,
             "execution_ms": 1.0, "jobs": 3},
        ]
        result = run_spec(spec)
        assert result.metrics["workload_metrics"]["jobs_completed"] == 3

    def test_missing_tasks_is_a_one_line_spec_error(self):
        with pytest.raises(SpecError, match="non-empty 'tasks'"):
            compose(ScenarioSpec(name="gen", workload="generated"))


class TestProbesCacheContract:
    def test_extended_probes_are_never_cached_serial_or_parallel(
        self, tmp_path, monkeypatch
    ):
        """Stored artifacts are sched-only: a workload whose probes add
        topics must not populate the store from either batch path."""
        from repro.campaign.batch import run_batch
        from repro.grid.store import ResultStore
        from repro.workload.components import Probes, workload_component

        component = workload_component("synthetic")
        monkeypatch.setattr(
            component, "probes_for",
            lambda spec: Probes(topics=("sched", "svc")),
        )
        specs = [
            ScenarioSpec(name=f"probed{i}", kernel="rtkspec2",
                         workload="synthetic", duration_ms=10.0, seed=i)
            for i in range(2)
        ]
        store = ResultStore(str(tmp_path / "cache"))

        serial = run_batch(specs, workers=1, store=store)
        assert serial.cache_hits == 0
        assert all(store.lookup(spec) is None for spec in specs)

        parallel = run_batch(specs, workers=2, store=store)
        assert parallel.cache_hits == 0
        assert all(store.lookup(spec) is None for spec in specs)


class TestLazyImportSeam:
    def test_scenario_build_reexports_resolve_lazily(self):
        import repro.campaign as campaign
        import repro.campaign.registry as registry
        from repro.workload.components import ScenarioBuild

        assert campaign.ScenarioBuild is ScenarioBuild
        assert registry.ScenarioBuild is ScenarioBuild
        with pytest.raises(AttributeError):
            registry.does_not_exist
