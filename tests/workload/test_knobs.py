"""Knob flattening: the spec/metrics → index-column transformation."""

import pytest

from repro.workload.knobs import canonical_json_value, flatten_knobs


class TestFlattenKnobs:
    def test_nested_mappings_flatten_dotted(self):
        flat = flatten_knobs({"a": {"b": {"c": 1}}, "d": 2})
        assert flat == {"a.b.c": 1, "d": 2}

    def test_scalars_kept_as_is(self):
        flat = flatten_knobs({
            "i": 3, "f": 0.5, "s": "text", "b": True, "n": None,
        })
        assert flat["i"] == 3 and flat["f"] == 0.5 and flat["s"] == "text"
        assert flat["b"] is True
        # None is not a scalar knob; it serializes canonically.
        assert flat["n"] == "null"

    def test_lists_become_canonical_json_strings(self):
        flat = flatten_knobs({"tasks": [{"name": "t0"}, {"name": "t1"}]})
        assert flat["tasks"] == '[{"name":"t0"},{"name":"t1"}]'

    def test_output_is_sorted(self):
        flat = flatten_knobs({"z": 1, "a": {"y": 2, "b": 3}, "m": 4})
        assert list(flat) == sorted(flat)

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            flatten_knobs({1: "x"})
        with pytest.raises(TypeError):
            flatten_knobs({"ok": {2: "nested"}})

    def test_deterministic_across_insertion_orders(self):
        forward = flatten_knobs({"a": 1, "b": {"c": [3, 2]}})
        backward = flatten_knobs({"b": {"c": [3, 2]}, "a": 1})
        assert forward == backward and list(forward) == list(backward)


class TestCanonicalJsonValue:
    def test_sorted_keys_tight_separators(self):
        assert canonical_json_value({"b": 1, "a": [2, 3]}) == (
            '{"a":[2,3],"b":1}'
        )

    def test_scalar_values(self):
        assert canonical_json_value(True) == "true"
        assert canonical_json_value(None) == "null"
