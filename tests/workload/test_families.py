"""Seeded workload families: reproducible expansion + grid round-trip."""

import json

import pytest

from repro.campaign.spec import ScenarioSpec, SpecError, spec_hash
from repro.workload import FamilySpec, expand_family, family_member, \
    load_family_file


class TestFamilyExpansion:
    def test_expansion_is_deterministic_and_distinct(self):
        family = FamilySpec(name="mix", count=100, seed=42,
                            kernels=("tkernel", "rtkspec1", "rtkspec2"),
                            duration_ms=10.0, cyclic_rate=0.3, rtc_rate=0.2)
        members = expand_family(family)
        assert len(members) == 100
        hashes = [spec_hash(spec) for spec in members]
        # >= 100 distinct generated scenarios, stable across expansions.
        assert len(set(hashes)) == 100
        assert [spec_hash(spec) for spec in expand_family(family)] == hashes

    def test_members_regenerate_in_isolation(self):
        family = FamilySpec(name="solo", count=50, seed=9)
        full = expand_family(family)
        assert family_member(family, 17).to_dict() == full[17].to_dict()
        with pytest.raises(SpecError, match="members"):
            family_member(family, 50)

    def test_members_are_valid_generated_specs(self):
        family = FamilySpec(name="valid", count=20, seed=1,
                            kernels=("tkernel", "rtkspec2"),
                            cyclic_rate=1.0, rtc_rate=1.0)
        for spec in expand_family(family):
            assert isinstance(spec, ScenarioSpec)
            assert spec.workload == "generated"
            assert len(spec.extra["tasks"]) == spec.task_count
            if spec.kernel == "tkernel":
                # rate 1.0: every tkernel member gets the handler + rtc parts
                assert spec.extra["cyclics"]
                assert spec.extra["platform"] == "rtc"
            else:
                assert "cyclics" not in spec.extra
                for task in spec.extra["tasks"]:
                    assert "services" not in task

    def test_seed_changes_the_family(self):
        base = FamilySpec(name="s", count=10, seed=0)
        other = FamilySpec(name="s", count=10, seed=1)
        assert [spec_hash(s) for s in expand_family(base)] != \
            [spec_hash(s) for s in expand_family(other)]

    def test_document_round_trip_and_validation(self, tmp_path):
        family = FamilySpec(name="disk", count=5, seed=3, laws=("bursty",))
        path = tmp_path / "family.json"
        path.write_text(json.dumps(family.to_dict()))
        assert load_family_file(str(path)) == family

        with pytest.raises(SpecError, match="unknown family fields"):
            FamilySpec.from_dict({"name": "x", "burst": 3})
        with pytest.raises(SpecError, match="count"):
            FamilySpec(name="x", count=0).validate()
        with pytest.raises(SpecError, match="utilization"):
            FamilySpec(name="x", utilization=(0.5, 1.5)).validate()
        with pytest.raises(SpecError, match="arrival law"):
            FamilySpec(name="x", laws=("random",)).validate()
        with pytest.raises(SpecError, match="schema"):
            FamilySpec.from_dict({"schema": "nope/9", "name": "x"})
        with pytest.raises(SpecError, match="family file"):
            load_family_file(str(tmp_path / "missing.json"))

    def test_mistyped_documents_stay_one_line_spec_errors(self):
        """Wrong JSON types must never escape as TypeError/ValueError."""
        with pytest.raises(SpecError, match="duration_ms"):
            FamilySpec.from_dict({"name": "x", "duration_ms": "40"})
        with pytest.raises(SpecError, match="task_count"):
            FamilySpec.from_dict({"name": "x", "task_count": [3]})
        with pytest.raises(SpecError, match="utilization"):
            FamilySpec.from_dict({"name": "x", "utilization": [0.2]})
        with pytest.raises(SpecError, match="service_rate"):
            FamilySpec.from_dict({"name": "x", "service_rate": "half"})
        with pytest.raises(SpecError, match="kernels"):
            FamilySpec(name="x", kernels="tkernel").validate()
        with pytest.raises(SpecError, match="period_choices_ms"):
            FamilySpec(name="x", period_choices_ms=(5.0, "10")).validate()


class TestFamilyGridRoundTrip:
    def test_family_sweeps_through_store_with_zero_warm_simulations(
        self, tmp_path, monkeypatch
    ):
        """A generated family flows through the grid unchanged: the warm
        second sweep is served entirely from the store — no builds."""
        from repro.campaign import runner as runner_module
        from repro.campaign.batch import run_batch
        from repro.grid.store import ResultStore

        family = FamilySpec(name="grid", count=100, seed=7,
                            kernels=("tkernel", "rtkspec2"),
                            duration_ms=5.0, jobs=(1, 2))
        members = expand_family(family)
        assert len({spec_hash(spec) for spec in members}) == 100
        store = ResultStore(str(tmp_path / "cache"))

        cold = run_batch(members, workers=1, store=store)
        assert cold.cache_hits == 0

        def forbidden(spec, *args, **kwargs):  # pragma: no cover - the assertion is the point
            raise AssertionError(f"warm sweep simulated {spec.name}")

        monkeypatch.setattr(runner_module, "build_scenario", forbidden)
        warm = run_batch(members, workers=1, store=store)
        assert warm.cache_hits == len(members)
        from repro.obs.bus import canonical_json

        assert canonical_json(warm.deterministic_document()) == \
            canonical_json(cold.deterministic_document())

    def test_family_shards_cover_every_member_exactly_once(self):
        from repro.grid.shard import plan_all_shards

        members = expand_family(FamilySpec(name="sh", count=10, seed=2))
        plans = plan_all_shards(members, 3)
        indices = sorted(
            index for plan in plans for index, _ in plan.runs
        )
        assert indices == list(range(10))
