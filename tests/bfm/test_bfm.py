"""Unit and integration tests for the i8051 bus functional model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bfm import (
    BFMBudgets,
    I8051BFM,
    InterruptController,
    KeypadDevice,
    LCDDevice,
    SevenSegmentDevice,
)
from repro.bfm.i8051 import KEYPAD_PORT, LCD_PORT, SSD_PORT
from repro.core import PriorityScheduler, SimApi
from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator


def make_platform():
    simulator = Simulator("bfm-test")
    api = SimApi(simulator, scheduler=PriorityScheduler(), system_tick=SimTime.ms(1))
    bfm = I8051BFM(api)
    return simulator, api, bfm


def run_task(simulator, api, body, duration_ms=50):
    task = api.create_thread("driver", body, priority=10)
    api.start_thread(task)
    simulator.run(SimTime.ms(duration_ms))
    return task


class TestBudgets:
    def test_annotation_table_exposes_all_keys(self):
        table = BFMBudgets().as_annotation_table()
        for key in ("bfm:xram_read", "bfm:port_write", "bfm:serial_send_byte"):
            assert key in table

    def test_budget_values_positive(self):
        budgets = BFMBudgets()
        assert budgets.xram_read > 0 and budgets.port_write > 0


class TestMemoryController:
    def test_write_then_read_roundtrip(self):
        simulator, api, bfm = make_platform()
        seen = []

        def body():
            yield from bfm.memory.write_xram(0x20, 0xAB)
            value = yield from bfm.memory.read_xram(0x20)
            seen.append(value)

        run_task(simulator, api, body)
        assert seen == [0xAB]
        assert bfm.memory.peek(0x20) == 0xAB

    def test_block_operations(self):
        simulator, api, bfm = make_platform()
        seen = []

        def body():
            yield from bfm.memory.write_block(0x100, [1, 2, 3, 4])
            data = yield from bfm.memory.read_block(0x100, 4)
            seen.append(data)

        run_task(simulator, api, body)
        assert seen == [[1, 2, 3, 4]]

    def test_accesses_consume_bfm_time(self):
        simulator, api, bfm = make_platform()

        def body():
            for offset in range(10):
                yield from bfm.memory.write_xram(offset, offset)

        task = run_task(simulator, api, body)
        breakdown = task.token.cet_by_context()
        expected = api.timing_model.time_of(10 * bfm.budgets.xram_write)
        assert breakdown[ExecutionContext.BFM_ACCESS] == expected

    def test_address_range_checked(self):
        simulator, api, bfm = make_platform()
        with pytest.raises(ValueError):
            bfm.memory.poke(0x1_000_000, 1)

    def test_code_memory_backdoor_load(self):
        simulator, api, bfm = make_platform()
        bfm.memory.load_code(0, [0x02, 0x01, 0x00])
        seen = []

        def body():
            value = yield from bfm.memory.read_code(0)
            seen.append(value)

        run_task(simulator, api, body)
        assert seen == [0x02]


class TestInterruptController:
    def test_raise_and_acknowledge_in_priority_order(self):
        simulator = Simulator("intc-test")
        intc = InterruptController(simulator)
        intc.raise_line(5)
        intc.raise_line(1)
        assert intc.has_pending()
        assert intc.acknowledge() == 1
        assert intc.acknowledge() == 5
        assert intc.acknowledge() is None

    def test_custom_priorities(self):
        simulator = Simulator("intc-test2")
        intc = InterruptController(simulator)
        intc.set_priority(5, 0)
        intc.raise_line(1)
        intc.raise_line(5)
        assert intc.acknowledge() == 5

    def test_duplicate_raise_is_dropped(self):
        simulator = Simulator("intc-test3")
        intc = InterruptController(simulator)
        intc.raise_line(2)
        intc.raise_line(2)
        assert intc.dropped_count == 1
        assert intc.pending_lines() == [2]

    def test_invalid_line_rejected(self):
        simulator = Simulator("intc-test4")
        intc = InterruptController(simulator, line_count=4)
        with pytest.raises(ValueError):
            intc.raise_line(10)

    def test_irq_event_wakes_waiter(self):
        simulator = Simulator("intc-test5")
        intc = InterruptController(simulator)
        woke = []

        def waiter():
            from repro.sysc.process import WaitEvent
            yield WaitEvent(intc.irq_event)
            woke.append(simulator.now.to_ms())

        def raiser():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(3))
            intc.raise_line(0)

        simulator.register_thread("waiter", waiter)
        simulator.register_thread("raiser", raiser)
        simulator.run(SimTime.ms(10))
        assert woke == [3.0]


class TestSerialIO:
    def test_send_string_records_transmit_log(self):
        simulator, api, bfm = make_platform()

        def body():
            yield from bfm.serial.send_string("ping")

        run_task(simulator, api, body)
        assert bfm.serial.transmitted_text() == "ping"
        assert bfm.serial.sent_count == 4

    def test_receive_injected_bytes(self):
        simulator, api, bfm = make_platform()
        received = []

        def body():
            value = yield from bfm.serial.receive_byte()
            received.append(value)
            value = yield from bfm.serial.receive_byte()
            received.append(value)

        bfm.serial.inject_rx_byte(0x41, raise_interrupt=False)
        run_task(simulator, api, body)
        assert received == [0x41, None]

    def test_injection_raises_serial_interrupt(self):
        simulator, api, bfm = make_platform()
        bfm.serial.inject_rx_byte(0x42)
        assert bfm.intc.pending_lines() == [bfm.serial.interrupt_line]

    def test_fifo_overrun_counted(self):
        simulator, api, bfm = make_platform()
        for value in range(bfm.serial.fifo_depth + 3):
            bfm.serial.inject_rx_byte(value, raise_interrupt=False)
        assert bfm.serial.overrun_count == 3


class TestParallelIOAndPeripherals:
    def test_lcd_receives_characters(self):
        simulator, api, bfm = make_platform()

        def body():
            for char in "HI":
                yield from bfm.pio.write_port(LCD_PORT, ord(char))

        run_task(simulator, api, body)
        assert bfm.lcd.text()[0].startswith("HI")
        assert bfm.lcd.write_count == 2

    def test_keypad_roundtrip_with_interrupt(self):
        simulator, api, bfm = make_platform()
        read_keys = []
        bfm.keypad.press_key(7)
        assert bfm.intc.pending_lines() == [bfm.keypad.interrupt_line]

        def body():
            value = yield from bfm.pio.read_port(KEYPAD_PORT)
            read_keys.append(value)
            yield from bfm.pio.write_port(KEYPAD_PORT, 0)  # acknowledge

        run_task(simulator, api, body)
        assert read_keys == [7]
        assert bfm.keypad.pending_keys() == []

    def test_keypad_fifo_overflow(self):
        keypad = KeypadDevice(None, fifo_depth=2)
        assert keypad.press_key(1) and keypad.press_key(2)
        assert not keypad.press_key(3)
        assert keypad.dropped_count == 1

    def test_ssd_multiplexed_digits(self):
        simulator, api, bfm = make_platform()

        def body():
            yield from bfm.pio.write_port(SSD_PORT, (0 << 4) | 4)
            yield from bfm.pio.write_port(SSD_PORT, (1 << 4) | 2)

        run_task(simulator, api, body)
        assert bfm.ssd.digits[0] == 4 and bfm.ssd.digits[1] == 2
        assert bfm.ssd.value() == 24

    def test_invalid_port_rejected(self):
        simulator, api, bfm = make_platform()
        with pytest.raises(ValueError):
            bfm.pio.latch_value(9)

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=20))
    def test_lcd_framebuffer_never_exceeds_dimensions(self, values):
        lcd = LCDDevice(columns=8, rows=2)
        for value in values:
            lcd.write_data(value)
        assert len(lcd.frame_buffer) == 2
        assert all(len(row) == 8 for row in lcd.frame_buffer)
        assert 0 <= lcd.cursor < 16


class TestI8051Assembly:
    def test_rtc_ticks_at_configured_resolution(self):
        simulator, api, bfm = make_platform()
        simulator.run(SimTime.ms(25))
        assert 24 <= bfm.rtc.tick_count <= 26

    def test_access_statistics_aggregate(self):
        simulator, api, bfm = make_platform()

        def body():
            yield from bfm.pio.write_port(LCD_PORT, 0x31)
            yield from bfm.memory.write_xram(0, 1)
            yield from bfm.serial.send_byte(0x55)

        run_task(simulator, api, body)
        stats = bfm.access_statistics()
        assert stats["bus_accesses"] == 3
        assert stats["port_writes"][LCD_PORT] == 1
        assert stats["serial_sent"] == 1

    def test_trace_probes_bus_and_ports(self):
        simulator, api, bfm = make_platform()
        trace = bfm.attach_trace()

        def body():
            yield from bfm.pio.write_port(LCD_PORT, 0x5A)

        run_task(simulator, api, body)
        assert trace.changes_of(f"{bfm.name}.pio.p0")
        assert trace.changes_of(f"{bfm.name}.bus.data")
