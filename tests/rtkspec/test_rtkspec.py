"""Tests for the RTK-Spec I / II user-defined kernels."""

import pytest

from repro.rtkspec import RTKSpec1, RTKSpec2
from repro.sysc import SimTime, Simulator


def run_tasks(kernel_class, workload, duration_ms=200, **kwargs):
    simulator = Simulator(f"rtk-{kernel_class.__name__}")
    kernel = kernel_class(simulator, **kwargs)
    completions = {}

    def make_body(name, execution_ms):
        def body():
            yield from kernel.api.sim_wait(duration=SimTime.ms(execution_ms))
            completions[name] = simulator.now.to_ms()
        return body

    for name, priority, execution_ms in workload:
        kernel.start_task(kernel.create_task(make_body(name, execution_ms),
                                             priority=priority, name=name))
    simulator.run(SimTime.ms(duration_ms))
    return simulator, kernel, completions


class TestRTKSpec1:
    def test_round_robin_shares_cpu(self):
        workload = [("a", 10, 10), ("b", 10, 10)]
        _, kernel, completions = run_tasks(RTKSpec1, workload, time_slice_ticks=3)
        # Both complete, within a time-slice of each other (fair sharing).
        assert set(completions) == {"a", "b"}
        assert abs(completions["a"] - completions["b"]) <= 4.0
        assert kernel.rotation_count >= 3

    def test_priorities_are_ignored(self):
        workload = [("low", 40, 8), ("high", 1, 8)]
        _, kernel, completions = run_tasks(RTKSpec1, workload, time_slice_ticks=2)
        # The high-priority task gains no advantage under round robin.
        assert abs(completions["low"] - completions["high"]) <= 3.0

    def test_invalid_time_slice_rejected(self):
        with pytest.raises(ValueError):
            RTKSpec1(Simulator("bad"), time_slice_ticks=0)

    def test_describe_reports_scheduler(self):
        kernel = RTKSpec1(Simulator("describe1"))
        assert kernel.describe()["scheduler"] == "RoundRobinScheduler"
        assert kernel.describe()["kernel"] == "RTK-Spec I"


class TestRTKSpec2:
    def test_priority_preemption(self):
        workload = [("low", 30, 12), ("high", 5, 4)]
        _, kernel, completions = run_tasks(RTKSpec2, workload)
        # The high-priority task finishes first even though both start together.
        assert completions["high"] < completions["low"]
        assert completions["high"] <= 6.0

    def test_equal_priorities_run_fifo(self):
        workload = [("first", 10, 5), ("second", 10, 5)]
        _, _, completions = run_tasks(RTKSpec2, workload)
        assert completions["first"] < completions["second"]

    def test_sleep_and_wakeup(self):
        simulator = Simulator("rtk2-sleep")
        kernel = RTKSpec2(simulator)
        log = []

        def sleeper():
            yield from kernel.api.sim_wait(duration=SimTime.ms(1))
            yield from kernel.sleep()
            log.append(("woke", simulator.now.to_ms()))

        def waker():
            yield from kernel.delay(SimTime.ms(10))
            kernel.wakeup(sleeper_task)
            log.append(("waker-done", simulator.now.to_ms()))

        sleeper_task = kernel.create_task(sleeper, priority=5, name="sleeper")
        waker_task = kernel.create_task(waker, priority=10, name="waker")
        kernel.start_task(sleeper_task)
        kernel.start_task(waker_task)
        simulator.run(SimTime.ms(50))
        data = dict(log)
        assert data["woke"] >= 10.0

    def test_delay_suspends_for_requested_time(self):
        simulator = Simulator("rtk2-delay")
        kernel = RTKSpec2(simulator)
        log = []

        def body():
            yield from kernel.delay(SimTime.ms(15))
            log.append(simulator.now.to_ms())

        kernel.start_task(kernel.create_task(body, priority=5))
        simulator.run(SimTime.ms(60))
        assert log and 15.0 <= log[0] <= 17.0

    def test_exit_task_ends_body(self):
        simulator = Simulator("rtk2-exit")
        kernel = RTKSpec2(simulator)
        log = []

        def body():
            yield from kernel.api.sim_wait(duration=SimTime.ms(1))
            log.append("before-exit")
            yield from kernel.exit_task()
            log.append("after-exit")  # pragma: no cover - must not run

        kernel.start_task(kernel.create_task(body, priority=5))
        simulator.run(SimTime.ms(20))
        assert log == ["before-exit"]


class TestSharedChassis:
    def test_task_registry(self):
        kernel = RTKSpec2(Simulator("registry"))
        first = kernel.create_task(lambda: iter(()), priority=3, name="one")
        second = kernel.create_task(lambda: iter(()), priority=4, name="two")
        assert [task.name for task in kernel.tasks()] == ["one", "two"]
        assert first.task_id != second.task_id

    def test_same_workload_same_total_time(self):
        """Both kernels do the same total work; only the interleaving differs."""
        workload = [("a", 5, 7), ("b", 15, 9), ("c", 25, 11)]
        _, _, rr = run_tasks(RTKSpec1, workload, time_slice_ticks=3)
        _, _, prio = run_tasks(RTKSpec2, workload)
        assert max(rr.values()) == pytest.approx(max(prio.values()), abs=3.0)
