"""The perf-delta gate: ``repro bench compare`` semantics and exit codes.

The gate's contract is exit-code shaped — 0 clean, 1 regression, 2 unusable
input — because CI consumes it blind.  Direction inference is pinned
per-suffix so a renamed or newly added metric family keeps gating without a
registry edit.
"""

import json

import pytest

from repro.campaign.cli import main as cli_main
from repro.perf.bench import BENCH_SCHEMA
from repro.perf.compare import (
    CODE_METRICS_IGNORE,
    COMPARE_SCHEMA,
    DEFAULT_MAX_REGRESS_PCT,
    ReportError,
    compare_reports,
    format_compare,
    load_report,
    metric_direction,
    resolve_ignore,
)


def make_report(**metrics):
    """A minimal schema-tagged report with one flattenable section."""
    document = {"schema": BENCH_SCHEMA, "pr": 7, "quick": False}
    document["microbench"] = dict(metrics)
    return document


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestMetricDirection:
    @pytest.mark.parametrize("key,expected", [
        ("microbench.dispatches_per_s", "higher"),
        ("batch.fused_speedup", "higher"),
        ("scenarios.quickstart.s_over_r", "higher"),
        ("table2.no_gui_s_over_r", "higher"),
        ("scenarios.quickstart.r_over_s", "lower"),
        ("grid.hit_seconds", "lower"),
        ("analytics.warm_query_ms", "lower"),
        # Configuration echoes: directional-looking suffixes, no direction.
        ("scenarios.quickstart.simulated_ms", None),
        ("batch.duration_ms", None),
        ("workload.family_members", None),
        ("pr", None),
        ("scenarios.quickstart.context_switches", None),
        # The bare speedup ratio is derived from two gated wall clocks and
        # drops whenever the fresh path improves — neutral by design.
        ("grid.speedup", None),
    ])
    def test_suffix_rules(self, key, expected):
        assert metric_direction(key) == expected


class TestCompareReports:
    def test_within_threshold_is_ok(self):
        old = make_report(dispatches_per_s=1000.0)
        new = make_report(dispatches_per_s=950.0)  # -5% on higher-is-better
        document = compare_reports(old, new)
        assert document["verdict"] == "ok"
        assert document["schema"] == COMPARE_SCHEMA
        (row,) = [r for r in document["rows"]
                  if r["metric"] == "microbench.dispatches_per_s"]
        assert row["status"] == "ok"
        assert row["delta_pct"] == pytest.approx(-5.0)

    def test_regression_beyond_threshold_trips(self):
        old = make_report(dispatches_per_s=1000.0, hit_seconds=0.01)
        new = make_report(dispatches_per_s=1000.0, hit_seconds=0.02)
        document = compare_reports(old, new)
        assert document["verdict"] == "regression"
        assert document["regressions"] == ["microbench.hit_seconds"]

    def test_improvement_and_custom_threshold(self):
        old = make_report(dispatches_per_s=1000.0)
        new = make_report(dispatches_per_s=1200.0)
        (row,) = [r for r in compare_reports(old, new)["rows"]
                  if r["metric"] == "microbench.dispatches_per_s"]
        assert row["status"] == "improved"
        # The same +20% flips to regression under lower-is-better.
        old = make_report(run_seconds=1.0)
        new = make_report(run_seconds=1.2)
        tight = compare_reports(old, new, max_regress_pct=5.0)
        assert tight["verdict"] == "regression"
        loose = compare_reports(old, new, max_regress_pct=25.0)
        assert loose["verdict"] == "ok"

    def test_added_and_removed_metrics_never_gate(self):
        old = make_report(gone_per_s=10.0)
        new = make_report(fresh_per_s=10.0)
        document = compare_reports(old, new)
        statuses = {r["metric"].rsplit(".", 1)[-1]: r["status"]
                    for r in document["rows"]
                    if r["metric"].startswith("microbench.")}
        assert statuses == {"gone_per_s": "removed", "fresh_per_s": "added"}
        assert document["verdict"] == "ok"

    def test_zero_baseline_is_informational(self):
        old = make_report(odd_per_s=0.0)
        new = make_report(odd_per_s=5.0)
        (row,) = [r for r in compare_reports(old, new)["rows"]
                  if r["metric"] == "microbench.odd_per_s"]
        assert row["status"] == "info"
        assert row["delta_pct"] is None

    def test_format_compare_renders_table_and_verdict(self):
        old = make_report(dispatches_per_s=1000.0)
        new = make_report(dispatches_per_s=500.0)
        text = format_compare(compare_reports(old, new))
        assert "microbench.dispatches_per_s" in text
        assert "-50.0%" in text
        assert "REGRESSION" in text


class TestIgnoreGlobs:
    def test_ignored_regression_does_not_gate(self):
        old = make_report(dispatches_per_s=1000.0, x_per_s=100.0)
        new = make_report(dispatches_per_s=500.0, x_per_s=101.0)
        document = compare_reports(
            old, new, ignore=("microbench.dispatches_per_s",)
        )
        assert document["verdict"] == "ok"
        assert document["ignored_keys"] == 1
        assert all(
            row["metric"] != "microbench.dispatches_per_s"
            for row in document["rows"]
        )

    def test_glob_matches_whole_subtrees(self):
        old = make_report(a_per_s=1.0, b_per_s=2.0)
        new = make_report(a_per_s=0.1, b_per_s=0.2)
        document = compare_reports(old, new, ignore=("microbench.*",))
        assert document["verdict"] == "ok"
        assert all(not row["metric"].startswith("microbench.")
                   for row in document["rows"])

    def test_ignore_hides_added_and_removed_keys_too(self):
        old = make_report(gone_per_s=1.0)
        new = make_report(fresh_per_s=1.0)
        document = compare_reports(
            old, new, ignore=("microbench.gone_per_s", "microbench.fresh_per_s")
        )
        assert document["ignored_keys"] == 2
        assert all(row["status"] not in ("added", "removed")
                   for row in document["rows"])

    def test_patterns_recorded_in_document_and_rendering(self):
        old = make_report(a_per_s=1.0)
        new = make_report(a_per_s=1.0)
        document = compare_reports(old, new, ignore=("host.*",))
        assert document["ignore"] == ["host.*"]
        assert "ignored via 1 glob(s)" in format_compare(document)

    def test_resolve_ignore_expands_presets(self):
        patterns = resolve_ignore(["custom.*"], ["code-metrics"])
        assert patterns[0] == "custom.*"
        assert set(CODE_METRICS_IGNORE) <= set(patterns)

    def test_unknown_preset_raises_report_error(self):
        with pytest.raises(ReportError, match="unknown ignore preset"):
            resolve_ignore([], ["nope"])

    def test_code_metrics_preset_drops_host_and_config_rows(self):
        old = make_report(dispatches_per_s=1000.0)
        old["host"] = {"cores": 8}
        old["batch"] = {"members": 24, "fused_runs_per_s": 10.0}
        new = make_report(dispatches_per_s=1100.0)
        new["host"] = {"cores": 16}
        new["batch"] = {"members": 48, "fused_runs_per_s": 11.0}
        document = compare_reports(
            old, new, ignore=resolve_ignore(presets=["code-metrics"])
        )
        metrics = {row["metric"] for row in document["rows"]}
        assert "host.cores" not in metrics
        assert "batch.members" not in metrics
        assert "pr" not in metrics
        assert "batch.fused_runs_per_s" in metrics
        assert "microbench.dispatches_per_s" in metrics


class TestLoadReport:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReportError, match="cannot read"):
            load_report(str(tmp_path / "nope.json"))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ReportError, match="corrupt"):
            load_report(str(path))

    def test_wrong_schema(self, tmp_path):
        path = write(tmp_path, "other.json", {"schema": "other/1"})
        with pytest.raises(ReportError, match="not a bench report"):
            load_report(path)


class TestCli:
    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        old = write(tmp_path, "old.json", make_report(dispatches_per_s=1000.0))
        new = write(tmp_path, "new.json", make_report(dispatches_per_s=1010.0))
        assert cli_main(["bench", "compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "no directional metric regressed" in out
        assert f"{DEFAULT_MAX_REGRESS_PCT:g}%" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        old = write(tmp_path, "old.json", make_report(dispatches_per_s=1000.0))
        new = write(tmp_path, "new.json", make_report(dispatches_per_s=800.0))
        assert cli_main(["bench", "compare", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_max_regress_flag_loosens_the_gate(self, tmp_path):
        old = write(tmp_path, "old.json", make_report(dispatches_per_s=1000.0))
        new = write(tmp_path, "new.json", make_report(dispatches_per_s=800.0))
        assert cli_main([
            "bench", "compare", old, new, "--max-regress", "25",
        ]) == 0

    def test_unreadable_report_is_one_line_error_exit_two(
        self, tmp_path, capsys
    ):
        good = write(tmp_path, "good.json", make_report(x_per_s=1.0))
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert cli_main(["bench", "compare", str(bad), good]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_mismatched_schema_exit_two(self, tmp_path, capsys):
        good = write(tmp_path, "good.json", make_report(x_per_s=1.0))
        other = write(tmp_path, "other.json",
                      {"schema": "repro-campaign-metrics/1"})
        assert cli_main(["bench", "compare", good, other]) == 2
        assert "not a bench report" in capsys.readouterr().err

    def test_json_mode_emits_comparison_document(self, tmp_path, capsys):
        old = write(tmp_path, "old.json", make_report(dispatches_per_s=1.0))
        new = write(tmp_path, "new.json", make_report(dispatches_per_s=1.0))
        assert cli_main(["bench", "compare", old, new, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == COMPARE_SCHEMA
        assert document["verdict"] == "ok"

    def test_ignore_flag_drops_regressing_metric(self, tmp_path, capsys):
        old = write(tmp_path, "old.json", make_report(dispatches_per_s=1000.0))
        new = write(tmp_path, "new.json", make_report(dispatches_per_s=500.0))
        assert cli_main([
            "bench", "compare", old, new,
            "--ignore", "microbench.dispatches_per_s",
        ]) == 0
        assert "ignored via 1 glob(s)" in capsys.readouterr().out

    def test_preset_flag_applies_named_ignore_list(self, tmp_path):
        old_doc = make_report(dispatches_per_s=1000.0)
        old_doc["host"] = {"cores": 16}
        new_doc = make_report(dispatches_per_s=1000.0)
        new_doc["host"] = {"cores": 2}
        old = write(tmp_path, "old.json", old_doc)
        new = write(tmp_path, "new.json", new_doc)
        assert cli_main([
            "bench", "compare", old, new, "--preset", "code-metrics",
        ]) == 0

    def test_unknown_preset_exits_two(self, tmp_path, capsys):
        old = write(tmp_path, "old.json", make_report(x_per_s=1.0))
        new = write(tmp_path, "new.json", make_report(x_per_s=1.0))
        assert cli_main([
            "bench", "compare", old, new, "--preset", "nope",
        ]) == 2
        assert "unknown ignore preset" in capsys.readouterr().err

    def test_plain_bench_parser_still_accepts_quick(self, capsys):
        """Adding the subcommand must not break `repro bench --quick`."""
        assert cli_main(["bench", "--quick"]) == 2  # refuses default --out
        assert "--out" in capsys.readouterr().err
