"""Schema and CLI tests for the ``repro.perf`` bench harness."""

import json

import pytest

from repro.campaign.cli import main as cli_main
from repro.perf.bench import (
    BENCH_SCHEMA,
    CURRENT_PR,
    bench_scheduler_ops,
    bench_table2_speed,
    default_report_path,
    render_report,
    run_benchmarks,
    run_scenario_benchmarks,
    validate_report,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    """One quick full-benchmark document shared by the schema tests."""
    return run_benchmarks(quick=True, scenarios=["quickstart", "rtk-priority"])


class TestReportSchema:
    def test_quick_report_is_schema_valid(self, quick_report):
        assert validate_report(quick_report) == []

    def test_report_identity_fields(self, quick_report):
        assert quick_report["schema"] == BENCH_SCHEMA
        assert quick_report["pr"] == CURRENT_PR
        assert quick_report["quick"] is True
        assert quick_report["host"]["python"]

    def test_microbench_rates_positive(self, quick_report):
        for key, value in quick_report["microbench"].items():
            assert value > 0, key

    def test_scenarios_cover_request(self, quick_report):
        assert set(quick_report["scenarios"]) == {"quickstart", "rtk-priority"}
        entry = quick_report["scenarios"]["quickstart"]
        assert entry["simulated_ms"] == 50.0
        assert entry["wall_clock_seconds"] > 0
        # The CounterSink on the campaign topic saw the run's span events.
        assert entry["events"]["campaign/run_start"] == 1
        assert entry["events"]["campaign/run_end"] == 1
        # And the sched topic tallied the dispatch markers.
        assert entry["events"]["sched/dispatch"] == entry["context_switches"]

    def test_validate_report_flags_problems(self, quick_report):
        broken = dict(quick_report)
        broken.pop("microbench")
        broken["schema"] = "nonsense/9"
        problems = validate_report(broken)
        assert any("microbench" in problem for problem in problems)
        assert any("schema" in problem for problem in problems)

    def test_write_report_round_trips(self, quick_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(quick_report, str(path))
        loaded = json.loads(path.read_text())
        assert validate_report(loaded) == []
        assert loaded == quick_report

    def test_render_report_mentions_every_scenario(self, quick_report):
        text = render_report(quick_report)
        for name in quick_report["scenarios"]:
            assert name in text


class TestPieces:
    def test_default_report_path_tracks_pr_and_is_anchored(self):
        import os

        path = default_report_path()
        assert os.path.basename(path) == f"BENCH_PR{CURRENT_PR}.json"
        # Anchored to the source tree, not the current working directory.
        assert os.path.isabs(path)
        assert os.path.isdir(os.path.join(os.path.dirname(path), "src"))

    def test_scheduler_ops_bench_runs_small(self):
        assert bench_scheduler_ops(threads=8, rounds=5, repeats=1) > 0

    def test_table2_rows_shape(self):
        table2 = bench_table2_speed(simulated_ms=20)
        assert table2["no_gui_s_over_r"] > 0
        assert any(not row["gui_enabled"] for row in table2["rows"])

    def test_scenario_benchmarks_time_the_run(self):
        results = run_scenario_benchmarks(["rtk-round-robin"])
        entry = results["rtk-round-robin"]
        assert entry["s_over_r"] > 0
        assert entry["events"]["sched/dispatch"] >= 1


class TestBenchCli:
    def test_bench_writes_schema_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_TEST.json"
        code = cli_main([
            "bench", "--quick", "--scenario", "quickstart",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "timed waits" in captured
        document = json.loads(out.read_text())
        assert validate_report(document) == []
        assert document["scenarios"].keys() == {"quickstart"}

    def test_unknown_scenario_fails_fast(self):
        """A typo'd scenario name dies before the expensive phases run."""
        import time

        from repro.campaign.spec import SpecError
        from repro.perf.bench import run_benchmarks

        start = time.perf_counter()
        with pytest.raises(SpecError):
            run_benchmarks(quick=False, scenarios=["videogme"])
        assert time.perf_counter() - start < 1.0

    def test_stdout_mode_keeps_stdout_pure_json(self, capsys):
        code = cli_main(["bench", "--quick", "--scenario", "rtk-priority",
                         "--out", "-"])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)  # stdout must be JSON only
        assert validate_report(document) == []
        assert "timed waits" in captured.err

    def test_quick_mode_refuses_default_out(self, capsys):
        """--quick must never silently overwrite the trajectory file."""
        code = cli_main(["bench", "--quick"])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_committed_trajectory_file_is_valid(self):
        """The checked-in BENCH_PR<n>.json must match the live schema."""
        import os

        path = default_report_path()
        if not os.path.exists(path):
            pytest.skip("trajectory file not generated in this checkout")
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert validate_report(document) == []
        assert document["quick"] is False
