"""Static hygiene lint for the hot-plane modules.

The PR-3/PR-10 perf passes rest on a handful of structural rules that are
easy to erode one innocent-looking edit at a time.  This module walks the
AST of every hot module and forbids:

* **``**``-expansion at call sites** — ``topic.emit(kind, t, **fields)``
  packs and unpacks a fresh dict per publish; hot modules must use the
  positional fast paths (``emit1``/``emit_fields``) or spell keywords out.
  (Accepting ``**fields`` in a *definition* stays legal — that is the
  slow-path API surface, paid only by callers who opt in.)
* **closures** — nested ``def``/``lambda`` bodies capture cells, defeat
  CPython's method caches, and are the main obstacle to compiling these
  modules with mypyc-style AOT tools later.
* **``SimTime(...)`` construction** — the hot plane computes in plain int
  nanoseconds; each ``SimTime`` is ~100 ns of allocation the loops cannot
  afford.  Legitimate boundary constructions (returning a public value,
  refreshing the ``now`` cache) are whitelisted line-by-line with a
  trailing ``# simtime-boundary`` comment, which doubles as reviewer
  documentation.

The rules are deliberately syntactic: ``SimTime.coerce``/``SimTime.ms``
are attribute calls (boundary coercions by convention) and stay allowed.
"""

import ast
import os

import pytest

REPO_SRC = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "src", "repro"
)

#: The hot-plane modules the PR-10 rules protect.
HOT_MODULES = (
    "sysc/kernel.py",
    "core/scheduler.py",
    "core/simapi.py",
    "obs/bus.py",
)

#: Trailing comment that whitelists one SimTime construction line.
BOUNDARY_MARKER = "# simtime-boundary"


def _load(module: str):
    path = os.path.abspath(os.path.join(REPO_SRC, module))
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return path, source.splitlines(), ast.parse(source, filename=path)


def _function_stack_violations(tree, lines):
    """Yield ``(lineno, message)`` for every hygiene violation in *tree*."""
    # Track nesting of function bodies so module-level and class-level defs
    # pass while a def-inside-def (a closure) fails.
    parent_functions = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parent_functions[child] = parent_functions.get(node, 0) + (
                1 if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                else 0
            )
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            yield node.lineno, "lambda (closure) in a hot module"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if parent_functions.get(node, 0) > 0:
                yield node.lineno, (
                    f"nested function {node.name!r} (closure) in a hot module"
                )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    yield node.lineno, (
                        "**-expansion at a call site (per-call dict pack)"
                    )
            func = node.func
            if isinstance(func, ast.Name) and func.id == "SimTime":
                line = lines[node.lineno - 1]
                if BOUNDARY_MARKER not in line:
                    yield node.lineno, (
                        "SimTime(...) constructed off the int-ns plane "
                        f"(whitelist with a trailing {BOUNDARY_MARKER!r} "
                        "comment if this is a real boundary)"
                    )


@pytest.mark.parametrize("module", HOT_MODULES)
def test_hot_module_is_hygienic(module):
    path, lines, tree = _load(module)
    violations = sorted(_function_stack_violations(tree, lines))
    assert not violations, (
        f"{module} violates the hot-plane hygiene rules:\n" + "\n".join(
            f"  {path}:{lineno}: {message}"
            for lineno, message in violations
        )
    )


def test_marker_is_not_sprinkled_freely():
    """The whitelist must stay a short, deliberate list — a marker count
    creeping up is the lint being papered over."""
    total = 0
    for module in HOT_MODULES:
        _, lines, _ = _load(module)
        total += sum(1 for line in lines if BOUNDARY_MARKER in line)
    assert total <= 6, (
        f"{total} '# simtime-boundary' markers across the hot modules — "
        "the int-ns discipline is eroding; push conversions to the callers"
    )


def test_lint_actually_detects_violations():
    """Self-test: each rule trips on a minimal offending snippet."""
    bad = (
        "def outer():\n"
        "    def inner():\n"
        "        pass\n"
        "    f = lambda: 1\n"
        "    topic.emit('k', 0, **fields)\n"
        "    t = SimTime(5)\n"
    )
    lines = bad.splitlines()
    messages = [m for _, m in _function_stack_violations(ast.parse(bad), lines)]
    assert any("nested function" in m for m in messages)
    assert any("lambda" in m for m in messages)
    assert any("**-expansion" in m for m in messages)
    assert any("SimTime" in m for m in messages)
