"""Pipeline telemetry: spans measure the pipeline without ever entering it.

Two families of guarantees:

* **Recorder mechanics** — record/span/adopt/summary/sidecar round trip,
  the schema header line, worker-span adoption tagging.
* **Isolation** — a telemetry-instrumented run produces byte-identical
  deterministic artifacts (metrics document, event stream, batch
  aggregate, store entries) to an uninstrumented run.  Wall-clock spans
  live in the sidecar and nowhere else.
"""

import pytest

from repro.analytics.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetryRecorder,
    format_telemetry_summary,
    load_telemetry,
    summarize_spans,
)
from repro.campaign import get_scenario, run_spec
from repro.campaign.batch import run_batch
from repro.grid.store import ResultStore
from repro.obs.bus import canonical_json


def fast_spec(name="synthetic-tkernel", **overrides):
    return get_scenario(name).with_overrides(
        {"duration_ms": 30.0, **overrides}
    ).validate()


class TestRecorder:
    def test_record_and_summary(self):
        recorder = TelemetryRecorder()
        recorder.record("build", 0.25, scenario="s")
        recorder.record("build", 0.75, scenario="t")
        recorder.record("run", 1.0)
        summary = recorder.summary()
        assert list(summary) == ["build", "run"]
        assert summary["build"]["spans"] == 2
        assert summary["build"]["total_seconds"] == pytest.approx(1.0)
        assert summary["build"]["mean_seconds"] == pytest.approx(0.5)

    def test_span_context_manager_records_on_error(self):
        recorder = TelemetryRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        assert len(recorder) == 1
        assert recorder.spans[0]["phase"] == "doomed"

    def test_adopt_tags_worker_spans(self):
        worker = TelemetryRecorder()
        worker.record("run", 0.5, scenario="s")
        coordinator = TelemetryRecorder()
        coordinator.adopt(worker.spans, run=7)
        span = coordinator.spans[0]
        assert span["phase"] == "run" and span["run"] == 7
        assert span["scenario"] == "s"

    def test_sidecar_round_trip(self, tmp_path):
        recorder = TelemetryRecorder()
        recorder.record("merge", 0.125, shards=2)
        path = str(tmp_path / "telemetry.jsonl")
        lines = recorder.write_jsonl(path)
        assert lines == 2  # schema header + one span
        with open(path, "r", encoding="utf-8") as handle:
            header = handle.readline()
        assert TELEMETRY_SCHEMA in header
        spans = load_telemetry(path)
        assert spans == [{"phase": "merge", "seconds": 0.125, "shards": 2}]

    def test_summarize_spans_matches_recorder(self, tmp_path):
        recorder = TelemetryRecorder()
        recorder.record("run", 2.0)
        path = str(tmp_path / "t.jsonl")
        recorder.write_jsonl(path)
        assert summarize_spans(load_telemetry(path)) == recorder.summary()

    def test_format_summary_renders_phases(self):
        recorder = TelemetryRecorder()
        recorder.record("compose", 0.001)
        text = format_telemetry_summary(recorder.summary())
        assert "compose" in text and "mean_ms" in text


class TestIsolation:
    def test_run_artifacts_identical_with_and_without_telemetry(self):
        spec = fast_spec()
        plain = run_spec(spec)
        recorder = TelemetryRecorder()
        timed = run_spec(spec, telemetry=recorder)

        assert timed.metrics_json() == plain.metrics_json()
        assert canonical_json(timed.events) == canonical_json(plain.events)
        phases = {span["phase"] for span in recorder.spans}
        assert {"compose", "build", "run"} <= phases

    def test_store_entries_identical_with_and_without_telemetry(
        self, tmp_path
    ):
        spec = fast_spec()
        plain_store = ResultStore(str(tmp_path / "plain"))
        timed_store = ResultStore(str(tmp_path / "timed"))
        run_spec(spec, collect_events=False, store=plain_store)
        recorder = TelemetryRecorder()
        run_spec(spec, collect_events=False, store=timed_store,
                 telemetry=recorder)

        plain_entry = plain_store.lookup(spec)
        timed_entry = timed_store.lookup(spec)
        assert plain_entry is not None and timed_entry is not None
        with open(plain_entry.events_path, "rb") as handle:
            plain_bytes = handle.read()
        with open(timed_entry.events_path, "rb") as handle:
            timed_bytes = handle.read()
        assert plain_bytes == timed_bytes
        assert {"store", "run"} <= {span["phase"] for span in recorder.spans}

    def test_batch_aggregate_identical_with_and_without_telemetry(self):
        specs = [fast_spec(), fast_spec("rtk-priority")]
        plain = run_batch(specs, workers=1, collect_events=False)
        recorder = TelemetryRecorder()
        timed = run_batch(specs, workers=1, collect_events=False,
                          telemetry=recorder)
        assert canonical_json(timed.deterministic_document()) == (
            canonical_json(plain.deterministic_document())
        )
        assert len(recorder) > 0

    def test_parallel_batch_adopts_worker_spans(self):
        specs = [fast_spec(seed=seed) for seed in (1, 2)]
        recorder = TelemetryRecorder()
        run_batch(specs, workers=2, collect_events=False, telemetry=recorder)
        runs = {span.get("run") for span in recorder.spans}
        assert {0, 1} <= runs
        assert {"run", "build"} <= {span["phase"] for span in recorder.spans}

    def test_cache_hit_records_lookup_and_replay(self, tmp_path):
        spec = fast_spec()
        store = ResultStore(str(tmp_path / "cache"))
        run_spec(spec, collect_events=False, store=store)
        recorder = TelemetryRecorder()
        hit = run_spec(spec, collect_events=False, store=store,
                       telemetry=recorder)
        assert hit.cached
        phases = [span["phase"] for span in recorder.spans]
        assert phases == ["lookup", "replay"]
