"""Audit reports over a warm corpus — with the zero-simulation guarantee.

The headline acceptance test lives here: every ``repro report`` flavour
runs over a warm store with ``build_scenario`` poisoned *and*
``Simulator.__init__`` poisoned, proving the report plane is pure artifact
analysis.  The report content itself is checked against the known structure
of generated periodic families (requested utilization, RM bounds, deadline
reconstruction, latency percentiles, per-family means).
"""

import math

import pytest

from repro.analytics.corpus import open_index
from repro.analytics.reports import (
    deadline_report,
    family_report,
    latency_report,
    rm_bound,
    schedulability_audit,
)
from repro.campaign import get_scenario, run_spec
from repro.campaign.batch import run_batch
from repro.grid.store import ResultStore
from repro.workload.families import FamilySpec, expand_family

FAMILY = FamilySpec(
    name="report-family", count=4, seed=11, duration_ms=30.0,
    laws=("periodic",),
)


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A warm store + fresh index over one periodic family and one
    registry scenario (the non-periodic audit row)."""
    store = ResultStore(str(tmp_path_factory.mktemp("reports") / "cache"))
    specs = expand_family(FAMILY)
    run_batch(specs, workers=1, collect_events=False, store=store)
    run_spec(
        get_scenario("rtk-priority").with_overrides(
            {"duration_ms": 30.0}
        ).validate(),
        collect_events=False, store=store,
    )
    return store


@pytest.fixture()
def sealed(warm, monkeypatch):
    """The warm corpus with every simulation entry point poisoned."""
    import repro.campaign.runner as runner_module
    import repro.sysc.kernel as kernel_module

    def forbidden_build(_spec, *args, **kwargs):
        raise AssertionError("report plane called build_scenario")

    def forbidden_sim(self, *args, **kwargs):
        raise AssertionError("report plane constructed a Simulator")

    monkeypatch.setattr(runner_module, "build_scenario", forbidden_build)
    monkeypatch.setattr(kernel_module.Simulator, "__init__", forbidden_sim)
    return warm


class TestZeroSimulation:
    def test_every_report_runs_without_simulating(self, sealed):
        with open_index(sealed) as index:
            audit = schedulability_audit(index)
            deadlines = deadline_report(index, sealed)
            latency = latency_report(index, sealed)
            families = family_report(index)
        assert len(audit) == FAMILY.count + 1
        assert len(deadlines) == FAMILY.count
        assert len(latency["runs"]) == FAMILY.count + 1
        assert len(families) >= 1


class TestAudit:
    def test_periodic_rows_carry_utilization_and_bound(self, warm):
        with open_index(warm) as index:
            audit = schedulability_audit(index)
        periodic = [row for row in audit if row["periodic_tasks"] > 0]
        assert len(periodic) == FAMILY.count
        for row in periodic:
            assert 0.0 < row["requested_utilization"]
            assert row["rm_bound"] == pytest.approx(
                rm_bound(row["periodic_tasks"]), abs=1e-6
            )
            assert row["verdict"] in ("rm-bound-ok", "check", "overload")

    def test_non_generated_rows_get_dash_verdict(self, warm):
        with open_index(warm) as index:
            audit = schedulability_audit(index)
        rows = [row for row in audit if row["periodic_tasks"] == 0]
        assert len(rows) == 1 and rows[0]["verdict"] == "-"

    def test_where_filters_the_audit(self, warm):
        with open_index(warm) as index:
            audit = schedulability_audit(
                index, where=["spec.workload=generated"],
            )
        assert len(audit) == FAMILY.count

    def test_rm_bound_values(self):
        assert rm_bound(0) == 0.0
        assert rm_bound(1) == 1.0
        assert math.isclose(rm_bound(2), 2 * (2 ** 0.5 - 1))


class TestDeadlines:
    def test_rows_reconstruct_jobs_and_percentiles(self, warm):
        with open_index(warm) as index:
            report = deadline_report(index, warm)
        assert len(report) == FAMILY.count
        for row in report:
            assert row["jobs"] > 0
            assert 0 <= row["misses"] <= row["jobs"]
            assert row["miss_ratio"] == pytest.approx(
                row["misses"] / row["jobs"], abs=1e-6
            )
            assert 0.0 <= row["response_p50_ms"] <= row["response_p99_ms"]

    def test_deterministic_across_calls(self, warm):
        from repro.obs.bus import canonical_json

        with open_index(warm) as index:
            first = canonical_json(deadline_report(index, warm))
            second = canonical_json(deadline_report(index, warm))
        assert first == second


class TestLatency:
    def test_percentiles_ordered_and_aggregated(self, warm):
        with open_index(warm) as index:
            report = latency_report(index, warm)
        total = 0
        for row in report["runs"]:
            assert row["p50_us"] <= row["p90_us"] <= row["p99_us"]
            assert row["p99_us"] <= row["max_us"]
            total += row["slices"]
        assert report["aggregate"]["slices"] == total
        assert report["aggregate"]["max_us"] == max(
            row["max_us"] for row in report["runs"]
        )


class TestFamilies:
    def test_family_rows_group_and_average(self, warm):
        with open_index(warm) as index:
            report = family_report(index)
        by_family = {row["family"]: row for row in report}
        assert by_family[FAMILY.name]["runs"] == FAMILY.count
        assert "mean.metrics.cpu_utilization" in by_family[FAMILY.name]

    def test_baseline_adds_deltas(self, warm):
        with open_index(warm) as index:
            report = family_report(index, baseline=FAMILY.name)
        base = next(row for row in report if row["family"] == FAMILY.name)
        assert base["delta.metrics.cpu_utilization"] == pytest.approx(0.0)

    def test_unknown_baseline_rejected(self, warm):
        from repro.analytics.corpus import AnalyticsError

        with open_index(warm) as index:
            with pytest.raises(AnalyticsError, match="baseline"):
                family_report(index, baseline="no-such-family")
