"""The corpus index: a pure, deterministic function of the result store.

The acceptance bar for the analytics plane's index layer:

* rebuilding the index twice over the same store yields **byte-identical**
  canonical query output,
* a store filled by a serial batch and a store filled by a sharded
  run+merge of the *same family* index to byte-identical query output
  (wall-clock manifest fields never leak into the index),
* the index goes stale when the store changes and ``open_index`` rebuilds
  it (or refuses, with ``auto_build=False``).
"""

import os

import pytest

from repro.analytics.corpus import (
    AnalyticsError,
    CorpusIndex,
    build_index,
    corpus_fingerprint,
    default_index_path,
    index_status,
    open_index,
    parse_filter,
)
from repro.campaign.batch import run_batch
from repro.grid.executor import merge_shards, run_shard
from repro.grid.shard import plan_shard
from repro.grid.store import ResultStore
from repro.obs.bus import canonical_json
from repro.workload.families import FamilySpec, expand_family

FAMILY = FamilySpec(
    name="corpus-family", count=4, seed=21, duration_ms=20.0,
    laws=("periodic",),
)


@pytest.fixture(scope="module")
def family_specs():
    return expand_family(FAMILY)


def query_bytes(store):
    """The canonical row-mode query output of a store's (fresh) index."""
    with open_index(store) as index:
        headers, rows = index.query()
        return canonical_json(index.documents(headers, rows))


class TestDeterminism:
    def test_rebuild_twice_is_byte_identical(self, tmp_path, family_specs):
        store = ResultStore(str(tmp_path / "cache"))
        run_batch(family_specs, workers=1, collect_events=False, store=store)

        build_index(store)
        first = query_bytes(store)
        os.remove(default_index_path(store))
        build_index(store)
        second = query_bytes(store)
        assert first == second

    def test_serial_and_sharded_corpora_index_identically(
        self, tmp_path, family_specs
    ):
        serial_store = ResultStore(str(tmp_path / "serial_cache"))
        run_batch(family_specs, workers=1, collect_events=False,
                  store=serial_store)

        sharded_store = ResultStore(str(tmp_path / "sharded_cache"))
        shard_dirs = []
        for shard_index in range(2):
            plan = plan_shard(family_specs, 2, shard_index)
            shard_dir = str(tmp_path / f"shard_{shard_index}")
            run_shard(plan, shard_dir, store=sharded_store)
            shard_dirs.append(shard_dir)
        merge_shards(shard_dirs, str(tmp_path / "merged"))

        assert query_bytes(serial_store) == query_bytes(sharded_store)

    def test_grouped_query_is_deterministic(self, tmp_path, family_specs):
        store = ResultStore(str(tmp_path / "cache"))
        run_batch(family_specs, workers=1, collect_events=False, store=store)
        outputs = set()
        for _ in range(2):
            build_index(store)
            with open_index(store) as index:
                headers, rows = index.query(
                    group_by=["spec.kernel"],
                    aggregate=["count", "mean:metrics.cpu_utilization"],
                )
                outputs.add(canonical_json(index.documents(headers, rows)))
        assert len(outputs) == 1


class TestFreshness:
    def test_missing_index_reports_absent(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        status = index_status(store)
        assert status["present"] is False and status["fresh"] is False

    def test_store_change_goes_stale_and_rebuilds(self, tmp_path, family_specs):
        store = ResultStore(str(tmp_path / "cache"))
        run_batch(family_specs[:2], workers=1, collect_events=False,
                  store=store)
        build_index(store)
        assert index_status(store)["fresh"] is True

        run_batch(family_specs[2:], workers=1, collect_events=False,
                  store=store)
        assert index_status(store)["fresh"] is False

        with open_index(store) as index:
            assert index.rebuilt is True
        assert index_status(store)["fresh"] is True

    def test_no_build_refuses_stale_index(self, tmp_path, family_specs):
        store = ResultStore(str(tmp_path / "cache"))
        run_batch(family_specs[:2], workers=1, collect_events=False,
                  store=store)
        with pytest.raises(AnalyticsError, match="missing"):
            open_index(store, auto_build=False)
        build_index(store)
        with open_index(store, auto_build=False) as index:
            assert index.rebuilt is False

    def test_fingerprint_ignores_wall_clock(self, tmp_path, family_specs):
        """The corpus fingerprint digests content hashes, not ``created_utc``
        — re-storing identical artifacts must not invalidate the index."""
        store = ResultStore(str(tmp_path / "cache"))
        run_batch(family_specs[:2], workers=1, collect_events=False,
                  store=store)
        before = corpus_fingerprint(store)
        run_batch(family_specs[:2], workers=1, collect_events=False,
                  store=store, refresh=True)
        assert corpus_fingerprint(store) == before


class TestQueries:
    @pytest.fixture(scope="class")
    def index(self, tmp_path_factory, family_specs):
        store = ResultStore(
            str(tmp_path_factory.mktemp("corpus") / "cache")
        )
        run_batch(family_specs, workers=1, collect_events=False, store=store)
        with open_index(store) as index:
            yield index

    def test_row_mode_orders_by_key(self, index):
        headers, rows = index.query(select=["key"])
        keys = [row[0] for row in rows]
        assert keys == sorted(keys) and len(keys) == FAMILY.count

    def test_where_filters_rows(self, index):
        headers, rows = index.query(
            select=["key", "spec.name"], where=["spec.seed>=0"],
        )
        assert len(rows) == FAMILY.count
        headers, rows = index.query(
            select=["key"], where=["spec.kernel!=tkernel"],
        )
        assert rows == []

    def test_short_column_names_resolve(self, index):
        assert index.resolve_column("kernel") == "spec.kernel"
        assert index.resolve_column("context_switches") == (
            "metrics.context_switches"
        )

    def test_unknown_column_lists_similar(self, index):
        with pytest.raises(AnalyticsError, match="no corpus column"):
            index.resolve_column("kernle")

    def test_bad_aggregate_rejected(self, index):
        with pytest.raises(AnalyticsError, match="bad aggregate"):
            index.query(group_by=["spec.kernel"], aggregate=["median:x"])

    def test_limit_caps_rows(self, index):
        headers, rows = index.query(select=["key"], limit=2)
        assert len(rows) == 2


class TestParseFilter:
    def test_operators(self):
        assert parse_filter("kernel=tkernel") == ("kernel", "=", "tkernel")
        assert parse_filter("seed==3") == ("seed", "=", 3)
        assert parse_filter("util>=0.5") == ("util", ">=", 0.5)
        assert parse_filter("misses!=0") == ("misses", "!=", 0)

    def test_malformed_filter_rejected(self):
        with pytest.raises(AnalyticsError):
            parse_filter("no-operator-here")
