"""The analytics CLI surface: index/query/report verbs and --telemetry.

Everything drives :func:`repro.campaign.cli.main` exactly as a shell would,
over a small warm corpus built once per module.  JSON outputs are parsed
back (they must be canonical and machine-stable); error paths must exit 2
with one-line messages.
"""

import json
import os

import pytest

from repro.campaign.cli import main
from repro.grid.store import ResultStore
from repro.workload.families import FamilySpec


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A warm cache dir holding one small periodic family."""
    root = tmp_path_factory.mktemp("analytics_cli")
    cache = str(root / "cache")
    family_path = str(root / "family.json")
    family = FamilySpec(name="clifam", count=3, seed=5, duration_ms=20.0,
                        laws=("periodic",)).validate()
    with open(family_path, "w", encoding="utf-8") as handle:
        json.dump(family.to_dict(), handle)
    assert main([
        "batch", "--family", family_path, "--serial", "--no-events",
        "--out", str(root / "out"), "--cache", cache,
    ]) == 0
    return cache


class TestIndexVerbs:
    def test_build_then_status_fresh(self, corpus, capsys):
        assert main(["index", "build", "--cache", corpus]) == 0
        out = capsys.readouterr().out
        assert "index built: 3 run(s)" in out

        assert main(["index", "status", "--cache", corpus]) == 0
        out = capsys.readouterr().out
        assert "fresh   : yes" in out

    def test_status_on_missing_index(self, tmp_path, capsys):
        ResultStore(str(tmp_path / "empty"))
        assert main(["index", "status", "--cache",
                     str(tmp_path / "empty")]) == 0
        assert "present : no" in capsys.readouterr().out

    def test_index_needs_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["index", "build"]) == 2
        assert "no result store" in capsys.readouterr().err


class TestQuery:
    def test_row_mode_json_is_canonical_and_stable(self, corpus, capsys):
        assert main(["query", "--cache", corpus, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["query", "--cache", corpus, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        documents = json.loads(first)
        assert len(documents) == 3
        assert all(doc["spec.workload"] == "generated" for doc in documents)

    def test_where_and_select(self, corpus, capsys):
        assert main([
            "query", "--cache", corpus, "--json",
            "--where", "kernel=tkernel", "--select", "key",
            "--select", "spec.name",
        ]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert len(documents) == 3
        assert set(documents[0]) == {"key", "spec.name"}

    def test_group_by_aggregates(self, corpus, capsys):
        assert main([
            "query", "--cache", corpus, "--json",
            "--group-by", "kernel", "--agg", "count",
            "--agg", "mean:cpu_utilization",
        ]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["count"] == 3

    def test_table_mode_renders(self, corpus, capsys):
        assert main(["query", "--cache", corpus, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "Corpus query (2 row(s))" in out

    def test_unknown_column_exits_2(self, corpus, capsys):
        assert main([
            "query", "--cache", corpus, "--where", "bogus=1",
        ]) == 2
        assert "no corpus column" in capsys.readouterr().err

    def test_no_build_refuses_missing_index(self, tmp_path, capsys):
        cache = str(tmp_path / "fresh")
        ResultStore(cache)
        assert main(["query", "--cache", cache, "--no-build"]) == 2
        assert "repro index build" in capsys.readouterr().err


class TestReports:
    def test_audit_json(self, corpus, capsys):
        assert main(["report", "audit", "--cache", corpus, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        assert all("verdict" in row for row in rows)

    def test_deadlines_table(self, corpus, capsys):
        assert main(["report", "deadlines", "--cache", corpus]) == 0
        assert "miss_ratio" in capsys.readouterr().out

    def test_latency_json_has_aggregate(self, corpus, capsys):
        assert main(["report", "latency", "--cache", corpus, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["aggregate"]["slices"] > 0

    def test_family_with_baseline(self, corpus, capsys):
        assert main([
            "report", "family", "--cache", corpus, "--json",
            "--baseline", "clifam",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["family"] == "clifam" and rows[0]["runs"] == 3

    def test_unknown_baseline_exits_2(self, corpus, capsys):
        assert main([
            "report", "family", "--cache", corpus, "--baseline", "nope",
        ]) == 2
        assert "baseline" in capsys.readouterr().err


class TestTelemetryFlag:
    def test_batch_telemetry_sidecar_and_summary(self, corpus, tmp_path,
                                                 capsys):
        out_dir = str(tmp_path / "telemetry_out")
        assert main([
            "batch", "--scenario", "synthetic-tkernel",
            "--matrix", "seed=1", "--set", "duration_ms=20",
            "--serial", "--no-events", "--no-cache",
            "--out", out_dir, "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "pipeline telemetry" in out
        sidecar = os.path.join(out_dir, "telemetry.jsonl")
        assert os.path.isfile(sidecar)

        assert main(["report", "telemetry", sidecar]) == 0
        out = capsys.readouterr().out
        assert "run" in out and "plan" in out

    def test_report_telemetry_json(self, corpus, tmp_path, capsys):
        out_dir = str(tmp_path / "t2")
        assert main([
            "batch", "--scenario", "quickstart", "--matrix", "seed=1",
            "--set", "duration_ms=20", "--serial", "--no-events",
            "--no-cache", "--out", out_dir, "--telemetry",
        ]) == 0
        capsys.readouterr()
        sidecar = os.path.join(out_dir, "telemetry.jsonl")
        assert main(["report", "telemetry", sidecar, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["run"]["spans"] == 1

    def test_batch_without_flag_writes_no_sidecar(self, tmp_path, capsys):
        out_dir = str(tmp_path / "plain_out")
        assert main([
            "batch", "--scenario", "quickstart", "--matrix", "seed=1",
            "--set", "duration_ms=20", "--serial", "--no-events",
            "--no-cache", "--out", out_dir,
        ]) == 0
        capsys.readouterr()
        assert not os.path.exists(os.path.join(out_dir, "telemetry.jsonl"))
