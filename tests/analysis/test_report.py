"""format_table hardening: padding short rows, rejecting overlong ones."""

import pytest

from repro.analysis.report import format_percentage, format_table


class TestFormatTable:
    def test_basic_alignment_unchanged(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("name")
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_short_rows_are_padded_not_truncated(self):
        text = format_table(["metric", "left", "right"], [["cpu", 5]])
        row = text.splitlines()[-1]
        assert "cpu" in row and "5" in row
        # the padded cell renders as blanks, keeping the row full-width
        assert len(row) == len(text.splitlines()[1])

    def test_overlong_row_raises(self):
        with pytest.raises(ValueError, match="row 1 has 3 cells"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert text.splitlines()[0].startswith("a")


def test_format_percentage():
    assert format_percentage(0.1234) == "12.3%"
