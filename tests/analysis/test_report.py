"""format_table hardening: padding short rows, rejecting overlong ones."""

import pytest

from repro.analysis.report import format_percentage, format_table


class TestFormatTable:
    def test_basic_alignment_unchanged(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("name")
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_short_rows_are_padded_not_truncated(self):
        text = format_table(["metric", "left", "right"], [["cpu", 5]])
        row = text.splitlines()[-1]
        assert "cpu" in row and "5" in row
        # the padded cell renders as blanks, keeping the row full-width
        assert len(row) == len(text.splitlines()[1])

    def test_overlong_row_raises(self):
        with pytest.raises(ValueError, match="row 1 has 3 cells"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert text.splitlines()[0].startswith("a")


def test_format_percentage():
    assert format_percentage(0.1234) == "12.3%"


class TestObservabilityReports:
    def test_execution_trace_report_from_ring_sink(self):
        """The Fig. 6 report reads identically from api.gantt or a ring sink."""
        from repro.analysis.trace import ExecutionTraceReport
        from repro.campaign.registry import build_scenario, get_scenario
        from repro.obs import RingBufferSink
        from repro.sysc import SimTime, Simulator

        spec = get_scenario("quickstart")
        build = build_scenario(spec)
        ring = build.simulator.obs.subscribe(RingBufferSink(), ("sched",))
        build.simulator.run(SimTime.ms(spec.duration_ms))
        from_api = ExecutionTraceReport(build.api)
        from_ring = ExecutionTraceReport(ring)
        Simulator.reset()
        assert from_ring.threads() == from_api.threads()
        assert from_ring.observed_dispatches() == from_api.observed_dispatches()
        assert from_ring.render() == from_api.render()

    def test_execution_trace_report_rejects_unknown_source(self):
        from repro.analysis.trace import ExecutionTraceReport

        with pytest.raises(TypeError):
            ExecutionTraceReport(object())

    def test_format_event_counts(self):
        from repro.analysis.report import format_event_counts
        from repro.obs import CounterSink, EventBus

        bus = EventBus()
        counter = bus.subscribe(CounterSink(), ("sched", "irq"))
        bus.topic("sched").emit("dispatch", 0, thread="a")
        bus.topic("sched").emit("dispatch", 1, thread="b")
        bus.topic("irq").emit("raise", 2, handler="isr")
        table = format_event_counts(counter)
        assert "sched" in table and "dispatch" in table
        lines = table.splitlines()
        assert any("2" in line and "dispatch" in line for line in lines)
