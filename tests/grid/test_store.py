"""The content-addressed result store: keys, integrity, maintenance."""

import json
import os

import pytest

from repro.campaign import get_scenario, run_spec, spec_hash
from repro.campaign.spec import spec_hash_from_document
from repro.grid import ResultStore, code_fingerprint
from repro.obs.bus import canonical_json


def cheap_spec(seed=0, duration_ms=30.0):
    return get_scenario("rtk-priority").with_overrides(
        {"duration_ms": duration_ms, "seed": seed}
    ).validate()


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "cache"))


class TestKeys:
    def test_key_is_sha256_of_canonical_spec_json(self):
        spec = cheap_spec()
        import hashlib

        expected = hashlib.sha256(
            canonical_json(spec.to_dict()).encode("utf-8")
        ).hexdigest()
        assert spec_hash(spec) == expected

    def test_equal_specs_share_a_key_different_specs_do_not(self, store):
        assert store.key_of(cheap_spec(seed=1)) == store.key_of(cheap_spec(seed=1))
        assert store.key_of(cheap_spec(seed=1)) != store.key_of(cheap_spec(seed=2))

    def test_spec_object_and_document_hash_identically(self, store):
        spec = cheap_spec()
        assert store.key_of(spec) == spec_hash_from_document(spec.to_dict())


class TestRoundTrip:
    def test_fresh_run_populates_then_hit_replays(self, store):
        spec = cheap_spec()
        fresh = run_spec(spec, store=store)
        assert not fresh.cached
        hit = run_spec(spec, store=store)
        assert hit.cached
        assert hit.metrics_json() == fresh.metrics_json()
        assert [canonical_json(e) for e in hit.events] == \
            [canonical_json(e) for e in fresh.events]

    def test_hit_timing_is_marked_cached_without_speed_measures(self, store):
        spec = cheap_spec()
        run_spec(spec, store=store)
        hit = run_spec(spec, store=store)
        assert hit.timing["cached"] is True
        assert hit.timing["r_over_s"] is None
        assert hit.timing["s_over_r"] is None

    def test_refresh_forces_a_simulation_and_rewrites_the_entry(self, store):
        spec = cheap_spec()
        run_spec(spec, store=store)
        refreshed = run_spec(spec, store=store, refresh=True)
        assert not refreshed.cached
        assert store.lookup(spec) is not None

    def test_caller_sinks_disable_the_cache_lookup(self, store):
        from repro.obs.sinks import CounterSink

        spec = cheap_spec()
        run_spec(spec, store=store)
        counter = CounterSink(topics=("sched",))
        live = run_spec(spec, store=store, sinks=[counter])
        assert not live.cached
        assert counter.total() > 0

    def test_streamed_replay_is_byte_identical_to_streamed_fresh_run(
        self, store, tmp_path
    ):
        spec = cheap_spec()
        fresh_path = tmp_path / "fresh.jsonl"
        hit_path = tmp_path / "hit.jsonl"
        run_spec(spec, collect_events=False, events_stream=str(fresh_path),
                 store=store)
        hit = run_spec(spec, collect_events=False, events_stream=str(hit_path),
                       store=store)
        assert hit.cached
        assert hit_path.read_bytes() == fresh_path.read_bytes()
        assert hit.events_streamed == len(hit_path.read_text().splitlines())

    def test_gantt_rebuilds_from_the_stored_stream(self, store):
        spec = cheap_spec()
        fresh = run_spec(spec, store=store)
        chart = store.lookup(spec).gantt()
        assert len(chart.segments) == fresh.metrics["gantt_segments"]
        assert len(chart.markers) == fresh.metrics["gantt_markers"]
        assert not chart.overlapping_segments()


class TestIntegrity:
    def test_fingerprint_mismatch_is_a_miss(self, store, tmp_path):
        spec = cheap_spec()
        run_spec(spec, store=store)
        other_code = ResultStore(store.root, fingerprint="0" * 64)
        assert other_code.lookup(spec) is None
        assert ResultStore(store.root).lookup(spec) is not None

    def test_tampered_events_detected_and_recomputed(self, store):
        spec = cheap_spec()
        run_spec(spec, store=store)
        entry = store.lookup(spec)
        with open(entry.events_path, "a", encoding="utf-8") as handle:
            handle.write('{"t_ms":0,"thread":"evil","kind":"dispatch"}\n')
        assert store.lookup(spec) is None
        recomputed = run_spec(spec, store=store)
        assert not recomputed.cached
        assert store.lookup(spec) is not None  # entry repaired

    def test_tampered_metrics_detected(self, store):
        spec = cheap_spec()
        run_spec(spec, store=store)
        entry = store.lookup(spec)
        document = entry.metrics_document()
        document["metrics"]["context_switches"] = 10**9
        with open(entry.metrics_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(document) + "\n")
        assert store.lookup(spec) is None

    def test_unparseable_manifest_is_a_miss(self, store):
        spec = cheap_spec()
        run_spec(spec, store=store)
        entry = store.lookup(spec)
        with open(os.path.join(entry.entry_dir, "manifest.json"), "w") as handle:
            handle.write("{ nope")
        assert store.lookup(spec) is None

    def test_code_fingerprint_is_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestMaintenance:
    def test_stats_counts_valid_stale_and_corrupt(self, store):
        run_spec(cheap_spec(seed=1), store=store)
        run_spec(cheap_spec(seed=2), store=store)
        run_spec(cheap_spec(seed=3), store=store)
        # Stale: same layout, other fingerprint.
        entry = store.lookup(cheap_spec(seed=2))
        manifest = dict(entry.manifest)
        manifest["fingerprint"] = "f" * 64
        with open(os.path.join(entry.entry_dir, "manifest.json"), "w") as handle:
            handle.write(canonical_json(manifest) + "\n")
        # Corrupt: damaged events artifact.
        entry3 = store.lookup(cheap_spec(seed=3))
        with open(entry3.events_path, "a") as handle:
            handle.write("garbage\n")
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["valid"] == 1
        assert stats["stale"] == 1
        assert stats["corrupt"] == 1
        assert stats["bytes"] > 0

    def test_gc_sweeps_unusable_entries_only(self, store):
        run_spec(cheap_spec(seed=1), store=store)
        run_spec(cheap_spec(seed=2), store=store)
        entry = store.lookup(cheap_spec(seed=2))
        with open(entry.events_path, "w") as handle:
            handle.write("poison\n")
        swept = store.gc()
        assert swept == {"removed": 1, "kept": 1, "staging_removed": 0}
        assert store.lookup(cheap_spec(seed=1)) is not None
        assert store.lookup(cheap_spec(seed=2)) is None

    def test_stray_files_in_fanout_dirs_do_not_break_maintenance(self, store):
        run_spec(cheap_spec(seed=1), store=store)
        entry = store.lookup(cheap_spec(seed=1))
        prefix_dir = os.path.dirname(entry.entry_dir)
        with open(os.path.join(prefix_dir, ".DS_Store"), "w") as handle:
            handle.write("junk")
        stats = store.stats()
        assert stats["entries"] == 1 and stats["valid"] == 1
        assert store.gc()["kept"] == 1
        assert store.lookup(cheap_spec(seed=1)) is not None
        assert store.clear() == 1

    def test_clear_empties_the_store(self, store):
        run_spec(cheap_spec(seed=1), store=store)
        run_spec(cheap_spec(seed=2), store=store)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.stats()["entries"] == 0

    def test_put_requires_exactly_one_events_source(self, store):
        with pytest.raises(ValueError):
            store.put(cheap_spec().to_dict(), {}, events=None, events_path=None)
        with pytest.raises(ValueError):
            store.put(cheap_spec().to_dict(), {}, events=[], events_path="x")


class TestReplayModule:
    def test_event_round_trip_through_serialization(self):
        from repro.core.events import ExecutionContext
        from repro.obs.bus import Event, event_to_dict
        from repro.obs.replay import event_from_dict

        marker = Event("sched", "dispatch", 1_500_000, {"thread": "t1"})
        restored = event_from_dict(event_to_dict(marker))
        assert (restored.topic, restored.kind, restored.t_ns) == \
            ("sched", "dispatch", 1_500_000)
        assert restored.fields == {"thread": "t1"}

        segment = Event("sched", "exec", 2_000_001, {
            "thread": "t2", "dur_ns": 333, "context": ExecutionContext.TASK,
            "energy_nj": 4.5, "label": "job",
        })
        restored = event_from_dict(event_to_dict(segment))
        assert restored.t_ns == 2_000_001
        assert restored.fields["dur_ns"] == 333
        assert restored.fields["context"] is ExecutionContext.TASK

    def test_read_events_jsonl_skips_blank_lines(self, tmp_path):
        from repro.obs.replay import read_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"t_ms":0.001,"thread":"a","kind":"dispatch"}\n'
            "\n"
            '{"t_ms":0.002,"thread":"a","kind":"preempt"}\n'
        )
        events = list(read_events_jsonl(str(path)))
        assert [event.kind for event in events] == ["dispatch", "preempt"]
        assert events[0].t_ns == 1_000
