"""The grid CLI surface: shard/cache verbs, spec files, cache flags, errors."""

import json

import pytest

from repro.campaign import get_scenario
from repro.campaign.cli import main


def write_spec(path, **overrides):
    spec = get_scenario("rtk-priority").with_overrides(
        {"duration_ms": 30.0, **overrides}
    ).validate()
    path.write_text(json.dumps(spec.to_dict()))
    return spec


SWEEP_ARGS = [
    "--scenario", "rtk-round-robin",
    "--scenario", "rtk-priority",
    "--matrix", "seed=1,2",
    "--set", "duration_ms=40",
]


class TestSpecFiles:
    def test_run_from_spec_file(self, tmp_path, capsys):
        write_spec(tmp_path / "spec.json")
        assert main(["run", "--spec", str(tmp_path / "spec.json")]) == 0
        assert "rtk-priority" in capsys.readouterr().out

    def test_run_needs_exactly_one_source(self, capsys):
        assert main(["run"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, capsys):
        assert main(["run", "--spec", "does-not-exist.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "cannot read spec file" in err

    def test_malformed_spec_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope")
        assert main(["run", "--spec", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_field_in_spec_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "bogus_field": 1}))
        assert main(["run", "--spec", str(bad)]) == 2
        assert "bogus_field" in capsys.readouterr().err

    def test_non_object_spec_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main(["run", "--spec", str(bad)]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_batch_spec_dir(self, tmp_path, capsys):
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        write_spec(spec_dir / "a.json", seed=1)
        write_spec(spec_dir / "b.json", seed=2)
        out = tmp_path / "out"
        code = main([
            "batch", "--spec-dir", str(spec_dir),
            "--serial", "--no-events", "--out", str(out),
        ])
        assert code == 0
        assert "2 runs on 1 fused worker(s)" in capsys.readouterr().out
        document = json.loads((out / "metrics.json").read_text())
        assert document["campaign"]["runs"] == 2
        assert [run["spec"]["seed"] for run in document["runs"]] == [1, 2]

    def test_mixed_selection_derives_registry_seeds_only(self, tmp_path, capsys):
        """--spec-dir must not disable seed derivation for --scenario bases."""
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        explicit = write_spec(spec_dir / "a.json", seed=7, name="filespec")
        code = main([
            "shard", "plan", "--shards", "1", "--index", "0", "--json",
            "--scenario", "rtk-priority",
            "--spec-dir", str(spec_dir),
            "--matrix", "duration_ms=30,40",
        ])
        assert code == 0
        documents = [json.loads(line)
                     for line in capsys.readouterr().out.splitlines() if line]
        registry = [d["spec"] for d in documents
                    if d["spec"]["name"].startswith("rtk-priority")]
        file_runs = [d["spec"] for d in documents
                     if d["spec"]["name"].startswith("filespec")]
        assert len(registry) == 2 and len(file_runs) == 2
        # Registry matrix points got decorrelated derived seeds...
        assert registry[0]["seed"] != registry[1]["seed"]
        # ...while the explicit spec document kept its stated seed.
        assert all(run["seed"] == explicit.seed for run in file_runs)

    def test_empty_spec_dir_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "specs"
        empty.mkdir()
        assert main(["batch", "--spec-dir", str(empty)]) == 2
        assert "no *.json documents" in capsys.readouterr().err


class TestCacheFlags:
    def test_run_cache_roundtrip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["run", "rtk-priority", "--set", "duration_ms=30",
                "--cache", cache]
        assert main(args) == 0
        assert "cache hit" not in capsys.readouterr().out
        assert main(args) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_refresh_forces_simulation(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["run", "rtk-priority", "--set", "duration_ms=30",
                "--cache", cache]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--refresh"]) == 0
        assert "cache hit" not in capsys.readouterr().out

    def test_no_cache_ignores_environment(self, tmp_path, capsys, monkeypatch):
        cache = str(tmp_path / "cache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache)
        args = ["run", "rtk-priority", "--set", "duration_ms=30"]
        assert main(args) == 0  # fills the env-named store
        capsys.readouterr()
        assert main(args + ["--no-cache"]) == 0
        assert "cache hit" not in capsys.readouterr().out
        assert main(args) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_refresh_without_store_fails_cleanly(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["run", "rtk-priority", "--refresh"]) == 2
        assert "--refresh needs a result store" in capsys.readouterr().err

    def test_batch_reports_cache_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["batch"] + SWEEP_ARGS + [
            "--serial", "--no-events", "--cache", cache,
            "--out", str(tmp_path / "out"),
        ]
        assert main(args) == 0
        assert "cache: 0 hit(s), 4 simulated" in capsys.readouterr().out
        assert main(args) == 0
        assert "cache: 4 hit(s), 0 simulated" in capsys.readouterr().out


class TestCacheVerbs:
    def test_stats_gc_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", "rtk-priority", "--set", "duration_ms=30",
                     "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "1 valid" in out and "rtk-priority" in out
        assert main(["cache", "gc", "--cache", cache]) == 0
        assert "kept 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", cache]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", cache]) == 0
        assert "entries : 0" in capsys.readouterr().out

    def test_cache_verbs_need_a_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no result store" in capsys.readouterr().err


class TestShardVerbs:
    def test_plan_prints_the_shard_slice(self, capsys):
        assert main(["shard", "plan", "--shards", "2", "--index", "1"]
                    + SWEEP_ARGS) == 0
        out = capsys.readouterr().out
        assert "Shard 1/2: 2 of 4 runs" in out

    def test_plan_json_mode_emits_spec_documents(self, capsys):
        assert main(["shard", "plan", "--shards", "2", "--index", "0",
                     "--json"] + SWEEP_ARGS) == 0
        lines = capsys.readouterr().out.splitlines()
        documents = [json.loads(line) for line in lines if line]
        assert [d["index"] for d in documents] == [0, 2]
        assert all("spec" in d for d in documents)

    def test_plan_bad_geometry_fails_cleanly(self, capsys):
        assert main(["shard", "plan", "--shards", "2", "--index", "5"]) == 2
        assert "shard index" in capsys.readouterr().err

    def test_shard_run_and_merge_match_batch(self, tmp_path, capsys):
        batch_out = tmp_path / "batch"
        assert main(["batch"] + SWEEP_ARGS + [
            "--serial", "--out", str(batch_out),
        ]) == 0
        shard_dirs = []
        for index in range(2):
            out = tmp_path / f"shard{index}"
            shard_dirs.append(str(out))
            assert main(["shard", "run", "--shards", "2", "--index", str(index)]
                        + SWEEP_ARGS + ["--out", str(out)]) == 0
        merged = tmp_path / "merged"
        assert main(["shard", "merge", *shard_dirs, "--out", str(merged)]) == 0
        assert "merged 4 runs from 2 shard(s)" in capsys.readouterr().out
        assert (merged / "aggregate.json").read_bytes() == \
            (batch_out / "aggregate.json").read_bytes()

    def test_merge_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["shard", "merge", str(tmp_path / "ghost"),
                     "--out", str(tmp_path / "out")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "shard metrics file" in err
        assert "Traceback" not in err

    def test_merge_corrupt_document_fails_cleanly(self, tmp_path, capsys):
        shard_dir = tmp_path / "shard"
        shard_dir.mkdir()
        (shard_dir / "shard.json").write_text("{ bad json")
        assert main(["shard", "merge", str(shard_dir),
                     "--out", str(tmp_path / "out")]) == 2
        assert "corrupt shard metrics file" in capsys.readouterr().err


class TestCompareHardening:
    def test_compare_missing_file(self, capsys):
        assert main(["compare", "ghost-left.json", "ghost-right.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_compare_invalid_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["compare", str(bad), str(bad)]) == 2
        assert "not a metrics JSON file" in capsys.readouterr().err

    def test_compare_non_object_document(self, tmp_path, capsys):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        assert main(["compare", str(bad), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not a metrics document" in err and "Traceback" not in err

    def test_compare_non_object_metrics_section(self, tmp_path, capsys):
        bad = tmp_path / "weird.json"
        bad.write_text(json.dumps({"metrics": [1, 2]}))
        assert main(["compare", str(bad), str(bad)]) == 2
        assert "not a metrics document" in capsys.readouterr().err
