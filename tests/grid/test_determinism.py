"""Cache determinism over the whole registry: replay == fresh, byte for byte.

The acceptance bar for the grid store: for **every** builtin scenario, a
cache-hit replay is byte-identical to the fresh run it stands in for —
metrics JSON and the JSONL event stream alike — and a poisoned entry is
detected through the manifest and transparently recomputed.

Durations are dialled down per scenario (a spec override is just another
spec, so this exercises exactly the production code path) to keep the
full-registry sweep fast.
"""

import pytest

from repro.campaign import get_scenario, run_spec, scenario_names
from repro.grid import ResultStore
from repro.obs.bus import canonical_json

#: Reduced horizons for the expensive scenarios; everything else is cheap
#: enough to run at a 30 ms window.
FAST_DURATIONS_MS = {
    "videogame": 40.0,
    "cosim-speed": 40.0,
    "energy-profile": 60.0,
    "sync-tour": 60.0,
}


def fast_spec(name):
    duration = FAST_DURATIONS_MS.get(name, 30.0)
    return get_scenario(name).with_overrides(
        {"duration_ms": duration}
    ).validate()


def test_registry_has_the_expected_nine_scenarios():
    assert len(scenario_names()) == 9


@pytest.mark.parametrize("name", sorted(
    [
        "quickstart", "sync-tour", "videogame", "cosim-speed",
        "energy-profile", "rtk-round-robin", "rtk-priority",
        "synthetic-tkernel", "synthetic-rtk",
    ]
))
def test_cache_replay_is_byte_identical(name, tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    spec = fast_spec(name)

    fresh = run_spec(spec, store=store)
    assert not fresh.cached
    hit = run_spec(spec, store=store)
    assert hit.cached

    # Metrics document: byte-identical canonical JSON.
    assert hit.metrics_json() == fresh.metrics_json()

    # Event stream: byte-identical files through both output modes.
    fresh_path = tmp_path / "fresh.jsonl"
    hit_path = tmp_path / "hit.jsonl"
    fresh.write_events(str(fresh_path))
    hit.write_events(str(hit_path))
    assert hit_path.read_bytes() == fresh_path.read_bytes()

    streamed_path = tmp_path / "streamed.jsonl"
    streamed = run_spec(
        spec, collect_events=False, events_stream=str(streamed_path),
        store=store,
    )
    assert streamed.cached
    assert streamed_path.read_bytes() == fresh_path.read_bytes()


@pytest.mark.parametrize("name", ["quickstart", "synthetic-rtk"])
def test_poisoned_entry_is_detected_and_recomputed(name, tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    spec = fast_spec(name)
    fresh = run_spec(spec, store=store)

    # Poison the stored stream; the manifest's digest no longer matches.
    entry = store.lookup(spec)
    with open(entry.events_path, "a", encoding="utf-8") as handle:
        handle.write('{"t_ms":9,"thread":"mallory","kind":"dispatch"}\n')
    assert store.lookup(spec) is None

    recomputed = run_spec(spec, store=store)
    assert not recomputed.cached
    assert recomputed.metrics_json() == fresh.metrics_json()

    # The repaired entry serves verified, identical artifacts again.
    hit = run_spec(spec, store=store)
    assert hit.cached
    assert [canonical_json(e) for e in hit.events] == \
        [canonical_json(e) for e in fresh.events]


@pytest.mark.parametrize("name", ["quickstart"])
def test_poisoned_manifest_fingerprint_is_detected(name, tmp_path):
    import os

    store = ResultStore(str(tmp_path / "cache"))
    spec = fast_spec(name)
    run_spec(spec, store=store)
    entry = store.lookup(spec)
    manifest = dict(entry.manifest)
    manifest["fingerprint"] = "d" * 64
    with open(os.path.join(entry.entry_dir, "manifest.json"), "w",
              encoding="utf-8") as handle:
        handle.write(canonical_json(manifest) + "\n")
    assert store.lookup(spec) is None
    recomputed = run_spec(spec, store=store)
    assert not recomputed.cached
    assert store.lookup(spec) is not None
