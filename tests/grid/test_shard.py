"""Shard planning, execution, resume, and merge == batch byte-identity."""

import json
import os

import pytest

from repro.campaign import plan_batch, run_batch
from repro.campaign.batch import run_events_filename
from repro.grid import (
    GridError,
    ResultStore,
    merge_shards,
    plan_all_shards,
    plan_shard,
    run_shard,
)


def sweep_specs():
    """Six fast runs across the two cheap RTK scheduler scenarios."""
    return plan_batch(
        ["rtk-round-robin", "rtk-priority"],
        matrix={"seed": [1, 2, 3]},
        overrides={"duration_ms": 40.0},
    )


class TestPlanning:
    def test_shards_partition_the_sweep(self):
        specs = sweep_specs()
        plans = plan_all_shards(specs, 4)
        seen = sorted(
            index for plan in plans for index, _ in plan.runs
        )
        assert seen == list(range(len(specs)))
        assert all(plan.total == len(specs) for plan in plans)

    def test_round_robin_assignment(self):
        specs = sweep_specs()
        plan = plan_shard(specs, 3, 1)
        assert [index for index, _ in plan.runs] == [1, 4]
        assert all(index % 3 == 1 for index, _ in plan.runs)

    def test_balanced_within_one_run(self):
        specs = sweep_specs()
        sizes = [len(plan) for plan in plan_all_shards(specs, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_the_whole_sweep(self):
        specs = sweep_specs()
        plan = plan_shard(specs, 1, 0)
        assert len(plan) == len(specs)

    def test_invalid_geometry_rejected(self):
        specs = sweep_specs()
        with pytest.raises(GridError):
            plan_shard(specs, 0, 0)
        with pytest.raises(GridError):
            plan_shard(specs, 2, 2)
        with pytest.raises(GridError):
            plan_shard(specs, 2, -1)


class TestShardedSweep:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_merge_is_byte_identical_to_single_host_batch(self, tmp_path, shards):
        specs = sweep_specs()
        batch = run_batch(specs, workers=2)
        batch_dir = tmp_path / "batch"
        batch.write_outputs(str(batch_dir))

        shard_dirs = []
        for index in range(shards):
            shard_dir = tmp_path / f"shard{index}"
            run_shard(plan_shard(specs, shards, index), str(shard_dir))
            shard_dirs.append(str(shard_dir))
        merged_dir = tmp_path / "merged"
        manifest = merge_shards(shard_dirs, str(merged_dir))
        assert manifest["runs"] == len(specs)

        assert (merged_dir / "aggregate.json").read_bytes() == \
            (batch_dir / "aggregate.json").read_bytes()
        batch_events = sorted(p.name for p in batch_dir.glob("events_*.jsonl"))
        merged_events = sorted(p.name for p in merged_dir.glob("events_*.jsonl"))
        assert merged_events == batch_events
        for name in batch_events:
            assert (merged_dir / name).read_bytes() == \
                (batch_dir / name).read_bytes()

    def test_event_files_carry_global_indices(self, tmp_path):
        specs = sweep_specs()
        plan = plan_shard(specs, 3, 2)
        document = run_shard(plan, str(tmp_path / "s2"))
        expected = [
            run_events_filename(index, spec.name) for index, spec in plan.runs
        ]
        assert [entry["events"] for entry in document["runs"]] == expected
        for name in expected:
            assert (tmp_path / "s2" / name).is_file()

    def test_interrupted_shard_resumes_from_the_store(self, tmp_path):
        specs = sweep_specs()
        store = ResultStore(str(tmp_path / "cache"))
        plan = plan_shard(specs, 2, 0)
        first = run_shard(plan, str(tmp_path / "attempt1"), store=store)
        assert first["executed"] == len(plan) and first["cached"] == 0
        # The "interrupted" output directory is gone; the store is not.
        second = run_shard(plan, str(tmp_path / "attempt2"), store=store)
        assert second["executed"] == 0 and second["cached"] == len(plan)
        for entry in second["runs"]:
            a = (tmp_path / "attempt1" / entry["events"]).read_bytes()
            b = (tmp_path / "attempt2" / entry["events"]).read_bytes()
            assert a == b

    def test_fully_cached_sweep_executes_zero_simulations(self, tmp_path, monkeypatch):
        specs = sweep_specs()
        store = ResultStore(str(tmp_path / "cache"))
        warm = run_batch(specs, workers=1, store=store)
        assert warm.cache_hits == 0

        # Any attempt to build a simulator now is an error: the second sweep
        # must be served entirely from the store.
        import repro.campaign.runner as runner_module

        def forbidden(spec, *args, **kwargs):
            raise AssertionError(f"simulated {spec.name} despite a warm cache")

        monkeypatch.setattr(runner_module, "build_scenario", forbidden)
        cached = run_batch(specs, workers=1, store=store)
        assert cached.cache_hits == len(specs)
        assert canonical(cached) == canonical(warm)

        shard_doc = run_shard(
            plan_shard(specs, 2, 1), str(tmp_path / "shard"), store=store
        )
        assert shard_doc["executed"] == 0

    def test_interrupted_batch_keeps_completed_runs_cached(
        self, tmp_path, monkeypatch
    ):
        specs = sweep_specs()
        store = ResultStore(str(tmp_path / "cache"))

        # "Interrupt" the batch by making the third run's scenario explode.
        import repro.campaign.runner as runner_module

        real_build = runner_module.build_scenario
        doomed = specs[2].name

        def flaky_build(spec, *args, **kwargs):
            if spec.name == doomed:
                raise KeyboardInterrupt
            return real_build(spec, *args, **kwargs)

        monkeypatch.setattr(runner_module, "build_scenario", flaky_build)
        with pytest.raises(KeyboardInterrupt):
            run_batch(specs, workers=1, store=store)
        # The two completed runs were cached incrementally.
        assert store.lookup(specs[0]) is not None
        assert store.lookup(specs[1]) is not None
        assert store.lookup(specs[2]) is None

        monkeypatch.setattr(runner_module, "build_scenario", real_build)
        resumed = run_batch(specs, workers=1, store=store)
        assert resumed.cache_hits == 2

    def test_parallel_batch_fills_and_then_hits_the_store(self, tmp_path):
        specs = sweep_specs()
        store = ResultStore(str(tmp_path / "cache"))
        fresh = run_batch(specs, workers=2, store=store)
        assert fresh.cache_hits == 0
        again = run_batch(specs, workers=2, store=store)
        assert again.cache_hits == len(specs)
        assert canonical(again) == canonical(fresh)


def canonical(batch):
    from repro.obs.bus import canonical_json

    return canonical_json(batch.deterministic_document())


class TestMergeHardening:
    def make_shards(self, tmp_path, shards=2):
        specs = sweep_specs()
        dirs = []
        for index in range(shards):
            shard_dir = tmp_path / f"shard{index}"
            run_shard(plan_shard(specs, shards, index), str(shard_dir))
            dirs.append(str(shard_dir))
        return dirs

    def test_missing_shard_document(self, tmp_path):
        with pytest.raises(GridError, match="cannot read shard metrics file"):
            merge_shards([str(tmp_path / "nope")], str(tmp_path / "out"))

    def test_corrupt_shard_document(self, tmp_path):
        shard_dir = tmp_path / "shard"
        shard_dir.mkdir()
        (shard_dir / "shard.json").write_text("{ truncated")
        with pytest.raises(GridError, match="corrupt shard metrics file"):
            merge_shards([str(shard_dir)], str(tmp_path / "out"))

    def test_wrong_schema_rejected(self, tmp_path):
        shard_dir = tmp_path / "shard"
        shard_dir.mkdir()
        (shard_dir / "shard.json").write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(GridError, match="not a shard metrics document"):
            merge_shards([str(shard_dir)], str(tmp_path / "out"))

    def test_incomplete_sweep_lists_missing_indices(self, tmp_path):
        dirs = self.make_shards(tmp_path, shards=3)
        with pytest.raises(GridError, match="missing run indices"):
            merge_shards(dirs[:2], str(tmp_path / "out"))

    def test_duplicate_run_indices_rejected(self, tmp_path):
        dirs = self.make_shards(tmp_path, shards=2)
        with pytest.raises(GridError, match="appears in both"):
            merge_shards([dirs[0], dirs[0], dirs[1]], str(tmp_path / "out"))

    def test_geometry_mismatch_rejected(self, tmp_path):
        specs = sweep_specs()
        a = tmp_path / "a"
        b = tmp_path / "b"
        run_shard(plan_shard(specs, 2, 0), str(a))
        run_shard(plan_shard(specs, 3, 1), str(b))
        with pytest.raises(GridError, match="shard geometry mismatch"):
            merge_shards([str(a), str(b)], str(tmp_path / "out"))

    def test_missing_event_stream_rejected(self, tmp_path):
        dirs = self.make_shards(tmp_path, shards=2)
        document = json.loads(
            (tmp_path / "shard0" / "shard.json").read_text()
        )
        os.remove(os.path.join(dirs[0], document["runs"][0]["events"]))
        with pytest.raises(GridError, match="missing event stream"):
            merge_shards(dirs, str(tmp_path / "out"))

    def test_no_shards_rejected(self, tmp_path):
        with pytest.raises(GridError, match="no shard directories"):
            merge_shards([], str(tmp_path / "out"))
