"""Unit tests for the DES kernel, events and processes."""

import pytest

from repro.sysc import (
    SCEvent,
    SimTime,
    Simulator,
    SimulationError,
    Wait,
    WaitDelta,
    WaitEvent,
    WaitEventTimeout,
)
from repro.sysc.process import ProcessState, ResumeReason


@pytest.fixture
def sim():
    return Simulator("test")


class TestBasicScheduling:
    def test_single_process_advances_time(self, sim):
        log = []

        def body():
            log.append(("start", sim.now.to_ms()))
            yield Wait(SimTime.ms(5))
            log.append(("after", sim.now.to_ms()))

        sim.register_thread("p", body)
        sim.run()
        assert log == [("start", 0.0), ("after", 5.0)]

    def test_two_processes_interleave_by_time(self, sim):
        log = []

        def slow():
            yield Wait(SimTime.ms(10))
            log.append("slow")

        def fast():
            yield Wait(SimTime.ms(1))
            log.append("fast")

        sim.register_thread("slow", slow)
        sim.register_thread("fast", fast)
        sim.run()
        assert log == ["fast", "slow"]

    def test_run_with_duration_limits_time(self, sim):
        def body():
            while True:
                yield Wait(SimTime.ms(1))

        sim.register_thread("ticker", body)
        end = sim.run(SimTime.ms(10))
        assert end == SimTime.ms(10)

    def test_run_without_processes_finishes_immediately(self, sim):
        assert sim.run() == SimTime(0)

    def test_stop_halts_simulation(self, sim):
        reached = []

        def body():
            yield Wait(SimTime.ms(1))
            sim.stop()
            yield Wait(SimTime.ms(100))
            reached.append("should not happen")

        sim.register_thread("p", body)
        sim.run()
        assert sim.now == SimTime.ms(1)
        assert reached == []

    def test_duplicate_process_name_rejected(self, sim):
        sim.register_thread("p", lambda: iter(()))
        with pytest.raises(SimulationError):
            sim.register_thread("p", lambda: iter(()))

    def test_process_termination_marks_state(self, sim):
        def body():
            yield Wait(SimTime.ms(1))

        handle = sim.register_thread("p", body)
        sim.run()
        assert handle.state is ProcessState.TERMINATED
        assert not handle.is_alive()

    def test_get_process_by_name(self, sim):
        handle = sim.register_thread("named", lambda: iter(()))
        assert sim.get_process("named") is handle
        with pytest.raises(SimulationError):
            sim.get_process("missing")


class TestEvents:
    def test_event_wakes_waiter(self, sim):
        event = sim.create_event("go")
        log = []

        def waiter():
            yield WaitEvent(event)
            log.append(sim.now.to_ms())

        def notifier():
            yield Wait(SimTime.ms(3))
            event.notify()

        sim.register_thread("waiter", waiter)
        sim.register_thread("notifier", notifier)
        sim.run()
        assert log == [3.0]

    def test_timed_notification(self, sim):
        event = sim.create_event("go")
        log = []

        def waiter():
            yield WaitEvent(event)
            log.append(sim.now.to_ms())

        def notifier():
            event.notify_after(SimTime.ms(7))
            return
            yield  # pragma: no cover

        sim.register_thread("waiter", waiter)
        sim.register_thread("notifier", notifier)
        sim.run()
        assert log == [7.0]

    def test_earlier_notification_overrides_later(self, sim):
        event = sim.create_event("go")
        times = []

        def waiter():
            yield WaitEvent(event)
            times.append(sim.now.to_ms())

        def notifier():
            event.notify_after(SimTime.ms(10))
            event.notify_after(SimTime.ms(2))  # earlier wins
            return
            yield  # pragma: no cover

        sim.register_thread("waiter", waiter)
        sim.register_thread("notifier", notifier)
        sim.run()
        assert times == [2.0]

    def test_cancel_prevents_notification(self, sim):
        event = sim.create_event("go")
        woke = []

        def waiter():
            yield WaitEventTimeout(event, SimTime.ms(20))
            woke.append(sim.now.to_ms())

        def canceller():
            event.notify_after(SimTime.ms(5))
            yield Wait(SimTime.ms(1))
            event.cancel()

        sim.register_thread("waiter", waiter)
        sim.register_thread("canceller", canceller)
        sim.run()
        # The waiter should only wake at the 20 ms timeout.
        assert woke == [20.0]

    def test_wait_with_timeout_reports_reason(self, sim):
        event = sim.create_event("never")
        reasons = []

        def waiter():
            reason = yield WaitEventTimeout(event, SimTime.ms(4))
            reasons.append(reason)

        sim.register_thread("waiter", waiter)
        sim.run()
        assert reasons == [ResumeReason.TIMEOUT]

    def test_event_arrival_beats_timeout(self, sim):
        event = sim.create_event("go")
        reasons = []

        def waiter():
            reason = yield WaitEventTimeout(event, SimTime.ms(50))
            reasons.append((reason, sim.now.to_ms()))

        def notifier():
            yield Wait(SimTime.ms(2))
            event.notify()

        sim.register_thread("waiter", waiter)
        sim.register_thread("notifier", notifier)
        sim.run()
        assert reasons == [(ResumeReason.EVENT, 2.0)]
        # Timeout callback should not resurrect the process later.
        assert sim.now >= SimTime.ms(50) or not sim.pending_activity()

    def test_delta_notification_same_time(self, sim):
        event = sim.create_event("go")
        log = []

        def waiter():
            yield WaitEvent(event)
            log.append(("woke", sim.now.to_ns()))

        def notifier():
            event.notify_delta()
            log.append(("notified", sim.now.to_ns()))
            return
            yield  # pragma: no cover

        sim.register_thread("waiter", waiter)
        sim.register_thread("notifier", notifier)
        sim.run()
        assert ("woke", 0) in log and ("notified", 0) in log

    def test_bare_event_yield_is_wait_event(self, sim):
        event = sim.create_event("go")
        log = []

        def waiter():
            yield event
            log.append(sim.now.to_ms())

        def notifier():
            yield Wait(SimTime.ms(1))
            event.notify()

        sim.register_thread("w", waiter)
        sim.register_thread("n", notifier)
        sim.run()
        assert log == [1.0]


class TestStaticSensitivity:
    def test_dont_initialize_waits_for_sensitivity(self, sim):
        tick = sim.create_event("tick")
        log = []

        def reactor():
            while True:
                log.append(sim.now.to_ms())
                yield None  # wait on static sensitivity

        def ticker():
            for _ in range(3):
                yield Wait(SimTime.ms(2))
                tick.notify()

        sim.register_thread("reactor", reactor, sensitivity=tick, dont_initialize=True)
        sim.register_thread("ticker", ticker)
        sim.run()
        assert log == [2.0, 4.0, 6.0]

    def test_empty_static_sensitivity_is_an_error(self, sim):
        def body():
            yield None

        sim.register_thread("p", body)
        with pytest.raises(SimulationError):
            sim.run()


class TestDeltaCycles:
    def test_wait_delta_runs_same_time(self, sim):
        log = []

        def body():
            log.append(sim.delta_count)
            yield WaitDelta()
            log.append(sim.delta_count)
            assert sim.now == SimTime(0)

        sim.register_thread("p", body)
        sim.run()
        assert log[1] > log[0]

    def test_zero_duration_wait_is_delta(self, sim):
        def body():
            yield Wait(SimTime(0))
            assert sim.now == SimTime(0)

        sim.register_thread("p", body)
        sim.run()


class TestDynamicProcessCreation:
    def test_process_created_during_run(self, sim):
        log = []

        def child():
            yield Wait(SimTime.ms(1))
            log.append(("child", sim.now.to_ms()))

        def parent():
            yield Wait(SimTime.ms(2))
            sim.register_thread("child", child)
            yield Wait(SimTime.ms(5))
            log.append(("parent", sim.now.to_ms()))

        sim.register_thread("parent", parent)
        sim.run()
        assert ("child", 3.0) in log
        assert ("parent", 7.0) in log


class TestErrorHandling:
    def test_invalid_wait_request_raises(self, sim):
        def body():
            yield "not a wait request"

        sim.register_thread("p", body)
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_callback_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_callback(SimTime(-1), lambda: None)


class TestCurrentSimulatorLifecycle:
    def test_reset_clears_current(self):
        Simulator("leaky")
        Simulator.reset()
        with pytest.raises(SimulationError):
            Simulator.current()

    def test_close_restores_prior_current(self):
        outer = Simulator("outer")
        inner = Simulator("inner")
        assert Simulator.current() is inner
        inner.close()
        assert Simulator.current() is outer
        outer.close()
        Simulator.reset()

    def test_context_manager_scopes_current(self):
        with Simulator("scoped") as sim:
            assert Simulator.current() is sim
        with pytest.raises(SimulationError):
            Simulator.current()

    def test_repeated_runs_do_not_leak_state(self):
        for expected in (3.0, 7.0):
            with Simulator("run") as sim:

                def body(expected=expected):
                    yield Wait(SimTime.ms(expected))

                sim.register_thread("p", body)
                assert sim.run().to_ms() == expected
                assert sim.stats()["processes"] == 1.0

    def test_advance_hooks_observe_time(self):
        times = []
        with Simulator("hooked") as sim:
            sim.advance_hooks.append(lambda s, when: times.append(when.to_ms()))

            def body():
                yield Wait(SimTime.ms(2))
                yield Wait(SimTime.ms(3))

            sim.register_thread("p", body)
            sim.run()
        assert times == [2.0, 5.0]

    def test_advance_hooks_fire_for_the_run_horizon(self):
        times = []
        with Simulator("horizon") as sim:
            sim.advance_hooks.append(lambda s, when: times.append(when.to_ms()))

            def body():
                yield Wait(SimTime.ms(10))

            sim.register_thread("p", body)
            sim.run(SimTime.ms(50))
        assert times == [10.0, 50.0]


class TestThrowInto:
    """Edge cases of throwing an exception into a waiting process."""

    class Kill(Exception):
        pass

    def test_throw_into_process_on_static_sensitivity(self, sim):
        trigger = sim.create_event("trigger")
        log = []

        def body():
            try:
                while True:
                    yield None  # static sensitivity wait
                    log.append("woke")
            except TestThrowInto.Kill:
                log.append("killed")

        process = sim.register_thread("static", body, sensitivity=trigger)

        def killer():
            yield Wait(SimTime.ms(1))
            sim.throw_into(process, TestThrowInto.Kill())
            # The process must be fully detached from its sensitivity list.
            assert trigger.waiter_count() == 0
            trigger.notify()
            yield Wait(SimTime.ms(1))

        sim.register_thread("killer", killer)
        sim.run()
        assert log == ["killed"]
        assert process.state is ProcessState.TERMINATED

    def test_throw_while_timeout_pending_does_not_resurrect(self, sim):
        event = sim.create_event("never")
        log = []

        def body():
            try:
                reason = yield WaitEventTimeout(event, SimTime.ms(5))
                log.append(("resumed", reason))
            except TestThrowInto.Kill:
                log.append("killed")

        process = sim.register_thread("waiter", body)

        def killer():
            yield Wait(SimTime.ms(1))
            sim.throw_into(process, TestThrowInto.Kill())
            # Run past the original 5 ms timeout: the stale timeout entry
            # must not wake (or crash on) the terminated process.
            yield Wait(SimTime.ms(10))

        sim.register_thread("killer", killer)
        sim.run()
        assert log == ["killed"]
        assert process.state is ProcessState.TERMINATED

    def test_throw_rewait_keeps_new_wait_and_ignores_stale_timeout(self, sim):
        event = sim.create_event("never")
        log = []

        def body():
            try:
                yield WaitEventTimeout(event, SimTime.ms(5))
            except TestThrowInto.Kill:
                # Unwinding code waits again: the new wait must be honoured
                # and the *old* 5 ms timeout must not fire into it.
                reason = yield WaitEventTimeout(event, SimTime.ms(20))
                log.append(("after", sim.now.to_ms(), reason))

        process = sim.register_thread("waiter", body)

        def killer():
            yield Wait(SimTime.ms(1))
            sim.throw_into(process, TestThrowInto.Kill())

        sim.register_thread("killer", killer)
        sim.run()
        assert log == [("after", 21.0, ResumeReason.TIMEOUT)]
        assert process.state is ProcessState.TERMINATED

    def test_throw_into_never_started_process(self, sim):
        log = []

        def body():
            log.append("ran")  # pragma: no cover - must never execute
            yield Wait(SimTime.ms(1))

        victim = sim.register_thread("unborn", body)
        sim.throw_into(victim, TestThrowInto.Kill())
        assert victim.state is ProcessState.TERMINATED

        def other():
            yield Wait(SimTime.ms(1))

        sim.register_thread("other", other)
        sim.run()
        # Elaboration must not resurrect the pre-terminated process.
        assert log == []
        assert victim.state is ProcessState.TERMINATED

    def test_throw_into_running_process_rejected(self, sim):
        def body():
            with pytest.raises(SimulationError):
                sim.throw_into(sim.get_process("self"), TestThrowInto.Kill())
            yield Wait(SimTime.ms(1))

        sim.register_thread("self", body)
        sim.run()

    def test_throw_rewait_ignores_stale_plain_wait_wake(self, sim):
        log = []

        def body():
            try:
                yield Wait(SimTime.ms(5))
            except TestThrowInto.Kill:
                # The stale 5 ms wake queued for the original wait must not
                # fire into this new, longer wait.
                reason = yield Wait(SimTime.ms(20))
                log.append(("after", sim.now.to_ms(), reason))

        process = sim.register_thread("waiter", body)

        def killer():
            yield Wait(SimTime.ms(1))
            sim.throw_into(process, TestThrowInto.Kill())

        sim.register_thread("killer", killer)
        sim.run()
        assert log == [("after", 21.0, ResumeReason.TIME)]
