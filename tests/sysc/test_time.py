"""Unit tests for repro.sysc.time."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sysc.time import MS, NS, SEC, US, SimTime


class TestConstruction:
    def test_default_is_zero(self):
        assert SimTime().nanoseconds == 0
        assert not SimTime()

    def test_unit_constructors(self):
        assert SimTime.ns(5).to_ns() == 5
        assert SimTime.us(5).to_ns() == 5_000
        assert SimTime.ms(5).to_ns() == 5_000_000
        assert SimTime.sec(5).to_ns() == 5_000_000_000

    def test_fractional_values_round(self):
        assert SimTime.us(1.5).to_ns() == 1500
        assert SimTime.ms(0.25).to_ns() == 250_000

    def test_coerce_passthrough(self):
        t = SimTime.ms(3)
        assert SimTime.coerce(t) is t

    def test_coerce_number_is_nanoseconds(self):
        assert SimTime.coerce(42).to_ns() == 42

    def test_unit_values(self):
        assert NS == 1
        assert US == 1_000
        assert MS == 1_000_000
        assert SEC == 1_000_000_000


class TestArithmetic:
    def test_addition(self):
        assert (SimTime.ms(1) + SimTime.us(500)).to_ns() == 1_500_000

    def test_addition_with_int(self):
        assert (SimTime.ns(10) + 5).to_ns() == 15
        assert (5 + SimTime.ns(10)).to_ns() == 15

    def test_subtraction(self):
        assert (SimTime.ms(2) - SimTime.ms(1)).to_ms() == 1.0

    def test_multiplication(self):
        assert (SimTime.ms(1) * 3).to_ms() == 3.0
        assert (3 * SimTime.ms(1)).to_ms() == 3.0

    def test_floor_division_counts_periods(self):
        assert SimTime.ms(10) // SimTime.ms(3) == 3

    def test_modulo(self):
        assert (SimTime.ms(10) % SimTime.ms(3)).to_ms() == 1.0

    def test_negation(self):
        assert (-SimTime.ns(7)).to_ns() == -7


class TestOrdering:
    def test_comparisons(self):
        assert SimTime.ms(1) < SimTime.ms(2)
        assert SimTime.ms(2) > SimTime.ms(1)
        assert SimTime.ms(1) == SimTime.us(1000)
        assert SimTime.ms(1) <= SimTime.ms(1)

    def test_comparison_with_numbers(self):
        assert SimTime.ns(5) == 5
        assert SimTime.ns(5) < 6

    def test_hashable(self):
        assert len({SimTime.ms(1), SimTime.us(1000), SimTime.ms(2)}) == 2


class TestFormatting:
    def test_format_picks_natural_unit(self):
        assert SimTime.sec(2).format() == "2 s"
        assert SimTime.ms(3).format() == "3 ms"
        assert SimTime.us(7).format() == "7 us"
        assert SimTime.ns(9).format() == "9 ns"
        assert SimTime().format() == "0 s"

    def test_repr_contains_format(self):
        assert "3 ms" in repr(SimTime.ms(3))


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=0, max_value=10**12))
    def test_addition_commutes(self, a, b):
        assert SimTime(a) + SimTime(b) == SimTime(b) + SimTime(a)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_divmod_identity(self, a, b):
        t, period = SimTime(a), SimTime(b)
        assert period * (t // period) + (t % period) == t

    @given(st.integers(min_value=-10**12, max_value=10**12))
    def test_coerce_roundtrip(self, ns):
        assert SimTime.coerce(ns).to_ns() == ns
