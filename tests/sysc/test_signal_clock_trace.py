"""Unit tests for signals, clocks, modules and tracing."""

import pytest

from repro.sysc import Clock, SCModule, Signal, SimTime, Simulator, TraceFile, Wait, WaitEvent


@pytest.fixture
def sim():
    return Simulator("test")


class TestSignal:
    def test_write_is_deferred_to_update_phase(self, sim):
        sig = Signal("s", 0, sim)
        observed = []

        def writer():
            sig.write(5)
            observed.append(("immediately", sig.read()))
            yield Wait(SimTime(0))
            observed.append(("after delta", sig.read()))

        sim.register_thread("writer", writer)
        sim.run()
        assert observed == [("immediately", 0), ("after delta", 5)]

    def test_value_changed_event(self, sim):
        sig = Signal("s", 0, sim)
        seen = []

        def watcher():
            while True:
                yield WaitEvent(sig.value_changed_event)
                seen.append((sim.now.to_ms(), sig.read()))

        def writer():
            yield Wait(SimTime.ms(1))
            sig.write(1)
            yield Wait(SimTime.ms(1))
            sig.write(1)  # no change: no event
            yield Wait(SimTime.ms(1))
            sig.write(2)

        sim.register_thread("watcher", watcher)
        sim.register_thread("writer", writer)
        sim.run()
        assert seen == [(1.0, 1), (3.0, 2)]

    def test_posedge_negedge_events(self, sim):
        sig = Signal("flag", False, sim)
        edges = []

        def pos_watcher():
            while True:
                yield WaitEvent(sig.posedge_event)
                edges.append(("pos", sim.now.to_ms()))

        def neg_watcher():
            while True:
                yield WaitEvent(sig.negedge_event)
                edges.append(("neg", sim.now.to_ms()))

        def driver():
            yield Wait(SimTime.ms(1))
            sig.write(True)
            yield Wait(SimTime.ms(1))
            sig.write(False)

        sim.register_thread("pos", pos_watcher)
        sim.register_thread("neg", neg_watcher)
        sim.register_thread("driver", driver)
        sim.run()
        assert ("pos", 1.0) in edges and ("neg", 2.0) in edges

    def test_last_write_in_delta_wins(self, sim):
        sig = Signal("s", 0, sim)

        def writer():
            sig.write(1)
            sig.write(2)
            yield Wait(SimTime(0))
            assert sig.read() == 2

        sim.register_thread("writer", writer)
        sim.run()
        assert sig.change_count == 1


class TestClock:
    def test_clock_posedges_are_periodic(self, sim):
        clock = Clock("clk", SimTime.ms(1), simulator=sim)
        edges = []

        def watcher():
            while True:
                yield WaitEvent(clock.posedge_event)
                edges.append(sim.now.to_ms())

        sim.register_thread("watcher", watcher)
        sim.run(SimTime.ms(5))
        assert edges[:5] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_clock_stop_halts_toggling(self, sim):
        clock = Clock("clk", SimTime.ms(1), simulator=sim)
        edges = []

        def watcher():
            while True:
                yield WaitEvent(clock.posedge_event)
                edges.append(sim.now.to_ms())
                if len(edges) == 3:
                    clock.stop()

        sim.register_thread("watcher", watcher)
        sim.run(SimTime.ms(20))
        assert len(edges) == 3

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            Clock("bad", SimTime.ms(1), duty_cycle=0.0, simulator=sim)
        with pytest.raises(ValueError):
            Clock("bad2", SimTime(0), simulator=sim)


class TestSCModule:
    def test_threads_are_namespaced(self, sim):
        class Block(SCModule):
            def __init__(self):
                super().__init__("block", sim)
                self.ran = False
                self.sc_thread("main", self._main)

            def _main(self):
                self.ran = True
                return
                yield  # pragma: no cover

        block = Block()
        sim.run()
        assert block.ran
        assert sim.get_process("block.main") is not None

    def test_hierarchy_enumeration(self, sim):
        top = SCModule("top", sim)
        child_a = top.add_child(SCModule("a", sim))
        child_a.add_child(SCModule("a1", sim))
        top.add_child(SCModule("b", sim))
        assert top.hierarchy() == ["top", "a", "a1", "b"]


class TestTraceFile:
    def test_records_value_changes(self, sim):
        sig = Signal("bus", 0, sim)
        trace = TraceFile()
        trace.trace(sig)

        def writer():
            yield Wait(SimTime.ms(1))
            sig.write(0xAA)
            yield Wait(SimTime.ms(2))
            sig.write(0x55)

        sim.register_thread("writer", writer)
        sim.run()
        changes = trace.changes_of("bus")
        assert [(c.time.to_ms(), c.new) for c in changes] == [(1.0, 0xAA), (3.0, 0x55)]

    def test_value_at_interpolates_last_value(self, sim):
        sig = Signal("bus", 7, sim)
        trace = TraceFile()
        trace.trace(sig)

        def writer():
            yield Wait(SimTime.ms(5))
            sig.write(9)

        sim.register_thread("writer", writer)
        sim.run()
        assert trace.value_at("bus", SimTime.ms(1)) == 7
        assert trace.value_at("bus", SimTime.ms(6)) == 9

    def test_vcd_export_contains_declarations(self, sim):
        sig = Signal("irq", False, sim)
        trace = TraceFile()
        trace.trace(sig)

        def writer():
            yield Wait(SimTime.ms(1))
            sig.write(True)

        sim.register_thread("writer", writer)
        sim.run()
        vcd = trace.to_vcd()
        assert "$var wire" in vcd and "irq" in vcd and "#1000000" in vcd

    def test_ascii_rendering(self, sim):
        sig = Signal("irq", False, sim)
        trace = TraceFile()
        trace.trace(sig)

        def writer():
            yield Wait(SimTime.ms(2))
            sig.write(True)
            yield Wait(SimTime.ms(2))
            sig.write(False)

        sim.register_thread("writer", writer)
        sim.run()
        art = trace.render_ascii(stop=SimTime.ms(6), step=SimTime.ms(1))
        assert "irq" in art
        assert "#" in art and "_" in art


class TestVcdExportFixes:
    def test_bool_signals_declared_one_bit_wide(self, sim):
        flag = Signal("flag", False, sim)
        word = Signal("word", 0, sim)
        trace = TraceFile()
        trace.trace(flag)
        trace.trace(word)
        vcd = trace.to_vcd()
        assert "$var wire 1 ! flag $end" in vcd
        assert '$var wire 32 " word $end' in vcd

    def test_identifiers_stay_unique_past_94_signals(self, sim):
        trace = TraceFile()
        for index in range(120):
            trace.trace(Signal(f"s{index}", 0, sim))
        vcd = trace.to_vcd()
        identifiers = [
            line.split()[3] for line in vcd.splitlines() if line.startswith("$var")
        ]
        assert len(identifiers) == 120
        assert len(set(identifiers)) == 120

    def test_per_signal_index_isolates_queries(self, sim):
        first = Signal("first", 0, sim)
        second = Signal("second", 0, sim)
        trace = TraceFile()
        trace.trace(first)
        trace.trace(second)

        def writer():
            yield Wait(SimTime.ms(1))
            first.write(1)
            yield Wait(SimTime.ms(1))
            second.write(2)

        sim.register_thread("writer", writer)
        sim.run()
        assert [r.new for r in trace.changes_of("first")] == [1]
        assert [r.new for r in trace.changes_of("second")] == [2]
        assert trace.value_at("second", SimTime.ms(1)) == 0
        assert trace.value_at("second", SimTime.ms(3)) == 2

    def test_untraced_signals_of_same_simulator_are_ignored(self, sim):
        traced = Signal("traced", 0, sim)
        untraced = Signal("untraced", 0, sim)
        trace = TraceFile()
        trace.trace(traced)

        def writer():
            yield Wait(SimTime.ms(1))
            untraced.write(9)
            traced.write(1)
            yield Wait(SimTime.ms(1))

        sim.register_thread("writer", writer)
        sim.run()
        assert [r.signal for r in trace.records] == ["traced"]

    def test_same_named_untraced_signal_is_not_recorded(self, sim):
        traced = Signal("data", 0, sim)
        impostor = Signal("data", 0, sim)  # same name, different signal
        trace = TraceFile()
        trace.trace(traced)

        def writer():
            yield Wait(SimTime.ms(1))
            impostor.write(99)
            yield Wait(SimTime.ms(1))
            traced.write(7)

        sim.register_thread("writer", writer)
        sim.run()
        assert [r.new for r in trace.changes_of("data")] == [7]
