"""Batch engine: planning, parallel == serial, artifact writing."""

import json
import os

import pytest

from repro.campaign import plan_batch, run_batch
from repro.campaign.batch import default_worker_count
from repro.campaign.metrics import aggregate_metrics, canonical_json, compare_metrics


def small_matrix_specs():
    """Four fast runs across two kernels (rtk scenarios are the cheapest)."""
    return plan_batch(
        ["rtk-round-robin", "rtk-priority"],
        matrix={"seed": [1, 2]},
        overrides={"duration_ms": 80.0},
    )


class TestPlanning:
    def test_plan_expands_scenarios_times_matrix(self):
        specs = plan_batch(
            ["quickstart", "sync-tour"], matrix={"seed": [1, 2], "tick_ms": [1, 2]}
        )
        assert len(specs) == 8
        assert len({spec.name for spec in specs}) == 8

    def test_overrides_apply_to_every_run(self):
        specs = small_matrix_specs()
        assert all(spec.duration_ms == 80.0 for spec in specs)

    def test_default_worker_count_is_at_least_two_for_batches(self):
        assert default_worker_count(8) >= 2
        assert default_worker_count(1) == 1


class TestParallelExecution:
    def test_parallel_matches_serial_byte_for_byte(self):
        specs = small_matrix_specs()
        serial = run_batch(specs, workers=1)
        parallel = run_batch(specs, workers=2)
        assert parallel.workers == 2
        assert canonical_json(parallel.deterministic_document()) == \
            canonical_json(serial.deterministic_document())

    def test_results_keep_spec_order(self):
        specs = small_matrix_specs()
        batch = run_batch(specs, workers=2)
        assert [r.metrics["scenario"] for r in batch.results] == \
            [spec.name for spec in specs]

    def test_workers_capped_by_run_count(self):
        specs = small_matrix_specs()[:1]
        batch = run_batch(specs, workers=16)
        assert batch.workers == 1

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            run_batch([])


class TestAggregation:
    def test_aggregate_sums_and_means(self):
        aggregate = aggregate_metrics(
            [{"a": 2, "nested": {"b": 10}}, {"a": 4, "nested": {"b": 20}}]
        )
        assert aggregate["runs"] == 2
        assert aggregate["total"]["a"] == 6.0
        assert aggregate["mean"]["nested.b"] == 15.0

    def test_missing_keys_average_over_occurrences(self):
        aggregate = aggregate_metrics([{"a": 2}, {"b": 8}])
        assert aggregate["mean"]["a"] == 2.0
        assert aggregate["mean"]["b"] == 8.0

    def test_booleans_are_not_metrics(self):
        aggregate = aggregate_metrics([{"flag": True, "x": 1}])
        assert "flag" not in aggregate["total"]

    def test_compare_aligns_union_of_keys(self):
        rows = compare_metrics({"a": 1, "shared": 5}, {"b": 2, "shared": 7})
        by_key = {row[0]: row for row in rows}
        assert by_key["shared"][3] == 2
        assert by_key["a"][2] == ""  # missing right side
        assert by_key["b"][1] == ""  # missing left side


class TestArtifacts:
    def test_write_outputs(self, tmp_path):
        specs = small_matrix_specs()
        batch = run_batch(specs, workers=2)
        manifest = batch.write_outputs(str(tmp_path))

        assert len(manifest["events"]) == len(specs)
        for path in manifest["events"]:
            assert os.path.exists(path)
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            assert lines and all(json.loads(line) for line in lines)

        with open(manifest["metrics"], "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["campaign"]["runs"] == len(specs)
        assert len(document["runs"]) == len(specs)
        assert document["aggregate"]["total"]["context_switches"] > 0
        assert document["timing"]["workers"] == 2
        # host timing never leaks into the deterministic sections
        assert "wall_clock_seconds" not in canonical_json(
            {"runs": document["runs"], "aggregate": document["aggregate"]}
        )
