"""Golden-stream pinning: the composition layer is a pure refactor.

``golden_streams.json`` holds, per builtin scenario, the SHA-256 of the
JSONL event stream and of the deterministic metrics document produced by
the **pre-refactor** monolithic builders (captured immediately before the
workload plane landed), plus the spec hash.  Every scenario built through
the Platform × KernelProfile × Workload × Probes composition layer must
reproduce those artifacts byte-for-byte.

If one of these fails after an intentional behaviour change, regenerate the
golden file with the snippet in its header comment — but know that doing so
also invalidates comparability of stored grid-cache entries and historical
event streams for that scenario.
"""

import hashlib
import io
import json
import os

import pytest

from repro.campaign.registry import get_scenario, scenario_names
from repro.campaign.runner import run_spec
from repro.campaign.spec import spec_hash
from repro.grid.store import ResultStore
from repro.obs.bus import canonical_json

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_streams.json")

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)


def test_golden_covers_every_builtin():
    assert sorted(GOLDEN) == scenario_names()


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_builtin_scenario_is_byte_identical_to_pre_refactor_builder(name):
    spec = get_scenario(name)
    golden = GOLDEN[name]

    # The cache key must not have drifted either: a changed hash would
    # silently disconnect every stored result from the scenario.
    assert spec_hash(spec) == golden["spec_hash"]

    result = run_spec(spec)
    events_bytes = "".join(
        canonical_json(event) + "\n" for event in result.events
    ).encode("utf-8")
    assert len(result.events) == golden["events_lines"]
    assert hashlib.sha256(events_bytes).hexdigest() == golden["events_sha256"]
    assert hashlib.sha256(
        result.metrics_json().encode("utf-8")
    ).hexdigest() == golden["metrics_sha256"]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_streamed_jsonl_is_byte_identical_to_golden(name):
    """The live ``--events-out`` stream — specialized sched-line encoder,
    pooled events, batched ``writelines`` flushes — must emit exactly the
    golden bytes, not merely equivalent JSON."""
    spec = get_scenario(name)
    golden = GOLDEN[name]
    stream = io.StringIO()
    result = run_spec(spec, collect_events=False, events_stream=stream)
    data = stream.getvalue().encode("utf-8")
    assert result.events_streamed == golden["events_lines"]
    assert data.count(b"\n") == golden["events_lines"]
    assert hashlib.sha256(data).hexdigest() == golden["events_sha256"]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_stored_events_artifact_is_byte_identical_to_golden(name, tmp_path):
    """The store's ``events.jsonl`` — written through the staging tee and
    the single-write ``put`` — must hold exactly the golden bytes, and the
    manifest digests (computed from the bytes as written) must agree."""
    spec = get_scenario(name)
    golden = GOLDEN[name]
    store = ResultStore(str(tmp_path / "store"))
    run_spec(spec, collect_events=False, store=store)
    entry = store.lookup(spec)
    assert entry is not None  # the fresh run must have filled the cache
    with open(entry.events_path, "rb") as handle:
        data = handle.read()
    assert hashlib.sha256(data).hexdigest() == golden["events_sha256"]
    assert entry.manifest["events_sha256"] == golden["events_sha256"]
    assert entry.manifest["events_lines"] == golden["events_lines"]
    assert entry.manifest["events_bytes"] == len(data)
