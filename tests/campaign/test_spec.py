"""Spec validation, serialization and matrix expansion."""

import pytest

from repro.campaign import ScenarioSpec, SpecError, derive_seed, expand_matrix
from repro.campaign.spec import (
    coerce_value,
    expansion_count,
    parse_matrix_axis,
    parse_overrides,
)


class TestValidation:
    def test_valid_spec_passes_and_chains(self):
        spec = ScenarioSpec(name="ok")
        assert spec.validate() is spec

    @pytest.mark.parametrize(
        "overrides, needle",
        [
            ({"kernel": "freertos"}, "unknown kernel"),
            ({"workload": "raytracer"}, "unknown workload"),
            ({"duration_ms": 0}, "duration_ms"),
            ({"task_count": 0}, "task_count"),
            ({"period_ms": -1}, "period_ms"),
            ({"bfm_access_period_ms": 0}, "bfm_access_period_ms"),
            ({"tick_ms": 0}, "tick_ms"),
            ({"time_slice_ticks": 0}, "time_slice_ticks"),
            ({"priorities": [1, 2, 3]}, "priorities"),
        ],
    )
    def test_bad_field_raises_with_message(self, overrides, needle):
        spec = ScenarioSpec(name="bad", task_count=4)
        for key, value in overrides.items():
            setattr(spec, key, value)
        with pytest.raises(SpecError, match=needle):
            spec.validate()

    def test_non_numeric_field_rejected(self):
        spec = ScenarioSpec(name="x")
        spec.duration_ms = "abc"
        with pytest.raises(SpecError, match="must be a number"):
            spec.validate()

    def test_bool_rejected_for_integer_field(self):
        spec = ScenarioSpec(name="x")
        spec.task_count = True
        with pytest.raises(SpecError, match="must be an integer"):
            spec.validate()

    def test_tkernel_only_workload_rejects_rtk_kernels(self):
        spec = ScenarioSpec(name="x", kernel="rtkspec1", workload="videogame")
        with pytest.raises(SpecError, match="requires kernel 'tkernel'"):
            spec.validate()

    def test_scheduler_comparison_rejects_tkernel(self):
        spec = ScenarioSpec(name="x", kernel="tkernel",
                            workload="scheduler_comparison")
        with pytest.raises(SpecError, match="rtkspec1"):
            spec.validate()

    def test_multiple_problems_reported_together(self):
        spec = ScenarioSpec(name="x", kernel="nope", duration_ms=-1)
        with pytest.raises(SpecError, match="unknown kernel.*duration_ms"):
            spec.validate()


class TestSerialization:
    def test_round_trip(self):
        spec = ScenarioSpec(
            name="rt", kernel="rtkspec2", workload="synthetic",
            duration_ms=75.0, task_count=3, seed=42, extra={"jobs": 2},
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec fields"):
            ScenarioSpec.from_dict({"name": "x", "cpu_count": 4})

    def test_missing_name_rejected(self):
        with pytest.raises(SpecError, match="name"):
            ScenarioSpec.from_dict({"kernel": "tkernel"})

    def test_overrides_split_between_fields_and_extra(self):
        spec = ScenarioSpec(name="x", extra={"jobs": 3})
        updated = spec.with_overrides({"duration_ms": 9.0, "render_cycles": 40})
        assert updated.duration_ms == 9.0
        assert updated.extra == {"jobs": 3, "render_cycles": 40}
        # the original is untouched
        assert spec.duration_ms == 100.0 and spec.extra == {"jobs": 3}


class TestMatrixExpansion:
    def test_empty_matrix_yields_single_run(self):
        specs = expand_matrix(ScenarioSpec(name="solo"))
        assert len(specs) == 1 and specs[0].name == "solo"

    def test_cross_product_order_is_deterministic(self):
        base = ScenarioSpec(name="m", kernel="rtkspec2", workload="synthetic")
        specs = expand_matrix(base, {"task_count": [2, 3], "period_ms": [5, 10]})
        names = [spec.name for spec in specs]
        assert names == [
            "m[task_count=2-period_ms=5]",
            "m[task_count=2-period_ms=10]",
            "m[task_count=3-period_ms=5]",
            "m[task_count=3-period_ms=10]",
        ]

    def test_derived_seeds_are_stable_and_distinct(self):
        base = ScenarioSpec(name="m", seed=9)
        first = expand_matrix(base, {"task_count": [1, 2, 3]})
        second = expand_matrix(base, {"task_count": [1, 2, 3]})
        assert [s.seed for s in first] == [s.seed for s in second]
        assert len({s.seed for s in first}) == 3
        assert first[0].seed == derive_seed(9, 0, "m")

    def test_matrix_sweeping_seed_wins_over_derivation(self):
        base = ScenarioSpec(name="m")
        specs = expand_matrix(base, {"seed": [100, 200]})
        assert [s.seed for s in specs] == [100, 200]

    def test_invalid_expanded_spec_raises(self):
        base = ScenarioSpec(name="m")
        with pytest.raises(SpecError):
            expand_matrix(base, {"duration_ms": [10, -5]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            expand_matrix(ScenarioSpec(name="m"), {"seed": []})

    def test_expansion_count(self):
        assert expansion_count(None) == 1
        assert expansion_count({"a": [1, 2], "b": [1, 2, 3]}) == 6


class TestCliParsing:
    def test_coerce_value(self):
        assert coerce_value("true") is True
        assert coerce_value("off") is False
        assert coerce_value("3") == 3
        assert coerce_value("2.5") == 2.5
        assert coerce_value("tkernel") == "tkernel"

    def test_parse_matrix_axis(self):
        key, values = parse_matrix_axis("seed=1,2,3")
        assert key == "seed" and values == [1, 2, 3]
        with pytest.raises(SpecError):
            parse_matrix_axis("seed")
        with pytest.raises(SpecError):
            parse_matrix_axis("seed=")

    def test_parse_overrides(self):
        assert parse_overrides(["duration_ms=25", "gui_enabled=false"]) == {
            "duration_ms": 25,
            "gui_enabled": False,
        }
        with pytest.raises(SpecError):
            parse_overrides(["oops"])

    def test_parse_overrides_comma_value_becomes_list(self):
        assert parse_overrides(["priorities=5,10,15"]) == {
            "priorities": [5, 10, 15]
        }

    def test_non_list_priorities_rejected(self):
        spec = ScenarioSpec(name="x")
        spec.priorities = "1,2"
        with pytest.raises(SpecError, match="priorities must be a list"):
            spec.validate()


class TestValidationHardening:
    """PR-5 hardening: type errors surface as one-line SpecErrors."""

    def test_gui_enabled_must_be_a_bool(self):
        spec = ScenarioSpec(name="x", gui_enabled="yes")
        with pytest.raises(SpecError, match="gui_enabled"):
            spec.validate()

    def test_extra_must_be_a_string_keyed_mapping(self):
        with pytest.raises(SpecError, match="extra"):
            ScenarioSpec(name="x", extra=[("items", 3)]).validate()
        with pytest.raises(SpecError, match="extra"):
            ScenarioSpec(name="x", extra={3: "items"}).validate()

    def test_name_must_be_a_string(self):
        with pytest.raises(SpecError, match="name"):
            ScenarioSpec(name=7).validate()

    def test_generated_workload_is_known(self):
        spec = ScenarioSpec(name="x", workload="generated")
        assert spec.validate() is spec

    def test_empty_override_key_rejected(self):
        from repro.campaign.spec import parse_overrides

        with pytest.raises(SpecError, match="empty key"):
            parse_overrides(["=3"])
        with pytest.raises(SpecError, match="empty key"):
            parse_overrides([" =3"])

    def test_empty_matrix_axis_key_rejected(self):
        from repro.campaign.spec import parse_matrix_axis

        with pytest.raises(SpecError, match="empty key"):
            parse_matrix_axis("=1,2")
