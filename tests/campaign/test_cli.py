"""The ``python -m repro`` command line, exercised through ``cli.main``."""

import json

from repro.campaign.cli import main


class TestList:
    def test_lists_every_builtin(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("quickstart", "videogame", "rtk-round-robin",
                     "synthetic-tkernel"):
            assert name in out


class TestRun:
    def test_run_with_overrides_and_outputs(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "run", "quickstart",
            "--set", "duration_ms=30",
            "--set", "items=2",
            "--events-out", str(events),
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "quickstart" in out and "wall clock" in out

        document = json.loads(metrics.read_text())
        assert document["spec"]["duration_ms"] == 30
        assert document["spec"]["extra"]["items"] == 2
        assert document["metrics"]["workload_metrics"]["produced"] == 2
        assert "timing" in document

        lines = events.read_text().splitlines()
        assert lines and json.loads(lines[0])["t_ms"] >= 0

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_override_fails_cleanly(self, capsys):
        assert main(["run", "quickstart", "--set", "duration_ms=-5"]) == 2
        assert "duration_ms" in capsys.readouterr().err


class TestBatchAndCompare:
    def test_batch_writes_artifacts_and_compare_reads_them(self, tmp_path, capsys):
        out_dir = tmp_path / "campaign"
        code = main([
            "batch",
            "--scenario", "rtk-round-robin",
            "--scenario", "rtk-priority",
            "--matrix", "seed=1,2",
            "--set", "duration_ms=60",
            "--workers", "2",
            "--out", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 runs on 2 fused worker(s)" in out
        assert "aggregate over 4 runs" in out

        metrics_path = out_dir / "metrics.json"
        document = json.loads(metrics_path.read_text())
        assert document["campaign"]["runs"] == 4
        assert len(list(out_dir.glob("events_*.jsonl"))) == 4

        assert main(["compare", str(metrics_path), str(metrics_path)]) == 0
        compare_out = capsys.readouterr().out
        assert "aggregate.total.context_switches" in compare_out

    def test_batch_serial_flag(self, tmp_path, capsys):
        code = main([
            "batch",
            "--scenario", "rtk-priority",
            "--matrix", "seed=1,2",
            "--set", "duration_ms=40",
            "--serial",
            "--no-events",
            "--out", str(tmp_path / "serial"),
        ])
        assert code == 0
        assert "on 1 fused worker(s)" in capsys.readouterr().out
        assert not list((tmp_path / "serial").glob("events_*.jsonl"))


class TestEventStreamingCli:
    def test_events_out_dash_streams_jsonl_to_stdout(self, capsys):
        """`python -m repro run ... --events-out -` smoke test."""
        code = main([
            "run", "quickstart",
            "--set", "duration_ms=20",
            "--events-out", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        jsonl = [line for line in out.splitlines() if line.startswith("{")]
        assert len(jsonl) > 10
        first = json.loads(jsonl[0])
        assert {"t_ms", "kind"} <= set(first)
        times = [json.loads(line)["t_ms"] for line in jsonl]
        assert times == sorted(times)
        assert "streamed" in out

    def test_events_out_file_is_streamed_during_run(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        code = main([
            "run", "rtk-priority",
            "--set", "duration_ms=40",
            "--events-out", str(events),
        ])
        assert code == 0
        lines = events.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        assert f"({len(lines)} events, streamed)" in capsys.readouterr().out


class TestDescribe:
    def test_describe_prints_the_composed_parts_as_canonical_json(self, capsys):
        from repro.obs.bus import canonical_json

        assert main(["describe", "quickstart"]) == 0
        out = capsys.readouterr().out.strip()
        document = json.loads(out)
        assert out == canonical_json(document)  # canonical encoding
        composition = document["composition"]
        assert set(composition) == {"platform", "kernel", "workload", "probes"}
        assert composition["platform"]["kind"] == "bare"
        assert composition["kernel"]["model"] == "tkernel"
        assert composition["workload"]["name"] == "quickstart"
        assert composition["probes"]["topics"] == ["sched"]
        assert document["spec_hash"]

    def test_describe_resolves_overrides(self, capsys):
        assert main(["describe", "videogame", "--set",
                     "bfm_access_period_ms=40"]) == 0
        document = json.loads(capsys.readouterr().out)
        platform = document["composition"]["platform"]
        assert platform["kind"] == "i8051"
        assert platform["bfm_access_period_ms"] == 40
        assert "rtc" in platform["controllers"]

    def test_describe_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["describe", "does-not-exist"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and len(err.strip().splitlines()) == 1

    def test_describe_needs_exactly_one_source(self, capsys):
        assert main(["describe"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestListJson:
    def test_list_json_is_machine_readable(self, capsys):
        from repro.campaign.registry import scenario_names

        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in entries] == scenario_names()
        assert all(
            {"name", "description", "kernel", "workload", "duration_ms",
             "spec_hash"} <= set(entry)
            for entry in entries
        )


class TestHardening:
    """Unknown scenarios / bad --set values: one-line errors, exit 2."""

    def test_bad_set_type_fails_cleanly(self, capsys):
        assert main(["run", "quickstart", "--set", "duration_ms=soon"]) == 2
        err = capsys.readouterr().err
        assert "duration_ms" in err and len(err.strip().splitlines()) == 1

    def test_bad_set_shape_fails_cleanly(self, capsys):
        assert main(["run", "quickstart", "--set", "duration_ms"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_empty_set_key_fails_cleanly(self, capsys):
        assert main(["run", "quickstart", "--set", "=5"]) == 2
        assert "empty key" in capsys.readouterr().err

    def test_bool_field_type_is_checked(self, capsys):
        assert main(["run", "quickstart", "--set", "gui_enabled=maybe"]) == 2
        assert "gui_enabled" in capsys.readouterr().err

    def test_batch_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["batch", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_batch_bad_matrix_axis_fails_cleanly(self, capsys):
        assert main(["batch", "--scenario", "rtk-priority",
                     "--matrix", "seed"]) == 2
        assert "matrix axis" in capsys.readouterr().err
        assert main(["batch", "--scenario", "rtk-priority",
                     "--matrix", "=1,2"]) == 2
        assert "empty key" in capsys.readouterr().err

    def test_unknown_set_key_still_passes_through_with_a_note(
        self, tmp_path, capsys
    ):
        code = main(["run", "quickstart", "--set", "duration_ms=20",
                     "--set", "items=1", "--set", "mystery_knob=3"])
        assert code == 0
        assert "mystery_knob" in capsys.readouterr().err  # the typo note


class TestFamilyCli:
    def _family_path(self, tmp_path, count=6):
        from repro.workload import FamilySpec

        family = FamilySpec(name="cli", count=count, seed=13,
                            kernels=("tkernel", "rtkspec2"), duration_ms=8.0)
        path = tmp_path / "family.json"
        path.write_text(json.dumps(family.to_dict()))
        return str(path)

    def test_batch_expands_family_members(self, tmp_path, capsys):
        code = main(["batch", "--family", self._family_path(tmp_path),
                     "--serial", "--no-events",
                     "--out", str(tmp_path / "out")])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 6 runs" in out
        document = json.loads((tmp_path / "out" / "metrics.json").read_text())
        assert [run["spec"]["name"] for run in document["runs"]] == \
            [f"cli/{i:04d}" for i in range(6)]

    def test_shard_plan_slices_the_family_deterministically(
        self, tmp_path, capsys
    ):
        path = self._family_path(tmp_path)
        seen = []
        for index in range(3):
            assert main(["shard", "plan", "--shards", "3",
                         "--index", str(index), "--family", path,
                         "--json"]) == 0
            for line in capsys.readouterr().out.splitlines():
                record = json.loads(line)
                seen.append((record["index"], record["spec"]["name"]))
        assert sorted(index for index, _ in seen) == list(range(6))

    def test_bad_family_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"name\": \"x\", \"count\": 0}")
        assert main(["batch", "--family", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "count" in err and len(err.strip().splitlines()) == 1
