"""The ``python -m repro`` command line, exercised through ``cli.main``."""

import json

from repro.campaign.cli import main


class TestList:
    def test_lists_every_builtin(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("quickstart", "videogame", "rtk-round-robin",
                     "synthetic-tkernel"):
            assert name in out


class TestRun:
    def test_run_with_overrides_and_outputs(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "run", "quickstart",
            "--set", "duration_ms=30",
            "--set", "items=2",
            "--events-out", str(events),
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "quickstart" in out and "wall clock" in out

        document = json.loads(metrics.read_text())
        assert document["spec"]["duration_ms"] == 30
        assert document["spec"]["extra"]["items"] == 2
        assert document["metrics"]["workload_metrics"]["produced"] == 2
        assert "timing" in document

        lines = events.read_text().splitlines()
        assert lines and json.loads(lines[0])["t_ms"] >= 0

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_override_fails_cleanly(self, capsys):
        assert main(["run", "quickstart", "--set", "duration_ms=-5"]) == 2
        assert "duration_ms" in capsys.readouterr().err


class TestBatchAndCompare:
    def test_batch_writes_artifacts_and_compare_reads_them(self, tmp_path, capsys):
        out_dir = tmp_path / "campaign"
        code = main([
            "batch",
            "--scenario", "rtk-round-robin",
            "--scenario", "rtk-priority",
            "--matrix", "seed=1,2",
            "--set", "duration_ms=60",
            "--workers", "2",
            "--out", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 runs on 2 worker(s)" in out
        assert "aggregate over 4 runs" in out

        metrics_path = out_dir / "metrics.json"
        document = json.loads(metrics_path.read_text())
        assert document["campaign"]["runs"] == 4
        assert len(list(out_dir.glob("events_*.jsonl"))) == 4

        assert main(["compare", str(metrics_path), str(metrics_path)]) == 0
        compare_out = capsys.readouterr().out
        assert "aggregate.total.context_switches" in compare_out

    def test_batch_serial_flag(self, tmp_path, capsys):
        code = main([
            "batch",
            "--scenario", "rtk-priority",
            "--matrix", "seed=1,2",
            "--set", "duration_ms=40",
            "--serial",
            "--no-events",
            "--out", str(tmp_path / "serial"),
        ])
        assert code == 0
        assert "on 1 worker(s)" in capsys.readouterr().out
        assert not list((tmp_path / "serial").glob("events_*.jsonl"))


class TestEventStreamingCli:
    def test_events_out_dash_streams_jsonl_to_stdout(self, capsys):
        """`python -m repro run ... --events-out -` smoke test."""
        code = main([
            "run", "quickstart",
            "--set", "duration_ms=20",
            "--events-out", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        jsonl = [line for line in out.splitlines() if line.startswith("{")]
        assert len(jsonl) > 10
        first = json.loads(jsonl[0])
        assert {"t_ms", "kind"} <= set(first)
        times = [json.loads(line)["t_ms"] for line in jsonl]
        assert times == sorted(times)
        assert "streamed" in out

    def test_events_out_file_is_streamed_during_run(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        code = main([
            "run", "rtk-priority",
            "--set", "duration_ms=40",
            "--events-out", str(events),
        ])
        assert code == 0
        lines = events.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        assert f"({len(lines)} events, streamed)" in capsys.readouterr().out
