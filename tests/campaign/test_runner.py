"""Runner behaviour: determinism, state isolation, event streams."""

import json

import pytest

from repro.campaign import (
    ScenarioSpec,
    get_scenario,
    run_spec,
    scenario_names,
)
from repro.sysc import SimulationError, Simulator

#: Cheap scenarios that cover all three kernels and most workloads.
SMOKE_SCENARIOS = ("quickstart", "sync-tour", "rtk-round-robin",
                   "rtk-priority", "synthetic-tkernel", "synthetic-rtk")


class TestRunSpec:
    @pytest.mark.parametrize("name", SMOKE_SCENARIOS)
    def test_builtin_scenario_produces_activity(self, name):
        result = run_spec(get_scenario(name))
        assert result.metrics["context_switches"] > 0
        assert result.metrics["simulated_ms"] > 0
        assert result.events, "event stream must not be empty"

    def test_runner_resets_current_simulator(self):
        Simulator.reset()  # start with no caller-owned simulator
        run_spec(get_scenario("quickstart"))
        with pytest.raises(SimulationError):
            Simulator.current()

    def test_runner_restores_caller_owned_simulator(self):
        with Simulator("mine") as outer:
            run_spec(get_scenario("rtk-priority"))
            assert Simulator.current() is outer
        Simulator.reset()

    def test_timed_advances_metric_counts_horizon(self):
        result = run_spec(get_scenario("quickstart"))
        assert result.metrics["timed_advances"] > 0

    def test_runner_resets_even_on_failure(self):
        Simulator.reset()
        spec = get_scenario("quickstart")
        spec.workload = "raytracer"  # invalidated only at run time
        with pytest.raises(Exception):
            run_spec(spec)
        with pytest.raises(SimulationError):
            Simulator.current()

    def test_metrics_shape(self):
        result = run_spec(get_scenario("quickstart"))
        metrics = result.metrics
        assert metrics["scenario"] == "quickstart"
        assert metrics["kernel"] == "tkernel"
        assert 0.0 <= metrics["cpu_utilization"] <= 1.0
        assert metrics["energy_mj"] > 0
        assert metrics["syscall_total"] == sum(metrics["syscalls"].values())
        assert metrics["workload_metrics"]["produced"] == 5
        # timing is separated from the deterministic section
        assert "wall_clock_seconds" not in metrics
        assert result.timing["wall_clock_seconds"] >= 0

    def test_events_are_time_ordered_and_jsonl_safe(self):
        result = run_spec(get_scenario("sync-tour"))
        times = [event["t_ms"] for event in result.events]
        assert times == sorted(times)
        for event in result.events:
            line = json.dumps(event)
            assert json.loads(line) == event

    def test_collect_events_can_be_disabled(self):
        result = run_spec(get_scenario("quickstart"), collect_events=False)
        assert result.events == []
        assert result.metrics["context_switches"] > 0


class TestDeterminism:
    def test_same_spec_and_seed_is_byte_identical(self):
        first = run_spec(get_scenario("synthetic-tkernel"))
        second = run_spec(get_scenario("synthetic-tkernel"))
        assert first.metrics_json() == second.metrics_json()
        assert first.events == second.events

    def test_different_seed_changes_synthetic_workload(self):
        base = get_scenario("synthetic-rtk")
        other = get_scenario("synthetic-rtk").with_overrides({"seed": 999})
        first = run_spec(base)
        second = run_spec(other)
        assert first.metrics_json() != second.metrics_json()

    def test_back_to_back_runs_do_not_interfere(self):
        solo = run_spec(get_scenario("quickstart")).metrics_json()
        run_spec(get_scenario("rtk-priority"))
        after_other = run_spec(get_scenario("quickstart")).metrics_json()
        assert solo == after_other


class TestRegistry:
    def test_every_builtin_spec_validates(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert spec.validate() is spec

    def test_get_scenario_returns_fresh_copies(self):
        first = get_scenario("quickstart")
        first.duration_ms = 1.0
        assert get_scenario("quickstart").duration_ms == 50.0

    def test_synthetic_task_sets_depend_only_on_seed(self):
        from repro.workload.builtins import SyntheticWorkload

        spec_a = ScenarioSpec(name="a", workload="synthetic", seed=5)
        spec_b = ScenarioSpec(name="b", workload="synthetic", seed=5)
        assert SyntheticWorkload.task_set(spec_a) == SyntheticWorkload.task_set(spec_b)


class TestEventStreaming:
    def test_streamed_jsonl_is_byte_identical_to_collected_events(self):
        import io

        from repro.campaign.metrics import canonical_json

        spec = get_scenario("rtk-round-robin")
        collected = run_spec(spec)
        stream = io.StringIO()
        streamed = run_spec(spec, collect_events=False, events_stream=stream)
        assert streamed.events == []  # bounded memory: nothing materialized
        assert streamed.events_streamed == len(collected.events)
        assert stream.getvalue().splitlines() == [
            canonical_json(event) for event in collected.events
        ]

    def test_streaming_to_a_path_matches_write_events(self, tmp_path):
        spec = get_scenario("quickstart")
        collected = run_spec(spec)
        written = tmp_path / "written.jsonl"
        collected.write_events(str(written))
        streamed_path = tmp_path / "streamed.jsonl"
        run_spec(spec, collect_events=False, events_stream=str(streamed_path))
        assert streamed_path.read_bytes() == written.read_bytes()

    def test_events_match_legacy_gantt_flattening(self):
        """Live bus streaming reproduces the old post-run Gantt conversion."""
        from repro.campaign.metrics import events_from_gantt
        from repro.campaign.registry import build_scenario
        from repro.sysc import SimTime

        spec = get_scenario("sync-tour")
        live = run_spec(spec).events
        build = build_scenario(spec)
        build.simulator.run(SimTime.ms(spec.duration_ms))
        legacy = events_from_gantt(build.api.gantt)
        Simulator.reset()
        assert live == legacy

    def test_extra_sinks_ride_along_and_detach(self):
        from repro.obs import CounterSink, RingBufferSink

        counter = CounterSink(topics=("sched", "svc", "campaign"))
        ring = RingBufferSink(capacity=16, topics=("sched",))
        result = run_spec(get_scenario("quickstart"), sinks=[counter, ring])
        assert counter.count(topic="sched", kind="dispatch") == \
            result.metrics["context_switches"]
        assert counter.count(topic="svc", kind="enter") == \
            result.metrics["syscall_total"]
        assert counter.count(topic="campaign", kind="run_start") == 1
        assert counter.count(topic="campaign", kind="run_end") == 1
        assert len(ring) <= 16  # bounded
        assert ring.seen > 16

    def test_gantt_counters_survive_detached_gantt(self):
        result = run_spec(get_scenario("quickstart"))
        assert result.metrics["gantt_segments"] > 0
        assert result.metrics["gantt_markers"] > 0
        exec_events = [e for e in result.events if e["kind"] == "exec"]
        assert len(exec_events) == result.metrics["gantt_segments"]
        assert len(result.events) - len(exec_events) == result.metrics["gantt_markers"]

    def test_extra_sinks_see_pre_build_events_too(self):
        """rtk builders dispatch at build time; caller sinks must not miss it."""
        from repro.obs import CounterSink

        counter = CounterSink(topics=("sched",))
        result = run_spec(get_scenario("rtk-priority"), sinks=[counter])
        assert counter.count(kind="dispatch") == result.metrics["context_switches"]
        assert counter.total() == len(result.events)
