"""Fused-engine contracts: byte-identity, resume, and grouping policy.

The fused executor (``repro.campaign.fused``) is a pure performance
refactor: amortized compositions, pooled collectors, grouped IPC — none of
it may leak into any deterministic artifact.  These tests pin the strong
form of that claim: for the same spec list, the serial pre-fused engine,
the fused in-process loop, the fused worker pool and a sharded+merged
sweep all write **byte-identical** ``aggregate.json`` and per-run event
streams.
"""

import hashlib
import os

import pytest

from repro.campaign.batch import run_batch, run_events_filename
from repro.campaign.fused import (
    MAX_GROUP_SIZE,
    CompositionCache,
    FusedRunContext,
    compute_chunksize,
    fused_worker_count,
    process_composition_cache,
)
from repro.campaign.registry import get_scenario, scenario_names
from repro.grid.executor import merge_shards, run_shard
from repro.grid.shard import plan_shard
from repro.grid.store import ResultStore
from repro.workload.families import FamilySpec, expand_family


def _digest(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _artifact_digests(out_dir, specs):
    """sha256 of aggregate.json and of every per-run event stream."""
    digests = {"aggregate.json": _digest(os.path.join(out_dir, "aggregate.json"))}
    for index, spec in enumerate(specs):
        name = run_events_filename(index, spec.name)
        digests[name] = _digest(os.path.join(out_dir, name))
    return digests


def _run_to_dir(specs, out_dir, **kwargs):
    batch = run_batch(specs, **kwargs)
    batch.write_outputs(str(out_dir))
    return batch


# ----------------------------------------------------------------------
# Byte-identity across engines
# ----------------------------------------------------------------------
class TestEngineByteIdentity:
    def test_all_builtins_identical_across_four_engines(self, tmp_path):
        """Every builtin, through every engine, bytes for bytes."""
        specs = [get_scenario(name) for name in scenario_names()]
        engines = {
            "serial": dict(workers=1, fuse=False),
            "fused-serial": dict(workers=1, fuse=True),
            "fused-pool": dict(workers=2, fuse=True),
            "pool": dict(workers=2, fuse=False),
        }
        digests = {}
        for label, kwargs in engines.items():
            out = tmp_path / label
            _run_to_dir(specs, out, **kwargs)
            digests[label] = _artifact_digests(out, specs)
        reference = digests.pop("serial")
        for label, other in digests.items():
            assert other == reference, f"{label} diverged from serial"

    def test_family_sweep_matches_sharded_merge(self, tmp_path):
        """A generated family: fused batch == fused shards + merge."""
        family = FamilySpec(
            name="fuse-id", count=8, seed=3,
            kernels=("tkernel", "rtkspec1"), duration_ms=10.0,
        )
        specs = expand_family(family)

        batch_dir = tmp_path / "batch"
        _run_to_dir(specs, batch_dir, fuse=True)

        shard_dirs = []
        for index in range(2):
            shard_dir = tmp_path / f"shard{index}"
            run_shard(plan_shard(specs, 2, index), str(shard_dir), fuse=True)
            shard_dirs.append(str(shard_dir))
        merged_dir = tmp_path / "merged"
        merge_shards(shard_dirs, str(merged_dir))

        assert _artifact_digests(str(batch_dir), specs) == \
            _artifact_digests(str(merged_dir), specs)

    def test_fused_matches_prefused_with_store_attached(self, tmp_path):
        """Cold-store sweeps are identical too (store fills en route)."""
        specs = expand_family(FamilySpec(
            name="fuse-store", count=6, seed=5, duration_ms=10.0,
        ))
        fused_dir, plain_dir = tmp_path / "fused", tmp_path / "plain"
        fused = _run_to_dir(
            specs, fused_dir, workers=2, fuse=True,
            store=ResultStore(str(tmp_path / "cache_a")),
        )
        plain = _run_to_dir(
            specs, plain_dir, workers=2, fuse=False,
            store=ResultStore(str(tmp_path / "cache_b")),
        )
        assert fused.cache_hits == plain.cache_hits == 0
        assert _artifact_digests(str(fused_dir), specs) == \
            _artifact_digests(str(plain_dir), specs)


# ----------------------------------------------------------------------
# Resume: an interrupted fused sweep re-simulates nothing
# ----------------------------------------------------------------------
class TestFusedResume:
    def test_interrupted_batch_resumes_without_resimulation(
        self, tmp_path, monkeypatch
    ):
        specs = expand_family(FamilySpec(
            name="fuse-resume", count=8, seed=11, duration_ms=10.0,
        ))
        store = ResultStore(str(tmp_path / "cache"))

        # "Interrupt" after half the sweep: only the first four runs made
        # it into the store.
        first = run_batch(specs[:4], store=store, fuse=True)
        assert first.cache_hits == 0

        resumed = run_batch(specs, store=store, fuse=True)
        assert resumed.cache_hits == 4

        # A second full pass replays everything — and never even builds a
        # scenario, let alone simulates one.
        import repro.campaign.runner as runner_module

        def forbidden(spec, *args, **kwargs):
            raise AssertionError(
                "resume re-simulated: build_scenario was called"
            )

        monkeypatch.setattr(runner_module, "build_scenario", forbidden)
        replayed = run_batch(specs, store=store, fuse=True)
        assert replayed.cache_hits == len(specs)
        assert replayed.aggregate == resumed.aggregate


# ----------------------------------------------------------------------
# Grouping / caching policy units
# ----------------------------------------------------------------------
class TestFusedPolicy:
    def test_fused_worker_count_has_no_two_worker_floor(self):
        assert fused_worker_count(1) == 1
        cores = os.cpu_count() or 1
        assert fused_worker_count(1000) == cores

    def test_compute_chunksize_serial_takes_everything(self):
        assert compute_chunksize(24, 1) == 24
        assert compute_chunksize(0, 4) == 1

    def test_compute_chunksize_balances_and_caps(self):
        # ~4 payloads per worker...
        assert compute_chunksize(64, 2) == 8
        # ...never zero...
        assert compute_chunksize(3, 8) == 1
        # ...and never beyond the streaming cap.
        assert compute_chunksize(100_000, 2) == MAX_GROUP_SIZE

    def test_composition_cache_hits_and_evicts(self):
        cache = CompositionCache(limit=2)
        a, b, c = (get_scenario(name) for name in scenario_names()[:3])
        first = cache.composition_for(a)
        assert cache.composition_for(a) is first
        assert (cache.hits, cache.misses) == (1, 1)
        cache.composition_for(b)
        cache.composition_for(c)  # evicts a (FIFO)
        assert len(cache) == 2
        assert cache.composition_for(a) is not first or cache.misses == 3

    def test_spec_is_cacheable_composes_once(self, monkeypatch):
        import repro.workload.components as components
        from repro.campaign.batch import _spec_is_cacheable

        calls = []
        real_compose = components.compose

        def counting(spec, *args, **kwargs):
            calls.append(spec.name)
            return real_compose(spec, *args, **kwargs)

        monkeypatch.setattr(components, "compose", counting)
        process_composition_cache().clear()
        try:
            spec = get_scenario("rtk-priority")
            assert _spec_is_cacheable(spec)
            assert _spec_is_cacheable(spec)
            assert calls == ["rtk-priority"]
        finally:
            process_composition_cache().clear()

    def test_checkout_collector_reuses_one_sink(self):
        context = FusedRunContext(compositions=CompositionCache())
        sink = context.checkout_collector(("sched",))
        sink.events.append({"topic": "sched"})
        again = context.checkout_collector(("sched", "sim"))
        assert again is sink
        assert again.events == []
        assert again.topics == ("sched", "sim")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFuseFlag:
    @pytest.mark.parametrize("flag", ["--fuse", "--no-fuse"])
    def test_batch_cli_accepts_fuse_flags(self, flag, tmp_path, capsys):
        from repro.campaign.cli import main as cli_main

        code = cli_main([
            "batch", "--scenario", "rtk-priority", "--serial",
            "--no-events", flag, "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert ("fused" in out) == (flag == "--fuse")
