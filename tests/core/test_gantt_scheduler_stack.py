"""Unit tests for the Gantt chart, schedulers, SIM_Stack, SIM_HashTB and the
kernel timer queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    GanttChart,
    GanttSegment,
    PriorityScheduler,
    RoundRobinScheduler,
    SimApi,
    SimStack,
    ThreadState,
)
from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator
from repro.tkernel.timemgmt import TimeManager


def make_threads(count, priorities=None):
    """Create dormant T-THREADs without running the simulator."""
    api = SimApi(Simulator("unit"))
    threads = []
    for index in range(count):
        priority = priorities[index] if priorities else 10
        threads.append(api.create_thread(f"t{index}", lambda: iter(()), priority=priority))
    return api, threads


class TestGanttChart:
    def test_busy_time_and_energy_per_thread(self):
        chart = GanttChart()
        chart.add_segment(GanttSegment("a", SimTime.ms(0), SimTime.ms(2),
                                       ExecutionContext.TASK, 10.0))
        chart.add_segment(GanttSegment("a", SimTime.ms(5), SimTime.ms(6),
                                       ExecutionContext.BFM_ACCESS, 5.0))
        chart.add_segment(GanttSegment("b", SimTime.ms(2), SimTime.ms(5),
                                       ExecutionContext.TASK, 7.0))
        assert chart.busy_time_of("a") == SimTime.ms(3)
        assert chart.energy_of("a") == pytest.approx(15.0)
        assert chart.threads() == ["a", "b"]
        assert chart.end_time() == SimTime.ms(6)

    def test_invalid_segment_rejected(self):
        chart = GanttChart()
        with pytest.raises(ValueError):
            chart.add_segment(GanttSegment("a", SimTime.ms(2), SimTime.ms(1),
                                           ExecutionContext.TASK))

    def test_overlap_detection(self):
        chart = GanttChart()
        chart.add_segment(GanttSegment("a", SimTime.ms(0), SimTime.ms(3),
                                       ExecutionContext.TASK))
        chart.add_segment(GanttSegment("b", SimTime.ms(2), SimTime.ms(4),
                                       ExecutionContext.TASK))
        assert len(chart.overlapping_segments()) == 1

    def test_render_contains_patterns_and_legend(self):
        chart = GanttChart()
        chart.add_segment(GanttSegment("task", SimTime.ms(0), SimTime.ms(5),
                                       ExecutionContext.TASK))
        chart.add_segment(GanttSegment("isr", SimTime.ms(5), SimTime.ms(6),
                                       ExecutionContext.HANDLER))
        art = chart.render(0, SimTime.ms(10), columns=20)
        assert "#" in art and "H" in art and "legend:" in art

    def test_markers_filter_by_kind(self):
        chart = GanttChart()
        chart.add_marker(SimTime.ms(1), "a", "dispatch")
        chart.add_marker(SimTime.ms(2), "a", "preempt")
        assert len(chart.markers_of("a")) == 2
        assert len(chart.markers_of("a", "preempt")) == 1

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 10)), max_size=30))
    def test_busy_time_equals_sum_of_durations(self, spans):
        chart = GanttChart()
        total = 0
        for start, length in spans:
            chart.add_segment(GanttSegment("x", SimTime.ms(start),
                                           SimTime.ms(start + length),
                                           ExecutionContext.TASK))
            total += length
        assert chart.busy_time_of("x") == SimTime.ms(total)


class TestSchedulers:
    def test_priority_scheduler_orders_by_priority_then_fifo(self):
        api, threads = make_threads(4, priorities=[20, 5, 20, 1])
        scheduler = PriorityScheduler()
        for thread in threads:
            scheduler.add_ready(thread)
        order = [scheduler.pop_next().name for _ in range(4)]
        assert order == ["t3", "t1", "t0", "t2"]

    def test_priority_scheduler_head_insertion(self):
        api, threads = make_threads(2, priorities=[10, 10])
        scheduler = PriorityScheduler()
        scheduler.add_ready(threads[0])
        scheduler.add_ready_first(threads[1])
        assert scheduler.select_next() is threads[1]

    def test_priority_scheduler_should_preempt(self):
        api, threads = make_threads(2, priorities=[10, 5])
        scheduler = PriorityScheduler()
        assert scheduler.should_preempt(threads[0], threads[1])
        assert not scheduler.should_preempt(threads[1], threads[0])
        assert scheduler.should_preempt(None, threads[0])

    def test_priority_out_of_range_rejected(self):
        api, threads = make_threads(1)
        threads[0].priority = 9999
        with pytest.raises(ValueError):
            PriorityScheduler().add_ready(threads[0])

    def test_round_robin_is_fifo_and_never_preempts(self):
        api, threads = make_threads(3, priorities=[1, 50, 20])
        scheduler = RoundRobinScheduler()
        for thread in threads:
            scheduler.add_ready(thread)
        assert scheduler.pop_next() is threads[0]
        assert not scheduler.should_preempt(threads[1], threads[2])

    def test_remove_is_idempotent(self):
        api, threads = make_threads(1)
        for scheduler in (PriorityScheduler(), RoundRobinScheduler()):
            scheduler.add_ready(threads[0])
            scheduler.remove(threads[0])
            scheduler.remove(threads[0])
            assert scheduler.select_next() is None

    @given(st.lists(st.integers(1, 140), min_size=1, max_size=25))
    def test_priority_pop_order_is_sorted(self, priorities):
        api, threads = make_threads(len(priorities), priorities=priorities)
        scheduler = PriorityScheduler()
        for thread in threads:
            scheduler.add_ready(thread)
        popped = []
        while True:
            thread = scheduler.pop_next()
            if thread is None:
                break
            popped.append(thread.priority)
        assert popped == sorted(priorities)


class TestSimStack:
    def test_push_pop_tracks_nesting(self):
        stack = SimStack()
        stack.push("task", "isr1", SimTime.ms(1))
        stack.push("isr1", "isr2", SimTime.ms(2))
        assert stack.depth == 2
        assert stack.current_handler() == "isr2"
        frame = stack.pop()
        assert frame.handler == "isr2" and frame.interrupted == "isr1"
        assert stack.max_observed_depth == 2

    def test_underflow_and_overflow(self):
        stack = SimStack(max_depth=1)
        with pytest.raises(IndexError):
            stack.pop()
        stack.push(None, "isr", SimTime(0))
        with pytest.raises(OverflowError):
            stack.push("isr", "isr2", SimTime(0))

    def test_empty_queries(self):
        stack = SimStack()
        assert stack.is_empty() and not stack.in_interrupt()
        assert stack.current_handler() is None
        with pytest.raises(IndexError):
            stack.peek()

    @given(st.lists(st.booleans(), max_size=60))
    def test_depth_never_negative(self, pushes):
        stack = SimStack()
        for push in pushes:
            if push:
                stack.push(None, "h", SimTime(0))
            elif stack.depth:
                stack.pop()
        assert stack.depth >= 0
        assert stack.max_observed_depth >= stack.depth


class TestSimHashTB:
    def test_duplicate_registration_rejected(self):
        api, threads = make_threads(1)
        with pytest.raises(KeyError):
            api.hashtb.register(threads[0])

    def test_lookup_by_id_and_name(self):
        api, threads = make_threads(2)
        assert api.hashtb.get(threads[0].tid) is threads[0]
        assert api.hashtb.get_by_name("t1") is threads[1]
        with pytest.raises(KeyError):
            api.hashtb.get(999)

    def test_threads_in_state_filter(self):
        api, threads = make_threads(3)
        threads[0].set_state(ThreadState.READY)
        ready = api.hashtb.threads_in_state(ThreadState.READY)
        assert ready == [threads[0]]

    def test_unregister(self):
        api, threads = make_threads(1)
        api.hashtb.unregister(threads[0])
        assert len(api.hashtb) == 0


class TestTimeManager:
    def test_after_and_process_due(self):
        manager = TimeManager()
        fired = []
        manager.after_ms(SimTime(0), 5, lambda: fired.append("a"))
        manager.after_ms(SimTime(0), 10, lambda: fired.append("b"))
        assert manager.process_due(SimTime.ms(5)) == 1
        assert fired == ["a"]
        assert manager.process_due(SimTime.ms(20)) == 1
        assert fired == ["a", "b"]

    def test_cancel_prevents_firing(self):
        manager = TimeManager()
        fired = []
        handle = manager.after_ms(SimTime(0), 5, lambda: fired.append("x"))
        manager.cancel(handle)
        manager.process_due(SimTime.ms(10))
        assert fired == []
        assert manager.pending_count() == 0

    def test_system_time_offset(self):
        manager = TimeManager()
        for _ in range(10):
            manager.advance_tick()
        manager.set_system_time(1000)
        assert manager.get_system_time() == 1000
        manager.advance_tick()
        assert manager.get_system_time() == 1001
        assert manager.get_operation_time() == 11

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            TimeManager().after(SimTime(0), SimTime(-1), lambda: None)

    @given(st.lists(st.integers(0, 100), max_size=30))
    def test_all_events_fire_by_horizon(self, delays):
        manager = TimeManager()
        fired = []
        for delay in delays:
            manager.after_ms(SimTime(0), delay, lambda d=delay: fired.append(d))
        manager.process_due(SimTime.ms(200))
        assert sorted(fired) == sorted(delays)
