"""Integration-level tests of the SIM_API library and T-THREAD semantics.

These exercise the paper's core mechanisms directly, without the T-Kernel
model on top: dispatching, preemption at system-clock granularity, sleeping
and wakeup (Ew), interrupts and nested interrupts (SIM_Stack), delayed
dispatching, service-call atomicity, CET/CEE accumulation and the Gantt
chart's single-CPU invariant.
"""

import pytest

from repro.core import (
    ExecutionContext,
    PriorityScheduler,
    RoundRobinScheduler,
    SimApi,
    SimApiError,
    ThreadKind,
    ThreadState,
)
from repro.core.events import RunEvent
from repro.sysc import SimTime, Simulator


def make_api(scheduler=None, tick=SimTime.ms(1)):
    sim = Simulator("simapi-test")
    api = SimApi(sim, scheduler=scheduler, system_tick=tick)
    return sim, api


class TestBasicExecution:
    def test_single_task_runs_and_accumulates_cet(self):
        sim, api = make_api()
        log = []

        def body():
            yield from api.sim_wait(duration=SimTime.ms(3), energy_nj=3000.0)
            log.append(sim.now.to_ms())

        task = api.create_thread("t1", body, priority=10)
        api.start_thread(task)
        sim.run(SimTime.ms(20))
        assert log == [3.0]
        assert task.consumed_execution_time == SimTime.ms(3)
        assert task.consumed_execution_energy_nj == pytest.approx(3000.0)
        assert task.state is ThreadState.DORMANT
        assert task.exit_count == 1

    def test_first_activation_fires_startup_event(self):
        sim, api = make_api()

        def body():
            yield from api.sim_wait(duration=SimTime.ms(1))

        task = api.create_thread("t1", body, priority=10)
        api.start_thread(task)
        sim.run(SimTime.ms(5))
        events = task.token.firing_sequence.event_vector
        assert events.get("Es") == 1

    def test_two_tasks_same_priority_run_sequentially(self):
        sim, api = make_api()
        order = []

        def make_body(name):
            def body():
                yield from api.sim_wait(duration=SimTime.ms(2))
                order.append((name, sim.now.to_ms()))
            return body

        a = api.create_thread("a", make_body("a"), priority=10)
        b = api.create_thread("b", make_body("b"), priority=10)
        api.start_thread(a)
        api.start_thread(b)
        sim.run(SimTime.ms(20))
        assert order == [("a", 2.0), ("b", 4.0)]

    def test_sim_wait_requires_cpu_ownership(self):
        sim, api = make_api()
        errors = []

        def rogue():
            try:
                yield from api.sim_wait(duration=SimTime.ms(1))
            except SimApiError as exc:
                errors.append(str(exc))

        # A plain sysc process that is not a T-THREAD must not call sim_wait.
        sim.register_thread("rogue", rogue)
        sim.run(SimTime.ms(5))
        assert errors

    def test_sim_wait_argument_validation(self):
        sim, api = make_api()
        caught = []

        def body():
            try:
                yield from api.sim_wait()
            except SimApiError:
                caught.append("both-missing")
            try:
                yield from api.sim_wait(cycles=10, duration=SimTime.ms(1))
            except SimApiError:
                caught.append("both-given")
            yield from api.sim_wait(cycles=10)

        task = api.create_thread("t", body, priority=5)
        api.start_thread(task)
        sim.run(SimTime.ms(5))
        assert caught == ["both-missing", "both-given"]


class TestPriorityPreemption:
    def test_higher_priority_task_preempts_at_tick_granularity(self):
        sim, api = make_api()
        trace = []

        def low_body():
            trace.append(("low-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(10))
            trace.append(("low-end", sim.now.to_ms()))

        def high_body():
            trace.append(("high-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(2))
            trace.append(("high-end", sim.now.to_ms()))

        low = api.create_thread("low", low_body, priority=20)
        high = api.create_thread("high", high_body, priority=5)
        api.start_thread(low)

        def starter():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(3) + SimTime.us(500))
            api.start_thread(high)

        sim.register_thread("starter", starter)
        sim.run(SimTime.ms(30))

        # The high task becomes ready at 3.5 ms; the low task suspends at its
        # next preemption point (a tick boundary, <= 1 tick later).
        high_start = dict(trace)["high-start"]
        assert 3.5 <= high_start <= 4.5
        assert dict(trace)["high-end"] == pytest.approx(high_start + 2.0)
        # The low task completes its remaining work afterwards: total CPU time
        # is preserved.
        assert dict(trace)["low-end"] == pytest.approx(12.0, abs=0.6)
        assert low.preemption_count == 1
        assert low.token.firing_sequence.event_vector.get("Ex") == 1

    def test_preempted_cet_is_not_lost(self):
        sim, api = make_api()

        def low_body():
            yield from api.sim_wait(duration=SimTime.ms(6))

        def high_body():
            yield from api.sim_wait(duration=SimTime.ms(2))

        low = api.create_thread("low", low_body, priority=20)
        high = api.create_thread("high", high_body, priority=5)
        api.start_thread(low)

        def starter():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(2))
            api.start_thread(high)

        sim.register_thread("starter", starter)
        sim.run(SimTime.ms(30))
        assert low.consumed_execution_time == SimTime.ms(6)
        assert high.consumed_execution_time == SimTime.ms(2)

    def test_lower_priority_task_does_not_preempt(self):
        sim, api = make_api()
        order = []

        def running_body():
            yield from api.sim_wait(duration=SimTime.ms(5))
            order.append("running-done")

        def late_low_body():
            yield from api.sim_wait(duration=SimTime.ms(1))
            order.append("late-low-done")

        running = api.create_thread("running", running_body, priority=10)
        late = api.create_thread("late", late_low_body, priority=30)
        api.start_thread(running)

        def starter():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(1))
            api.start_thread(late)

        sim.register_thread("starter", starter)
        sim.run(SimTime.ms(20))
        assert order == ["running-done", "late-low-done"]
        assert running.preemption_count == 0

    def test_gantt_has_no_overlapping_segments(self):
        sim, api = make_api()

        def make_body(duration_ms):
            def body():
                yield from api.sim_wait(duration=SimTime.ms(duration_ms))
            return body

        for index, (priority, duration) in enumerate([(30, 7), (20, 5), (10, 3)]):
            api.start_thread(
                api.create_thread(f"t{index}", make_body(duration), priority=priority)
            )
        sim.run(SimTime.ms(40))
        assert api.gantt.overlapping_segments() == []


class TestSleepAndWakeup:
    def test_block_and_wakeup_fires_ew(self):
        sim, api = make_api()
        log = []

        def sleeper():
            yield from api.sim_wait(duration=SimTime.ms(1))
            log.append(("sleep", sim.now.to_ms()))
            yield from api.block_current()
            log.append(("woke", sim.now.to_ms()))

        def waker():
            yield from api.sim_wait(duration=SimTime.ms(4))
            api.wakeup(sleeping)
            yield from api.sim_wait(duration=SimTime.ms(1))

        sleeping = api.create_thread("sleeper", sleeper, priority=5)
        waking = api.create_thread("waker", waker, priority=10)
        api.start_thread(sleeping)
        api.start_thread(waking)
        sim.run(SimTime.ms(20))
        assert ("sleep", 1.0) in log
        woke_time = dict(log)["woke"]
        assert woke_time >= 5.0  # waker becomes ready at t=1, wakes at t=5
        assert sleeping.token.firing_sequence.event_vector.get("Ew", 0) >= 1

    def test_cpu_goes_idle_when_everyone_sleeps(self):
        sim, api = make_api()

        def sleeper():
            yield from api.sim_wait(duration=SimTime.ms(1))
            yield from api.block_current()

        task = api.create_thread("s", sleeper, priority=5)
        api.start_thread(task)
        sim.run(SimTime.ms(10))
        assert api.running is None
        assert api.cpu_idle_time() >= SimTime.ms(8)


class TestInterrupts:
    def test_interrupt_suspends_running_task(self):
        sim, api = make_api()
        trace = []

        def task_body():
            yield from api.sim_wait(duration=SimTime.ms(6))
            trace.append(("task-done", sim.now.to_ms()))

        def isr_body():
            trace.append(("isr-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(1), context=ExecutionContext.HANDLER)
            trace.append(("isr-end", sim.now.to_ms()))

        task = api.create_thread("task", task_body, priority=10)
        isr = api.create_thread("isr", isr_body, priority=0, kind=ThreadKind.INTERRUPT_HANDLER)
        api.start_thread(task)

        def external_interrupt():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(2) + SimTime.us(300))
            api.notify_interrupt(isr)

        sim.register_thread("ext", external_interrupt)
        sim.run(SimTime.ms(20))

        isr_start = dict(trace)["isr-start"]
        assert 2.3 <= isr_start <= 3.5
        assert dict(trace)["isr-end"] == pytest.approx(isr_start + 1.0)
        # The task resumes and still gets its full 6 ms of CPU time.
        assert dict(trace)["task-done"] == pytest.approx(7.0, abs=0.6)
        assert task.interrupted_count == 1
        assert task.token.firing_sequence.event_vector.get("Ei") == 1
        assert api.stack.is_empty()
        assert api.stack.max_observed_depth == 1

    def test_interrupt_on_idle_cpu_starts_handler_immediately(self):
        sim, api = make_api()
        times = []

        def isr_body():
            times.append(sim.now.to_ms())
            yield from api.sim_wait(duration=SimTime.ms(1), context=ExecutionContext.HANDLER)

        isr = api.create_thread("isr", isr_body, priority=0, kind=ThreadKind.INTERRUPT_HANDLER)

        def external_interrupt():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(5))
            api.notify_interrupt(isr)

        sim.register_thread("ext", external_interrupt)
        sim.run(SimTime.ms(20))
        assert times == [5.0]

    def test_nested_interrupts_use_the_stack(self):
        sim, api = make_api()
        trace = []

        def task_body():
            yield from api.sim_wait(duration=SimTime.ms(10))
            trace.append(("task-done", sim.now.to_ms()))

        def isr1_body():
            trace.append(("isr1-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(4), context=ExecutionContext.HANDLER)
            trace.append(("isr1-end", sim.now.to_ms()))

        def isr2_body():
            trace.append(("isr2-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(1), context=ExecutionContext.HANDLER)
            trace.append(("isr2-end", sim.now.to_ms()))

        task = api.create_thread("task", task_body, priority=10)
        isr1 = api.create_thread("isr1", isr1_body, priority=1, kind=ThreadKind.INTERRUPT_HANDLER)
        isr2 = api.create_thread("isr2", isr2_body, priority=0, kind=ThreadKind.INTERRUPT_HANDLER)
        api.start_thread(task)

        def external():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(2))
            api.notify_interrupt(isr1)
            yield Wait(SimTime.ms(2))
            api.notify_interrupt(isr2)

        sim.register_thread("ext", external)
        sim.run(SimTime.ms(30))

        data = dict(trace)
        assert data["isr1-start"] < data["isr2-start"] < data["isr2-end"] <= data["isr1-end"]
        assert api.stack.max_observed_depth == 2
        assert data["task-done"] == pytest.approx(15.0, abs=1.1)
        assert isr1.interrupted_count == 1  # isr1 itself was nested-interrupted

    def test_notify_interrupt_rejects_plain_tasks(self):
        sim, api = make_api()
        task = api.create_thread("t", lambda: iter(()), priority=10)
        with pytest.raises(SimApiError):
            api.notify_interrupt(task)


class TestDelayedDispatching:
    def test_preemption_inside_handler_is_postponed(self):
        """A task woken by an ISR must not start until the ISR returns."""
        sim, api = make_api()
        trace = []

        def low_body():
            yield from api.sim_wait(duration=SimTime.ms(8))
            trace.append(("low-done", sim.now.to_ms()))

        def high_body():
            trace.append(("high-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(1))
            trace.append(("high-end", sim.now.to_ms()))
            yield from api.block_current()
            trace.append(("high-resumed", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(1))

        def isr_body():
            trace.append(("isr-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(2), context=ExecutionContext.HANDLER)
            # Waking the high-priority task inside the handler must defer the
            # dispatch until the handler returns (delayed dispatching).
            api.wakeup(high)
            yield from api.sim_wait(duration=SimTime.ms(2), context=ExecutionContext.HANDLER)
            trace.append(("isr-end", sim.now.to_ms()))

        low = api.create_thread("low", low_body, priority=20)
        high = api.create_thread("high", high_body, priority=5)
        isr = api.create_thread("isr", isr_body, priority=0, kind=ThreadKind.INTERRUPT_HANDLER)

        # Put the high task to sleep first, then start the low task.
        def scenario():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(3))
            api.notify_interrupt(isr)

        api.start_thread(high)
        api.start_thread(low)
        sim.register_thread("ext", scenario)
        sim.run(SimTime.ms(40))

        data = dict(trace)
        # high runs first (priority), sleeps at ~1ms; low then runs; ISR at 3ms.
        assert data["isr-end"] > data["isr-start"]
        # The woken high task resumes only after the ISR has returned
        # (delayed dispatching) and before the low task finishes (it
        # preempted low).
        assert data["high-resumed"] >= data["isr-end"]
        assert data["high-resumed"] < data["low-done"]


class TestServiceCallAtomicity:
    def test_no_preemption_while_dispatch_disabled(self):
        sim, api = make_api()
        trace = []

        def low_body():
            api.dispatch_disable()
            yield from api.sim_wait(duration=SimTime.ms(4), context=ExecutionContext.SERVICE_CALL)
            trace.append(("service-done", sim.now.to_ms()))
            api.dispatch_enable()
            yield from api.sim_wait(duration=SimTime.ms(2))
            trace.append(("low-done", sim.now.to_ms()))

        def high_body():
            trace.append(("high-start", sim.now.to_ms()))
            yield from api.sim_wait(duration=SimTime.ms(1))

        low = api.create_thread("low", low_body, priority=20)
        high = api.create_thread("high", high_body, priority=5)
        api.start_thread(low)

        def starter():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(1))
            api.start_thread(high)

        sim.register_thread("starter", starter)
        sim.run(SimTime.ms(30))
        data = dict(trace)
        # The service call completes before the high-priority task runs.
        assert data["high-start"] >= data["service-done"]

    def test_unbalanced_dispatch_enable_raises(self):
        sim, api = make_api()
        with pytest.raises(SimApiError):
            api.dispatch_enable()


class TestRoundRobin:
    def test_rotation_shares_cpu(self):
        sim, api = make_api(scheduler=RoundRobinScheduler())
        finish = {}

        def make_body(name):
            def body():
                yield from api.sim_wait(duration=SimTime.ms(4))
                finish[name] = sim.now.to_ms()
            return body

        tasks = [api.create_thread(f"t{i}", make_body(f"t{i}"), priority=10) for i in range(2)]
        for task in tasks:
            api.start_thread(task)

        # Rotate the time slice every 2 ms, as a round-robin kernel tick would.
        def rotator():
            from repro.sysc.process import Wait
            while True:
                yield Wait(SimTime.ms(2))
                api.preempt_current()

        sim.register_thread("rotator", rotator)
        sim.run(SimTime.ms(30))
        # Both tasks complete, interleaved: the second finishes ~2ms after the first.
        assert set(finish) == {"t0", "t1"}
        assert abs(finish["t1"] - finish["t0"]) <= 2.5
        assert api.preemption_count >= 2


class TestStatistics:
    def test_energy_statistics_lists_every_thread(self):
        sim, api = make_api()

        def body():
            yield from api.sim_wait(duration=SimTime.ms(2), energy_nj=2000.0)

        for name in ("a", "b"):
            api.start_thread(api.create_thread(name, body, priority=10))
        sim.run(SimTime.ms(20))
        stats = api.energy_statistics()
        assert set(stats) == {"a", "b"}
        for entry in stats.values():
            assert entry["cet_ms"] == pytest.approx(2.0)
            assert entry["cee_mj"] == pytest.approx(2e-3)

    def test_total_energy_includes_idle(self):
        sim, api = make_api()

        def body():
            yield from api.sim_wait(duration=SimTime.ms(1), energy_nj=1000.0)

        api.start_thread(api.create_thread("a", body, priority=10))
        sim.run(SimTime.ms(100))
        with_idle = api.total_consumed_energy_mj(include_idle=True)
        without_idle = api.total_consumed_energy_mj(include_idle=False)
        assert without_idle == pytest.approx(1e-3)
        assert with_idle > without_idle

    def test_hashtb_journal_records_state_changes(self):
        sim, api = make_api()

        def body():
            yield from api.sim_wait(duration=SimTime.ms(1))

        task = api.create_thread("a", body, priority=10)
        api.start_thread(task)
        sim.run(SimTime.ms(10))
        states = [change.new_state for change in api.hashtb.state_changes_of(task.tid)]
        assert ThreadState.RUNNING in states
        assert states[-1] is ThreadState.DORMANT
