"""Determinism invariants of the ready-pool schedulers and the DES kernel.

These tests pin the *observable scheduling contract* that every kernel model
(RTK-Spec I/II, RTK-Spec TRON) relies on:

* same-priority threads are served FIFO in `add_ready` order,
* `add_ready_first` re-inserts a preempted thread at the *head* of its own
  priority level and nowhere else,
* `remove` takes a thread out without disturbing the relative order of the
  others,
* events scheduled for the same simulated instant fire in scheduling order
  (the same-timestamp batch-pop of the kernel).

They were written against the original sorted-dict scheduler and the original
heapq timed queue, so the bitmap scheduler and the bucketed timed queue are
provably drop-in: the exact same assertions must keep passing.
"""

import pytest

from repro.core.scheduler import PriorityScheduler, RoundRobinScheduler
from repro.sysc import SimTime, Simulator, Wait, WaitEvent


class FakeThread:
    """The scheduler only needs `.priority`, identity and hashability."""

    def __init__(self, name, priority):
        self.name = name
        self.priority = priority

    def __repr__(self):
        return f"FakeThread({self.name!r}, prio={self.priority})"


def names(threads):
    return [thread.name for thread in threads]


class TestPrioritySchedulerInvariants:
    def test_same_priority_fifo_fairness(self):
        scheduler = PriorityScheduler()
        a, b, c = (FakeThread(n, 10) for n in "abc")
        scheduler.add_ready(a)
        scheduler.add_ready(b)
        scheduler.add_ready(c)
        assert names(scheduler.ready_threads()) == ["a", "b", "c"]
        assert scheduler.pop_next() is a
        assert scheduler.pop_next() is b
        assert scheduler.pop_next() is c
        assert scheduler.pop_next() is None

    def test_interleaved_levels_keep_per_level_fifo(self):
        scheduler = PriorityScheduler()
        order = [
            FakeThread("hi1", 5), FakeThread("lo1", 20), FakeThread("hi2", 5),
            FakeThread("mid1", 10), FakeThread("lo2", 20), FakeThread("hi3", 5),
        ]
        for thread in order:
            scheduler.add_ready(thread)
        assert names(scheduler.ready_threads()) == [
            "hi1", "hi2", "hi3", "mid1", "lo1", "lo2",
        ]
        popped = [scheduler.pop_next().name for _ in range(6)]
        assert popped == ["hi1", "hi2", "hi3", "mid1", "lo1", "lo2"]

    def test_add_ready_first_inserts_at_level_head(self):
        scheduler = PriorityScheduler()
        first = FakeThread("first", 10)
        second = FakeThread("second", 10)
        other = FakeThread("other", 5)
        scheduler.add_ready(first)
        scheduler.add_ready(other)
        # A preempted task keeps the head position of *its own* level.
        scheduler.add_ready_first(second)
        assert names(scheduler.ready_threads()) == ["other", "second", "first"]
        assert scheduler.select_next() is other

    def test_add_ready_is_idempotent(self):
        scheduler = PriorityScheduler()
        thread = FakeThread("once", 10)
        scheduler.add_ready(thread)
        scheduler.add_ready(thread)
        scheduler.add_ready_first(thread)
        assert names(scheduler.ready_threads()) == ["once"]
        assert len(scheduler) == 1

    def test_remove_preserves_relative_order(self):
        scheduler = PriorityScheduler()
        threads = [FakeThread(n, 10) for n in ("a", "b", "c", "d")]
        for thread in threads:
            scheduler.add_ready(thread)
        scheduler.remove(threads[1])
        assert names(scheduler.ready_threads()) == ["a", "c", "d"]
        # Removing an absent thread is a silent no-op.
        scheduler.remove(threads[1])
        assert names(scheduler.ready_threads()) == ["a", "c", "d"]

    def test_select_next_does_not_remove(self):
        scheduler = PriorityScheduler()
        thread = FakeThread("only", 3)
        scheduler.add_ready(thread)
        assert scheduler.select_next() is thread
        assert scheduler.select_next() is thread
        assert len(scheduler) == 1

    def test_lower_number_wins(self):
        scheduler = PriorityScheduler()
        urgent = FakeThread("urgent", 1)
        relaxed = FakeThread("relaxed", 200)
        scheduler.add_ready(relaxed)
        scheduler.add_ready(urgent)
        assert scheduler.pop_next() is urgent
        assert scheduler.pop_next() is relaxed

    def test_membership_and_len(self):
        scheduler = PriorityScheduler()
        inside = FakeThread("inside", 8)
        outside = FakeThread("outside", 8)
        scheduler.add_ready(inside)
        assert inside in scheduler
        assert outside not in scheduler
        assert len(scheduler) == 1

    def test_priority_range_enforced(self):
        scheduler = PriorityScheduler(priority_levels=16)
        with pytest.raises(ValueError):
            scheduler.add_ready(FakeThread("too-high", 16))
        with pytest.raises(ValueError):
            scheduler.add_ready(FakeThread("negative", -1))

    def test_requeue_for_priority_change_moves_to_tail(self):
        scheduler = PriorityScheduler()
        mover = FakeThread("mover", 20)
        sitter = FakeThread("sitter", 10)
        scheduler.add_ready(sitter)
        scheduler.add_ready(mover)
        scheduler.requeue_for_priority_change(mover, 10)
        assert mover.priority == 10
        assert names(scheduler.ready_threads()) == ["sitter", "mover"]

    def test_should_preempt_only_on_strictly_higher_urgency(self):
        scheduler = PriorityScheduler()
        running = FakeThread("running", 10)
        assert scheduler.should_preempt(None, FakeThread("any", 128))
        assert scheduler.should_preempt(running, FakeThread("hi", 5))
        assert not scheduler.should_preempt(running, FakeThread("peer", 10))
        assert not scheduler.should_preempt(running, FakeThread("lo", 30))


class TestRoundRobinInvariants:
    def test_fifo_order_and_rotation(self):
        scheduler = RoundRobinScheduler()
        a, b, c = (FakeThread(n, 0) for n in "abc")
        for thread in (a, b, c):
            scheduler.add_ready(thread)
        assert scheduler.pop_next() is a
        scheduler.add_ready(a)  # the rotated time slice re-appends at the tail
        assert names(scheduler.ready_threads()) == ["b", "c", "a"]

    def test_add_ready_is_idempotent(self):
        scheduler = RoundRobinScheduler()
        thread = FakeThread("once", 0)
        scheduler.add_ready(thread)
        scheduler.add_ready(thread)
        assert names(scheduler.ready_threads()) == ["once"]

    def test_remove_then_readd_goes_to_tail(self):
        scheduler = RoundRobinScheduler()
        a, b = FakeThread("a", 0), FakeThread("b", 0)
        scheduler.add_ready(a)
        scheduler.add_ready(b)
        scheduler.remove(a)
        scheduler.add_ready(a)
        assert names(scheduler.ready_threads()) == ["b", "a"]

    def test_never_preempts_on_readiness(self):
        scheduler = RoundRobinScheduler()
        running = FakeThread("running", 0)
        assert not scheduler.should_preempt(running, FakeThread("new", 0))
        assert scheduler.should_preempt(None, FakeThread("new", 0))


class TestKernelSameTimestampOrder:
    """The kernel's same-instant batch pop is FIFO in scheduling order."""

    def test_callbacks_at_same_instant_fire_in_scheduling_order(self):
        with Simulator("order") as sim:
            log = []
            for index in range(5):
                sim.schedule_callback(
                    SimTime.us(10), (lambda i=index: log.append(i))
                )
            sim.run()
            assert log == [0, 1, 2, 3, 4]
        Simulator.reset()

    def test_same_timestamp_wakes_follow_wait_scheduling_order(self):
        with Simulator("wake-order") as sim:
            log = []

            def body(name, delay_ns):
                def run():
                    yield Wait(SimTime(delay_ns))
                    log.append(name)
                return run

            # All three waits mature at t=1000ns; registration order rules.
            sim.register_thread("first", body("first", 1000))
            sim.register_thread("second", body("second", 1000))
            sim.register_thread("third", body("third", 1000))
            sim.run()
            assert log == ["first", "second", "third"]
        Simulator.reset()

    def test_mixed_instants_pop_time_then_fifo(self):
        with Simulator("mixed") as sim:
            log = []
            sim.schedule_callback(SimTime(200), lambda: log.append("late-1"))
            sim.schedule_callback(SimTime(100), lambda: log.append("early-1"))
            sim.schedule_callback(SimTime(200), lambda: log.append("late-2"))
            sim.schedule_callback(SimTime(100), lambda: log.append("early-2"))
            sim.run()
            assert log == ["early-1", "early-2", "late-1", "late-2"]
        Simulator.reset()

    def test_callback_scheduled_during_batch_at_same_instant_runs_in_batch(self):
        with Simulator("nested") as sim:
            log = []

            def outer():
                log.append("outer")
                sim.schedule_callback(SimTime(0), lambda: log.append("inner"))

            sim.schedule_callback(SimTime(50), outer)
            sim.run()
            assert log == ["outer", "inner"]
            assert sim.now == SimTime(50)
        Simulator.reset()

    def test_raising_callback_keeps_remaining_same_instant_entries(self):
        """An entry that raises must not orphan the rest of its batch."""
        with Simulator("raise") as sim:
            log = []

            def boom():
                raise RuntimeError("boom")

            sim.schedule_callback(SimTime(10), lambda: log.append("before"))
            sim.schedule_callback(SimTime(10), boom)
            sim.schedule_callback(SimTime(10), lambda: log.append("after"))
            with pytest.raises(RuntimeError):
                sim.run()
            assert log == ["before"]
            # The unprocessed tail stays queued (as with the old heapq
            # implementation); resuming the run executes it.
            assert sim.pending_activity()
            sim.run()
            assert log == ["before", "after"]
            assert not sim.pending_activity()
        Simulator.reset()

    def test_throw_into_during_batch_does_not_lose_other_wakes(self):
        """A throw_into run by a same-instant callback must not orphan the
        wakes drained after it (the runnable list is filtered in place)."""
        with Simulator("throw-batch") as sim:
            log = []

            class Victim(Exception):
                pass

            def victim_body():
                try:
                    yield Wait(SimTime(1000))
                except Victim:
                    return

            def bystander_body():
                yield Wait(SimTime(100))
                log.append("woke")
                yield Wait(SimTime(100))
                log.append("woke again")

            victim = sim.register_thread("victim", victim_body)
            # Callback first, bystander's wake second in the same t=100 batch.
            sim.schedule_callback(SimTime(100), lambda: sim.throw_into(victim, Victim()))
            sim.register_thread("bystander", bystander_body)
            sim.run()
            assert log == ["woke", "woke again"]
            # The victim's stale t=1000 wake entry still advances time (and
            # is filtered by its wait token), exactly as with the old heapq.
            assert sim.now == SimTime(1000)
        Simulator.reset()

    def test_event_wake_and_timed_wake_order_is_stable(self):
        with Simulator("event-vs-time") as sim:
            event = sim.create_event("go")
            log = []

            def waiter():
                yield WaitEvent(event)
                log.append("event-waiter")

            def timed():
                yield Wait(SimTime(100))
                log.append("timed")

            def notifier():
                yield Wait(SimTime(100))
                log.append("notifier")
                event.notify()

            sim.register_thread("waiter", waiter)
            sim.register_thread("timed", timed)
            sim.register_thread("notifier", notifier)
            sim.run()
            # Timed wakes mature in wait order; the event wake lands in the
            # same evaluation the notifier triggered it in.
            assert log == ["timed", "notifier", "event-waiter"]
        Simulator.reset()
