"""Unit tests for the ETM/EEM models and the Petri-net bookkeeping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.etm import (
    AnnotationTable,
    EnergyModel,
    TimingAnnotation,
    TimingModel,
    default_service_call_annotations,
)
from repro.core.events import ExecutionContext, RunEvent
from repro.core.petri import FiringSequence, PetriToken, Transition
from repro.sysc.time import SimTime


class TestTimingAnnotation:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            TimingAnnotation(-1)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            TimingAnnotation(10, energy_nj=-1.0)

    def test_scaled(self):
        scaled = TimingAnnotation(100, 50.0).scaled(2.0)
        assert scaled.cycles == 200
        assert scaled.energy_nj == 100.0

    def test_scaled_preserves_none_energy(self):
        assert TimingAnnotation(100).scaled(3.0).energy_nj is None


class TestTimingModel:
    def test_default_8051_cycle_is_one_microsecond(self):
        model = TimingModel()
        assert model.cycle_time == SimTime.us(1)
        assert model.time_of(1000) == SimTime.ms(1)

    def test_cycles_roundtrip(self):
        model = TimingModel()
        assert model.cycles_of(SimTime.ms(2)) == 2000

    def test_custom_frequency(self):
        model = TimingModel(clock_hz=24_000_000, clocks_per_cycle=12)
        assert model.time_of(2) == SimTime.us(1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimingModel(clock_hz=0)
        with pytest.raises(ValueError):
            TimingModel(clocks_per_cycle=0)
        with pytest.raises(ValueError):
            TimingModel().time_of(-5)

    @given(st.integers(min_value=0, max_value=10**7))
    def test_time_of_is_monotonic(self, cycles):
        model = TimingModel()
        assert model.time_of(cycles + 1) >= model.time_of(cycles)


class TestEnergyModel:
    def test_explicit_energy_wins(self):
        model = EnergyModel(energy_per_cycle_nj=2.0)
        assert model.energy_of(TimingAnnotation(100, energy_nj=7.0)) == 7.0

    def test_derived_energy_from_cycles(self):
        model = EnergyModel(energy_per_cycle_nj=2.0)
        assert model.energy_of(TimingAnnotation(100)) == 200.0

    def test_idle_energy(self):
        model = EnergyModel(idle_power_mw=2.0)
        # 2 mW for 1 s = 2 mJ = 2e6 nJ
        assert model.idle_energy(SimTime.sec(1)) == pytest.approx(2e6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EnergyModel(energy_per_cycle_nj=-1)


class TestAnnotationTable:
    def test_lookup_returns_default_for_unknown_key(self):
        table = AnnotationTable()
        assert table.lookup("unknown") is table.default

    def test_annotate_and_lookup(self):
        table = AnnotationTable()
        table.annotate("svc:tk_sig_sem", 120, 90.0)
        annotation = table.lookup("svc:tk_sig_sem")
        assert annotation.cycles == 120
        assert annotation.energy_nj == 90.0

    def test_lookup_counts_are_tracked(self):
        table = AnnotationTable()
        table.lookup("a")
        table.lookup("a")
        assert table.lookups["a"] == 2

    def test_merged_with_overrides(self):
        base = AnnotationTable({"x": TimingAnnotation(1)})
        override = AnnotationTable({"x": TimingAnnotation(9), "y": TimingAnnotation(2)})
        merged = base.merged_with(override)
        assert merged.lookup("x").cycles == 9
        assert merged.lookup("y").cycles == 2

    def test_default_service_annotations_cover_core_services(self):
        table = default_service_call_annotations()
        for key in ("svc:tk_cre_tsk", "svc:tk_wai_sem", "svc:tk_slp_tsk", "svc:dispatch"):
            assert key in table


def _transition(name="T1", event=RunEvent.CONTINUE, context=ExecutionContext.TASK):
    return Transition(name, event, context)


class TestFiringSequence:
    def test_characteristic_vector_counts_firings(self):
        token = PetriToken("t")
        for _ in range(3):
            token.fire(_transition("Ta"), SimTime(0))
        token.fire(_transition("Tb"), SimTime(0))
        vector = token.firing_sequence.characteristic_vector
        assert vector == {"Ta": 3, "Tb": 1}

    def test_event_and_context_vectors(self):
        token = PetriToken("t")
        token.fire(_transition("Ta", RunEvent.STARTUP, ExecutionContext.STARTUP), SimTime(0))
        token.fire(_transition("Tb", RunEvent.CONTINUE, ExecutionContext.TASK), SimTime(0))
        token.fire(_transition("Tc", RunEvent.CONTINUE, ExecutionContext.BFM_ACCESS), SimTime(0))
        assert token.firing_sequence.event_vector == {"Es": 1, "Ec": 2}
        assert token.firing_sequence.context_vector == {
            "startup": 1,
            "task": 1,
            "bfm_access": 1,
        }

    def test_execution_time_and_energy_sums(self):
        sequence = FiringSequence()
        token = PetriToken("t")
        r1 = token.fire(_transition(), SimTime.ms(1), SimTime.us(100), 5.0)
        r2 = token.fire(_transition(), SimTime.ms(2), SimTime.us(300), 7.0)
        sequence.append(r1)
        sequence.append(r2)
        assert sequence.execution_time() == SimTime.us(400)
        assert sequence.execution_energy() == pytest.approx(12.0)

    def test_restricted_to_context(self):
        token = PetriToken("t")
        token.fire(_transition("Ta", context=ExecutionContext.TASK), SimTime(0), SimTime.us(1))
        token.fire(_transition("Tb", context=ExecutionContext.HANDLER), SimTime(0), SimTime.us(2))
        handler_only = token.firing_sequence.restricted_to(ExecutionContext.HANDLER)
        assert len(handler_only) == 1
        assert handler_only[0].transition.name == "Tb"

    def test_between_window(self):
        token = PetriToken("t")
        token.fire(_transition("early"), SimTime.ms(1))
        token.fire(_transition("late"), SimTime.ms(10))
        window = token.firing_sequence.between(SimTime.ms(5), SimTime.ms(20))
        assert [r.transition.name for r in window] == ["late"]


class TestPetriToken:
    def test_single_token_moves_through_places(self):
        token = PetriToken("t")
        assert token.marking() == 0
        token.fire(_transition(), SimTime(0))
        token.fire(_transition(), SimTime(0))
        assert token.marking() == 2

    def test_cet_cee_accumulate_over_cycles(self):
        token = PetriToken("t")
        for cycle in range(4):
            token.fire(_transition(), SimTime.ms(cycle), SimTime.us(250), 1000.0)
            token.complete_cycle()
        assert token.consumed_execution_time == SimTime.ms(1)
        assert token.consumed_execution_energy_nj == pytest.approx(4000.0)
        assert token.consumed_execution_energy_mj == pytest.approx(4e-3)
        assert token.cycle_count == 4

    def test_context_breakdown(self):
        token = PetriToken("t")
        token.fire(_transition(context=ExecutionContext.TASK), SimTime(0), SimTime.us(10), 1.0)
        token.fire(_transition(context=ExecutionContext.SERVICE_CALL), SimTime(0), SimTime.us(5), 2.0)
        token.fire(_transition(context=ExecutionContext.TASK), SimTime(0), SimTime.us(10), 3.0)
        cet = token.cet_by_context()
        cee = token.cee_by_context()
        assert cet[ExecutionContext.TASK] == SimTime.us(20)
        assert cet[ExecutionContext.SERVICE_CALL] == SimTime.us(5)
        assert cee[ExecutionContext.TASK] == pytest.approx(4.0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.floats(min_value=0, max_value=10**6, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_cet_equals_sum_of_firings(self, firings):
        token = PetriToken("t")
        for duration_ns, energy in firings:
            token.fire(_transition(), SimTime(0), SimTime(duration_ns), energy)
        assert token.consumed_execution_time.to_ns() == sum(d for d, _ in firings)
        assert token.consumed_execution_energy_nj == pytest.approx(
            sum(e for _, e in firings)
        )
