"""Integration tests for task management on a booted kernel."""

import pytest

from repro.sysc import SimTime
from repro.tkernel import (
    E_CTX,
    E_ID,
    E_NOEXS,
    E_OBJ,
    E_OK,
    E_PAR,
    E_QOVR,
    E_RLWAI,
    E_TMOUT,
    TMO_FEVR,
    TMO_POL,
    TTS_DMT,
    TTS_RDY,
    TTS_RUN,
    TTS_WAI,
)
from tests.tkernel.conftest import run_kernel


class TestBootAndInitialTask:
    def test_kernel_boots_and_runs_user_main(self):
        log = []

        def user_main(kernel):
            log.append(("main", kernel.simulator.now.to_ms()))
            return
            yield  # pragma: no cover

        _, kernel = run_kernel(user_main, duration_ms=20)
        assert kernel.booted
        assert kernel.initial_task_id is not None
        assert log and log[0][0] == "main"

    def test_boot_without_user_main(self):
        _, kernel = run_kernel(None, duration_ms=10)
        assert kernel.booted
        assert kernel.initial_task_id is None

    def test_system_time_advances_with_ticks(self):
        _, kernel = run_kernel(None, duration_ms=50)
        assert 40 <= kernel.time.get_system_time() <= 52
        assert kernel.tick_handler_runs >= 40


class TestTaskLifecycle:
    def test_create_start_and_run_to_completion(self):
        log = []

        def user_main(kernel):
            def worker(stacd, exinf):
                log.append(("worker", stacd, exinf))
                yield from kernel.api.sim_wait(duration=SimTime.ms(2))

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=10, name="worker",
                                                 exinf="extra")
            assert tskid > 0
            ercd = yield from kernel.tk_sta_tsk(tskid, stacd=42)
            assert ercd == E_OK

        _, kernel = run_kernel(user_main, duration_ms=30)
        assert log == [("worker", 42, "extra")]
        worker_tcb = kernel.tasks.get(2)
        assert worker_tcb is not None
        assert worker_tcb.is_dormant()

    def test_start_errors(self):
        results = {}

        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(50))

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=10)
            results["bad_id"] = yield from kernel.tk_sta_tsk(999)
            yield from kernel.tk_sta_tsk(tskid)
            results["double_start"] = yield from kernel.tk_sta_tsk(tskid)

        run_kernel(user_main, duration_ms=20)
        assert results["bad_id"] == E_NOEXS
        assert results["double_start"] == E_OBJ

    def test_invalid_priority_rejected(self):
        results = {}

        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(1))

            results["zero"] = yield from kernel.tk_cre_tsk(worker, itskpri=0)
            results["huge"] = yield from kernel.tk_cre_tsk(worker, itskpri=999)

        run_kernel(user_main, duration_ms=10)
        assert results["zero"] == E_PAR
        assert results["huge"] == E_PAR

    def test_tk_ext_tsk_ends_the_task_early(self):
        log = []

        def user_main(kernel):
            def worker(stacd, exinf):
                log.append("before")
                yield from kernel.tk_ext_tsk()
                log.append("after")  # must never run

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=10)
            yield from kernel.tk_sta_tsk(tskid)

        _, kernel = run_kernel(user_main, duration_ms=20)
        assert log == ["before"]
        assert kernel.tasks.get(2).is_dormant()

    def test_tk_ter_tsk_terminates_a_waiting_task(self):
        results = {}

        def user_main(kernel):
            def sleeper(stacd, exinf):
                yield from kernel.tk_slp_tsk(TMO_FEVR)

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=10, name="victim")
            yield from kernel.tk_sta_tsk(tskid)
            yield from kernel.tk_dly_tsk(5)
            results["terminate"] = yield from kernel.tk_ter_tsk(tskid)
            ref = yield from kernel.tk_ref_tsk(tskid)
            results["state"] = ref["state_name"]
            # A terminated (dormant) task can be started again.
            results["restart"] = yield from kernel.tk_sta_tsk(tskid)

        _, kernel = run_kernel(user_main, duration_ms=50)
        assert results["terminate"] == E_OK
        assert results["state"] == "DMT"
        assert results["restart"] == E_OK

    def test_task_deletion_requires_dormant(self):
        results = {}

        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(30))

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=10)
            yield from kernel.tk_sta_tsk(tskid)
            results["running_delete"] = yield from kernel.tk_del_tsk(tskid)
            yield from kernel.tk_ter_tsk(tskid)
            results["dormant_delete"] = yield from kernel.tk_del_tsk(tskid)
            results["after_delete_ref"] = yield from kernel.tk_ref_tsk(tskid)

        run_kernel(user_main, duration_ms=60)
        assert results["running_delete"] == E_OBJ
        assert results["dormant_delete"] == E_OK
        assert results["after_delete_ref"] == E_NOEXS


class TestSleepWakeupDelay:
    def test_sleep_until_wakeup(self):
        log = []

        def user_main(kernel):
            def sleeper(stacd, exinf):
                ercd = yield from kernel.tk_slp_tsk(TMO_FEVR)
                log.append(("woke", kernel.simulator.now.to_ms(), ercd))

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=5, name="sleeper")
            yield from kernel.tk_sta_tsk(tskid)
            yield from kernel.tk_dly_tsk(10)
            yield from kernel.tk_wup_tsk(tskid)

        run_kernel(user_main, duration_ms=50)
        assert len(log) == 1
        woke_time, ercd = log[0][1], log[0][2]
        assert ercd == E_OK
        assert woke_time >= 10.0

    def test_sleep_timeout_returns_e_tmout(self):
        log = []

        def user_main(kernel):
            def sleeper(stacd, exinf):
                ercd = yield from kernel.tk_slp_tsk(tmout=5)
                log.append((kernel.simulator.now.to_ms(), ercd))

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=5)
            yield from kernel.tk_sta_tsk(tskid)

        run_kernel(user_main, duration_ms=40)
        assert len(log) == 1
        assert log[0][1] == E_TMOUT
        assert log[0][0] >= 5.0

    def test_queued_wakeup_satisfies_next_sleep(self):
        results = {}

        def user_main(kernel):
            def sleeper(stacd, exinf):
                yield from kernel.tk_dly_tsk(10)
                # By now a wakeup request is queued: the sleep returns at once.
                before = kernel.simulator.now.to_ms()
                ercd = yield from kernel.tk_slp_tsk(TMO_FEVR)
                results["latency"] = kernel.simulator.now.to_ms() - before
                results["ercd"] = ercd

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=5)
            yield from kernel.tk_sta_tsk(tskid)
            yield from kernel.tk_wup_tsk(tskid)  # task is delaying, not sleeping
            results["wupcnt"] = (yield from kernel.tk_ref_tsk(tskid))["wupcnt"]

        run_kernel(user_main, duration_ms=60)
        assert results["wupcnt"] == 1
        assert results["ercd"] == E_OK
        assert results["latency"] < 2.0

    def test_wakeup_queue_overflow(self):
        results = {}

        def user_main(kernel):
            def sleeper(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(80))

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=50)
            yield from kernel.tk_sta_tsk(tskid)
            last = E_OK
            for _ in range(10):
                last = yield from kernel.tk_wup_tsk(tskid)
            results["last"] = last
            results["cancelled"] = yield from kernel.tk_can_wup(tskid)

        run_kernel(user_main, duration_ms=30)
        assert results["last"] == E_QOVR
        assert results["cancelled"] > 0

    def test_tk_dly_tsk_duration(self):
        log = []

        def user_main(kernel):
            start = kernel.simulator.now.to_ms()
            ercd = yield from kernel.tk_dly_tsk(15)
            log.append((kernel.simulator.now.to_ms() - start, ercd))

        run_kernel(user_main, duration_ms=60)
        elapsed, ercd = log[0]
        assert ercd == E_OK
        assert 14.0 <= elapsed <= 17.0

    def test_tk_rel_wai_releases_with_e_rlwai(self):
        log = []

        def user_main(kernel):
            def sleeper(stacd, exinf):
                ercd = yield from kernel.tk_slp_tsk(TMO_FEVR)
                log.append(ercd)

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=5)
            yield from kernel.tk_sta_tsk(tskid)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_rel_wai(tskid)

        run_kernel(user_main, duration_ms=40)
        assert log == [E_RLWAI]


class TestPriorityAndPreemption:
    def test_higher_priority_task_preempts_lower(self):
        order = []

        def user_main(kernel):
            def low(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(10))
                order.append(("low-done", kernel.simulator.now.to_ms()))

            def high(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(2))
                order.append(("high-done", kernel.simulator.now.to_ms()))

            low_id = yield from kernel.tk_cre_tsk(low, itskpri=20, name="low")
            high_id = yield from kernel.tk_cre_tsk(high, itskpri=5, name="high")
            yield from kernel.tk_sta_tsk(low_id)
            yield from kernel.tk_dly_tsk(3)
            yield from kernel.tk_sta_tsk(high_id)

        _, kernel = run_kernel(user_main, duration_ms=60)
        assert [name for name, _ in order] == ["high-done", "low-done"]
        low_tcb = kernel.tasks.get(2)
        assert low_tcb.thread.preemption_count >= 1

    def test_tk_chg_pri_enables_preemption(self):
        order = []

        def user_main(kernel):
            def spinner(name):
                def body(stacd, exinf):
                    yield from kernel.api.sim_wait(duration=SimTime.ms(8))
                    order.append((name, kernel.simulator.now.to_ms()))
                return body

            a = yield from kernel.tk_cre_tsk(spinner("a"), itskpri=20, name="a")
            b = yield from kernel.tk_cre_tsk(spinner("b"), itskpri=30, name="b")
            yield from kernel.tk_sta_tsk(a)
            yield from kernel.tk_sta_tsk(b)
            yield from kernel.tk_dly_tsk(2)
            # Raise b above a: b should finish first even though a started first.
            ercd = yield from kernel.tk_chg_pri(b, 10)
            assert ercd == E_OK

        run_kernel(user_main, duration_ms=60)
        assert [name for name, _ in order] == ["b", "a"]

    def test_tk_chg_pri_invalid_arguments(self):
        results = {}

        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(5))

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=10)
            results["bad_pri"] = yield from kernel.tk_chg_pri(tskid, 9999)
            results["dormant"] = yield from kernel.tk_chg_pri(tskid, 5)

        run_kernel(user_main, duration_ms=20)
        assert results["bad_pri"] == E_PAR
        assert results["dormant"] == E_OBJ

    def test_tk_get_tid_returns_caller(self):
        results = {}

        def user_main(kernel):
            results["init"] = yield from kernel.tk_get_tid()

            def worker(stacd, exinf):
                results["worker"] = yield from kernel.tk_get_tid()
                return
                yield  # pragma: no cover

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=10)
            results["created"] = tskid
            yield from kernel.tk_sta_tsk(tskid)

        _, kernel = run_kernel(user_main, duration_ms=20)
        assert results["init"] == kernel.initial_task_id
        assert results["worker"] == results["created"]


class TestSuspendResume:
    def test_suspend_ready_task_keeps_it_off_cpu(self):
        log = []

        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(2))
                log.append(("worker-done", kernel.simulator.now.to_ms()))

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=50, name="worker")
            yield from kernel.tk_sta_tsk(tskid)
            # The worker is lower priority, so it has not run yet: suspend it.
            ercd = yield from kernel.tk_sus_tsk(tskid)
            log.append(("suspend", ercd))
            yield from kernel.tk_dly_tsk(10)
            log.append(("before-resume", kernel.simulator.now.to_ms()))
            yield from kernel.tk_rsm_tsk(tskid)

        run_kernel(user_main, duration_ms=60)
        data = dict((k, v) for k, v in log)
        assert data["suspend"] == E_OK
        assert data["worker-done"] > data["before-resume"]

    def test_resume_without_suspend_is_error(self):
        results = {}

        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(5))

            tskid = yield from kernel.tk_cre_tsk(worker, itskpri=30)
            yield from kernel.tk_sta_tsk(tskid)
            results["resume"] = yield from kernel.tk_rsm_tsk(tskid)

        run_kernel(user_main, duration_ms=20)
        assert results["resume"] == E_OBJ


class TestTaskReference:
    def test_ref_reports_waiting_state(self):
        results = {}

        def user_main(kernel):
            def sleeper(stacd, exinf):
                yield from kernel.tk_slp_tsk(TMO_FEVR)

            tskid = yield from kernel.tk_cre_tsk(sleeper, itskpri=5, name="sleeper")
            yield from kernel.tk_sta_tsk(tskid)
            yield from kernel.tk_dly_tsk(5)
            results["ref"] = yield from kernel.tk_ref_tsk(tskid)

        run_kernel(user_main, duration_ms=40)
        ref = results["ref"]
        assert ref["state_name"] == "WAI"
        assert ref["wait_name"] == "SLP"

    def test_ref_unknown_task(self):
        results = {}

        def user_main(kernel):
            results["ref"] = yield from kernel.tk_ref_tsk(777)

        run_kernel(user_main, duration_ms=10)
        assert results["ref"] == E_NOEXS
