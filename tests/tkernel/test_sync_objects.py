"""Integration tests for semaphores, event flags, mutexes, mailboxes,
message buffers and memory pools."""

import pytest

from repro.sysc import SimTime
from repro.tkernel import (
    E_DLT,
    E_ILUSE,
    E_NOEXS,
    E_OBJ,
    E_OK,
    E_PAR,
    E_QOVR,
    E_TMOUT,
    TA_CEILING,
    TA_CLR,
    TA_INHERIT,
    TA_TPRI,
    TA_WMUL,
    TMO_FEVR,
    TMO_POL,
    TWF_ANDW,
    TWF_ORW,
)
from tests.tkernel.conftest import run_kernel


class TestSemaphores:
    def test_create_validation(self):
        results = {}

        def user_main(kernel):
            results["neg"] = yield from kernel.tk_cre_sem(isemcnt=-1)
            results["over"] = yield from kernel.tk_cre_sem(isemcnt=5, maxsem=3)
            results["ok"] = yield from kernel.tk_cre_sem(isemcnt=1, maxsem=3)

        run_kernel(user_main, duration_ms=10)
        assert results["neg"] == E_PAR
        assert results["over"] == E_PAR
        assert results["ok"] > 0

    def test_wait_and_signal_across_tasks(self):
        log = []

        def user_main(kernel):
            semid = yield from kernel.tk_cre_sem(isemcnt=0, maxsem=10)

            def waiter(stacd, exinf):
                ercd = yield from kernel.tk_wai_sem(semid)
                log.append(("acquired", kernel.simulator.now.to_ms(), ercd))

            def signaller(stacd, exinf):
                yield from kernel.tk_dly_tsk(8)
                yield from kernel.tk_sig_sem(semid)

            w = yield from kernel.tk_cre_tsk(waiter, itskpri=5, name="waiter")
            s = yield from kernel.tk_cre_tsk(signaller, itskpri=10, name="signaller")
            yield from kernel.tk_sta_tsk(w)
            yield from kernel.tk_sta_tsk(s)

        run_kernel(user_main, duration_ms=60)
        assert len(log) == 1
        assert log[0][2] == E_OK
        assert log[0][1] >= 8.0

    def test_polling_and_timeout(self):
        results = {}

        def user_main(kernel):
            semid = yield from kernel.tk_cre_sem(isemcnt=0, maxsem=1)
            results["poll"] = yield from kernel.tk_wai_sem(semid, tmout=TMO_POL)
            start = kernel.simulator.now.to_ms()
            results["timeout"] = yield from kernel.tk_wai_sem(semid, tmout=10)
            results["elapsed"] = kernel.simulator.now.to_ms() - start

        run_kernel(user_main, duration_ms=60)
        assert results["poll"] == E_TMOUT
        assert results["timeout"] == E_TMOUT
        assert results["elapsed"] >= 9.0

    def test_signal_overflow(self):
        results = {}

        def user_main(kernel):
            semid = yield from kernel.tk_cre_sem(isemcnt=1, maxsem=1)
            results["overflow"] = yield from kernel.tk_sig_sem(semid)

        run_kernel(user_main, duration_ms=10)
        assert results["overflow"] == E_QOVR

    def test_priority_ordered_waiters(self):
        order = []

        def user_main(kernel):
            semid = yield from kernel.tk_cre_sem(isemcnt=0, maxsem=5, sematr=TA_TPRI)

            def waiter(name):
                def body(stacd, exinf):
                    yield from kernel.tk_wai_sem(semid)
                    order.append(name)
                return body

            low = yield from kernel.tk_cre_tsk(waiter("low"), itskpri=30, name="low")
            high = yield from kernel.tk_cre_tsk(waiter("high"), itskpri=10, name="high")
            # Start the low-priority waiter first so it queues first.
            yield from kernel.tk_sta_tsk(low)
            yield from kernel.tk_dly_tsk(3)
            yield from kernel.tk_sta_tsk(high)
            yield from kernel.tk_dly_tsk(3)
            yield from kernel.tk_sig_sem(semid, 1)
            yield from kernel.tk_dly_tsk(3)
            yield from kernel.tk_sig_sem(semid, 1)

        run_kernel(user_main, duration_ms=80)
        assert order == ["high", "low"]

    def test_delete_releases_waiters_with_e_dlt(self):
        log = []

        def user_main(kernel):
            semid = yield from kernel.tk_cre_sem(isemcnt=0, maxsem=1)

            def waiter(stacd, exinf):
                ercd = yield from kernel.tk_wai_sem(semid)
                log.append(ercd)

            w = yield from kernel.tk_cre_tsk(waiter, itskpri=5)
            yield from kernel.tk_sta_tsk(w)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_del_sem(semid)
            log.append((yield from kernel.tk_ref_sem(semid)))

        run_kernel(user_main, duration_ms=50)
        assert E_DLT in log
        assert E_NOEXS in log

    def test_ref_sem_reports_count_and_waiters(self):
        results = {}

        def user_main(kernel):
            semid = yield from kernel.tk_cre_sem(isemcnt=3, maxsem=5, name="res")
            yield from kernel.tk_wai_sem(semid, cnt=2)
            results["ref"] = yield from kernel.tk_ref_sem(semid)

        run_kernel(user_main, duration_ms=10)
        assert results["ref"]["semcnt"] == 1
        assert results["ref"]["wtsk"] == []


class TestEventFlags:
    def test_or_wait_released_by_any_bit(self):
        log = []

        def user_main(kernel):
            flgid = yield from kernel.tk_cre_flg(iflgptn=0, flgatr=TA_WMUL)

            def waiter(stacd, exinf):
                pattern = yield from kernel.tk_wai_flg(flgid, 0b101, TWF_ORW)
                log.append(("released", pattern, kernel.simulator.now.to_ms()))

            w = yield from kernel.tk_cre_tsk(waiter, itskpri=5)
            yield from kernel.tk_sta_tsk(w)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_set_flg(flgid, 0b100)

        run_kernel(user_main, duration_ms=40)
        assert len(log) == 1
        assert log[0][1] & 0b100

    def test_and_wait_needs_all_bits(self):
        log = []

        def user_main(kernel):
            flgid = yield from kernel.tk_cre_flg(iflgptn=0, flgatr=TA_WMUL)

            def waiter(stacd, exinf):
                pattern = yield from kernel.tk_wai_flg(flgid, 0b11, TWF_ANDW)
                log.append((kernel.simulator.now.to_ms(), pattern))

            w = yield from kernel.tk_cre_tsk(waiter, itskpri=5)
            yield from kernel.tk_sta_tsk(w)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_set_flg(flgid, 0b01)   # not yet
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_set_flg(flgid, 0b10)   # now complete

        run_kernel(user_main, duration_ms=60)
        assert len(log) == 1
        assert log[0][0] >= 10.0
        assert log[0][1] == 0b11

    def test_clear_attribute_resets_pattern(self):
        results = {}

        def user_main(kernel):
            flgid = yield from kernel.tk_cre_flg(iflgptn=0b1, flgatr=TA_WMUL)
            # Condition already true: released immediately, pattern cleared.
            pattern = yield from kernel.tk_wai_flg(flgid, 0b1, TWF_ORW | 0x10)
            results["returned"] = pattern
            results["ref"] = yield from kernel.tk_ref_flg(flgid)

        run_kernel(user_main, duration_ms=10)
        assert results["returned"] == 0b1
        assert results["ref"]["flgptn"] == 0

    def test_single_wait_attribute_rejects_second_waiter(self):
        results = {}

        def user_main(kernel):
            flgid = yield from kernel.tk_cre_flg(iflgptn=0)  # TA_WSGL default

            def first(stacd, exinf):
                yield from kernel.tk_wai_flg(flgid, 0b1, TWF_ORW)

            t = yield from kernel.tk_cre_tsk(first, itskpri=5)
            yield from kernel.tk_sta_tsk(t)
            yield from kernel.tk_dly_tsk(5)
            results["second"] = yield from kernel.tk_wai_flg(flgid, 0b1, TWF_ORW,
                                                             tmout=TMO_POL)

        run_kernel(user_main, duration_ms=40)
        assert results["second"] == E_OBJ

    def test_clr_flg_clears_bits(self):
        results = {}

        def user_main(kernel):
            flgid = yield from kernel.tk_cre_flg(iflgptn=0b1111)
            yield from kernel.tk_clr_flg(flgid, 0b1100)
            results["ref"] = yield from kernel.tk_ref_flg(flgid)

        run_kernel(user_main, duration_ms=10)
        assert results["ref"]["flgptn"] == 0b1100


class TestMutexes:
    def test_lock_unlock_and_contention(self):
        log = []

        def user_main(kernel):
            mtxid = yield from kernel.tk_cre_mtx(name="lock")

            def holder(stacd, exinf):
                yield from kernel.tk_loc_mtx(mtxid)
                log.append(("holder-locked", kernel.simulator.now.to_ms()))
                yield from kernel.api.sim_wait(duration=SimTime.ms(10))
                yield from kernel.tk_unl_mtx(mtxid)

            def contender(stacd, exinf):
                yield from kernel.tk_dly_tsk(2)
                ercd = yield from kernel.tk_loc_mtx(mtxid)
                log.append(("contender-locked", kernel.simulator.now.to_ms(), ercd))
                yield from kernel.tk_unl_mtx(mtxid)

            h = yield from kernel.tk_cre_tsk(holder, itskpri=10, name="holder")
            c = yield from kernel.tk_cre_tsk(contender, itskpri=12, name="contender")
            yield from kernel.tk_sta_tsk(h)
            yield from kernel.tk_sta_tsk(c)

        run_kernel(user_main, duration_ms=80)
        data = {entry[0]: entry for entry in log}
        assert data["contender-locked"][1] >= data["holder-locked"][1] + 10.0

    def test_unlock_by_non_owner_is_illegal(self):
        results = {}

        def user_main(kernel):
            mtxid = yield from kernel.tk_cre_mtx()

            def other(stacd, exinf):
                results["unlock"] = yield from kernel.tk_unl_mtx(mtxid)
                return
                yield  # pragma: no cover

            yield from kernel.tk_loc_mtx(mtxid)
            t = yield from kernel.tk_cre_tsk(other, itskpri=2, name="other")
            yield from kernel.tk_sta_tsk(t)
            yield from kernel.tk_dly_tsk(5)

        run_kernel(user_main, duration_ms=30)
        assert results["unlock"] == E_ILUSE

    def test_recursive_lock_rejected(self):
        results = {}

        def user_main(kernel):
            mtxid = yield from kernel.tk_cre_mtx()
            yield from kernel.tk_loc_mtx(mtxid)
            results["again"] = yield from kernel.tk_loc_mtx(mtxid)

        run_kernel(user_main, duration_ms=10)
        assert results["again"] == E_ILUSE

    def test_priority_inheritance_boosts_owner(self):
        observations = {}

        def user_main(kernel):
            mtxid = yield from kernel.tk_cre_mtx(mtxatr=TA_INHERIT)

            def low(stacd, exinf):
                yield from kernel.tk_loc_mtx(mtxid)
                yield from kernel.api.sim_wait(duration=SimTime.ms(6))
                # While holding the mutex with a high-priority waiter queued,
                # this task's current priority must have been boosted.
                ref = yield from kernel.tk_ref_tsk(0)
                observations["boosted_pri"] = ref["tskpri"]
                yield from kernel.tk_unl_mtx(mtxid)
                ref = yield from kernel.tk_ref_tsk(0)
                observations["restored_pri"] = ref["tskpri"]

            def high(stacd, exinf):
                yield from kernel.tk_dly_tsk(2)
                yield from kernel.tk_loc_mtx(mtxid)
                yield from kernel.tk_unl_mtx(mtxid)

            low_id = yield from kernel.tk_cre_tsk(low, itskpri=40, name="low")
            high_id = yield from kernel.tk_cre_tsk(high, itskpri=8, name="high")
            yield from kernel.tk_sta_tsk(low_id)
            yield from kernel.tk_sta_tsk(high_id)

        run_kernel(user_main, duration_ms=80)
        assert observations["boosted_pri"] == 8
        assert observations["restored_pri"] == 40

    def test_ceiling_protocol_raises_owner_on_lock(self):
        observations = {}

        def user_main(kernel):
            mtxid = yield from kernel.tk_cre_mtx(mtxatr=TA_CEILING, ceilpri=3)

            def worker(stacd, exinf):
                yield from kernel.tk_loc_mtx(mtxid)
                ref = yield from kernel.tk_ref_tsk(0)
                observations["locked_pri"] = ref["tskpri"]
                yield from kernel.tk_unl_mtx(mtxid)
                ref = yield from kernel.tk_ref_tsk(0)
                observations["after_pri"] = ref["tskpri"]

            w = yield from kernel.tk_cre_tsk(worker, itskpri=50, name="worker")
            yield from kernel.tk_sta_tsk(w)

        run_kernel(user_main, duration_ms=40)
        assert observations["locked_pri"] == 3
        assert observations["after_pri"] == 50

    def test_mutex_released_on_task_exit(self):
        results = {}

        def user_main(kernel):
            mtxid = yield from kernel.tk_cre_mtx()

            def holder(stacd, exinf):
                yield from kernel.tk_loc_mtx(mtxid)
                # Exits while still holding the mutex.
                return
                yield  # pragma: no cover

            h = yield from kernel.tk_cre_tsk(holder, itskpri=5, name="holder")
            yield from kernel.tk_sta_tsk(h)
            yield from kernel.tk_dly_tsk(5)
            results["ref"] = yield from kernel.tk_ref_mtx(mtxid)

        run_kernel(user_main, duration_ms=40)
        assert results["ref"]["htsk"] == 0


class TestMailboxes:
    def test_send_then_receive(self):
        results = {}

        def user_main(kernel):
            mbxid = yield from kernel.tk_cre_mbx(name="queue")
            yield from kernel.tk_snd_mbx(mbxid, {"frame": 1})
            ercd, payload = yield from kernel.tk_rcv_mbx(mbxid)
            results["ercd"] = ercd
            results["payload"] = payload

        run_kernel(user_main, duration_ms=10)
        assert results["ercd"] == E_OK
        assert results["payload"] == {"frame": 1}

    def test_receive_blocks_until_send(self):
        log = []

        def user_main(kernel):
            mbxid = yield from kernel.tk_cre_mbx()

            def receiver(stacd, exinf):
                ercd, payload = yield from kernel.tk_rcv_mbx(mbxid)
                log.append((kernel.simulator.now.to_ms(), ercd, payload))

            r = yield from kernel.tk_cre_tsk(receiver, itskpri=5)
            yield from kernel.tk_sta_tsk(r)
            yield from kernel.tk_dly_tsk(7)
            yield from kernel.tk_snd_mbx(mbxid, "hello")

        run_kernel(user_main, duration_ms=40)
        assert len(log) == 1
        assert log[0][1] == E_OK and log[0][2] == "hello"
        assert log[0][0] >= 7.0

    def test_message_priority_ordering(self):
        results = {}

        def user_main(kernel):
            from repro.tkernel.types import TA_MPRI
            mbxid = yield from kernel.tk_cre_mbx(mbxatr=TA_MPRI)
            yield from kernel.tk_snd_mbx(mbxid, "low", msgpri=9)
            yield from kernel.tk_snd_mbx(mbxid, "high", msgpri=1)
            _, first = yield from kernel.tk_rcv_mbx(mbxid)
            _, second = yield from kernel.tk_rcv_mbx(mbxid)
            results["order"] = [first, second]

        run_kernel(user_main, duration_ms=10)
        assert results["order"] == ["high", "low"]

    def test_receive_timeout(self):
        results = {}

        def user_main(kernel):
            mbxid = yield from kernel.tk_cre_mbx()
            ercd, payload = yield from kernel.tk_rcv_mbx(mbxid, tmout=5)
            results["ercd"] = ercd
            results["payload"] = payload

        run_kernel(user_main, duration_ms=30)
        assert results["ercd"] == E_TMOUT
        assert results["payload"] is None


class TestMessageBuffers:
    def test_bounded_buffer_blocks_sender_when_full(self):
        log = []

        def user_main(kernel):
            mbfid = yield from kernel.tk_cre_mbf(bufsz=8, maxmsz=8)

            def sender(stacd, exinf):
                yield from kernel.tk_snd_mbf(mbfid, "first", size=8)
                log.append(("sent-first", kernel.simulator.now.to_ms()))
                yield from kernel.tk_snd_mbf(mbfid, "second", size=8)
                log.append(("sent-second", kernel.simulator.now.to_ms()))

            s = yield from kernel.tk_cre_tsk(sender, itskpri=5, name="sender")
            yield from kernel.tk_sta_tsk(s)
            yield from kernel.tk_dly_tsk(10)
            ercd, payload, size = yield from kernel.tk_rcv_mbf(mbfid)
            log.append(("received", payload, size, ercd))

        run_kernel(user_main, duration_ms=60)
        data = {entry[0]: entry for entry in log}
        assert "sent-first" in data
        # The second send had to wait for the receive to free space.
        assert data["sent-second"][1] >= 10.0
        assert data["received"][1] == "first"

    def test_direct_handoff_to_waiting_receiver(self):
        log = []

        def user_main(kernel):
            mbfid = yield from kernel.tk_cre_mbf(bufsz=64, maxmsz=16)

            def receiver(stacd, exinf):
                ercd, payload, size = yield from kernel.tk_rcv_mbf(mbfid)
                log.append((ercd, payload, size))

            r = yield from kernel.tk_cre_tsk(receiver, itskpri=5)
            yield from kernel.tk_sta_tsk(r)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_snd_mbf(mbfid, [1, 2, 3], size=3)

        run_kernel(user_main, duration_ms=40)
        assert log == [(E_OK, [1, 2, 3], 3)]

    def test_oversized_message_rejected(self):
        results = {}

        def user_main(kernel):
            mbfid = yield from kernel.tk_cre_mbf(bufsz=32, maxmsz=4)
            results["too_big"] = yield from kernel.tk_snd_mbf(mbfid, "x", size=10)

        run_kernel(user_main, duration_ms=10)
        assert results["too_big"] == E_PAR


class TestMemoryPools:
    def test_fixed_pool_allocation_and_exhaustion(self):
        results = {}

        def user_main(kernel):
            mpfid = yield from kernel.tk_cre_mpf(mpfcnt=2, blfsz=64)
            ercd1, block1 = yield from kernel.tk_get_mpf(mpfid)
            ercd2, block2 = yield from kernel.tk_get_mpf(mpfid)
            results["polled_empty"] = (yield from kernel.tk_get_mpf(mpfid, tmout=TMO_POL))[0]
            results["ref_before"] = yield from kernel.tk_ref_mpf(mpfid)
            yield from kernel.tk_rel_mpf(mpfid, block1)
            results["ref_after"] = yield from kernel.tk_ref_mpf(mpfid)
            results["sizes"] = (block1.size, block2.size)
            results["codes"] = (ercd1, ercd2)

        run_kernel(user_main, duration_ms=10)
        assert results["codes"] == (E_OK, E_OK)
        assert results["sizes"] == (64, 64)
        assert results["polled_empty"] == E_TMOUT
        assert results["ref_before"]["frbcnt"] == 0
        assert results["ref_after"]["frbcnt"] == 1

    def test_blocked_get_released_by_release(self):
        log = []

        def user_main(kernel):
            mpfid = yield from kernel.tk_cre_mpf(mpfcnt=1, blfsz=16)
            ercd, held = yield from kernel.tk_get_mpf(mpfid)

            def needy(stacd, exinf):
                ercd, block = yield from kernel.tk_get_mpf(mpfid)
                log.append((kernel.simulator.now.to_ms(), ercd, block is not None))

            t = yield from kernel.tk_cre_tsk(needy, itskpri=5)
            yield from kernel.tk_sta_tsk(t)
            yield from kernel.tk_dly_tsk(6)
            yield from kernel.tk_rel_mpf(mpfid, held)

        run_kernel(user_main, duration_ms=40)
        assert len(log) == 1
        assert log[0][1] == E_OK and log[0][2]
        assert log[0][0] >= 6.0

    def test_variable_pool_accounting(self):
        results = {}

        def user_main(kernel):
            mplid = yield from kernel.tk_cre_mpl(mplsz=100)
            ercd, block = yield from kernel.tk_get_mpl(mplid, 60)
            results["first"] = ercd
            results["too_big"] = (yield from kernel.tk_get_mpl(mplid, 60, tmout=TMO_POL))[0]
            results["ref"] = yield from kernel.tk_ref_mpl(mplid)
            yield from kernel.tk_rel_mpl(mplid, block)
            results["ref_after"] = yield from kernel.tk_ref_mpl(mplid)

        run_kernel(user_main, duration_ms=10)
        assert results["first"] == E_OK
        assert results["too_big"] == E_TMOUT
        assert results["ref"]["frsz"] == 40
        assert results["ref_after"]["frsz"] == 100

    def test_invalid_parameters(self):
        results = {}

        def user_main(kernel):
            results["bad_mpf"] = yield from kernel.tk_cre_mpf(mpfcnt=0, blfsz=8)
            results["bad_mpl"] = yield from kernel.tk_cre_mpl(mplsz=0)
            mplid = yield from kernel.tk_cre_mpl(mplsz=10)
            results["bad_size"] = (yield from kernel.tk_get_mpl(mplid, 0))[0]

        run_kernel(user_main, duration_ms=10)
        assert results["bad_mpf"] == E_PAR
        assert results["bad_mpl"] == E_PAR
        assert results["bad_size"] == E_PAR
