"""Tests for system time, cyclic/alarm handlers, interrupts and T-Kernel/DS."""

import pytest

from repro.core.events import ExecutionContext
from repro.sysc import SimTime, Simulator
from repro.tkernel import E_NOEXS, E_OK, E_PAR, TKernelDS, TKernelOS, TA_STA, TMO_FEVR
from tests.tkernel.conftest import run_kernel


class TestSystemTime:
    def test_set_and_get_time(self):
        results = {}

        def user_main(kernel):
            yield from kernel.tk_set_tim(1_000_000)
            yield from kernel.tk_dly_tsk(20)
            results["time"] = yield from kernel.tk_get_tim()
            results["otm"] = yield from kernel.tk_get_otm()

        run_kernel(user_main, duration_ms=60)
        assert 1_000_018 <= results["time"] <= 1_000_030
        assert 18 <= results["otm"] <= 30

    def test_negative_time_rejected(self):
        results = {}

        def user_main(kernel):
            results["set"] = yield from kernel.tk_set_tim(-5)

        run_kernel(user_main, duration_ms=10)
        assert results["set"] == E_PAR

    def test_ref_sys_reports_counts(self):
        results = {}

        def user_main(kernel):
            yield from kernel.tk_cre_sem(isemcnt=0, maxsem=1)
            results["ref"] = yield from kernel.tk_ref_sys()

        _, kernel = run_kernel(user_main, duration_ms=20)
        assert results["ref"]["booted"]
        assert results["ref"]["semaphore_count"] == 1
        assert results["ref"]["runtskid"] == kernel.initial_task_id


class TestCyclicHandlers:
    def test_periodic_activation(self):
        activations = []

        def user_main(kernel):
            def handler(exinf):
                activations.append(kernel.simulator.now.to_ms())
                yield from kernel.api.sim_wait(duration=SimTime.us(100),
                                               context=ExecutionContext.HANDLER)

            cycid = yield from kernel.tk_cre_cyc(handler, cyctim=10, name="H1",
                                                 cycatr=TA_STA)
            assert cycid > 0

        _, kernel = run_kernel(user_main, duration_ms=100)
        assert len(activations) >= 8
        gaps = [b - a for a, b in zip(activations, activations[1:])]
        assert all(8.0 <= gap <= 12.5 for gap in gaps)

    def test_start_stop(self):
        activations = []

        def user_main(kernel):
            def handler(exinf):
                activations.append(kernel.simulator.now.to_ms())
                return
                yield  # pragma: no cover

            cycid = yield from kernel.tk_cre_cyc(handler, cyctim=5, name="H1")
            ref = yield from kernel.tk_ref_cyc(cycid)
            assert ref["cycstat"] == 0
            yield from kernel.tk_sta_cyc(cycid)
            yield from kernel.tk_dly_tsk(20)
            yield from kernel.tk_stp_cyc(cycid)
            activations.append(("stopped", kernel.simulator.now.to_ms()))

        run_kernel(user_main, duration_ms=100)
        stop_marker = [a for a in activations if isinstance(a, tuple)][0]
        after_stop = [a for a in activations if not isinstance(a, tuple) and a > stop_marker[1] + 5]
        assert after_stop == []

    def test_handler_preempts_running_task(self):
        trace = []

        def user_main(kernel):
            def handler(exinf):
                trace.append(("handler", kernel.simulator.now.to_ms()))
                yield from kernel.api.sim_wait(duration=SimTime.ms(1),
                                               context=ExecutionContext.HANDLER)

            def busy(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(30))
                trace.append(("busy-done", kernel.simulator.now.to_ms()))

            yield from kernel.tk_cre_cyc(handler, cyctim=10, name="H1", cycatr=TA_STA)
            t = yield from kernel.tk_cre_tsk(busy, itskpri=20, name="busy")
            yield from kernel.tk_sta_tsk(t)

        _, kernel = run_kernel(user_main, duration_ms=80)
        handler_times = [t for name, t in trace if name == "handler"]
        busy_done = [t for name, t in trace if name == "busy-done"]
        # The handler ran several times while the busy task was executing,
        # and the busy task's completion was pushed out by the handler time.
        assert len(handler_times) >= 3
        assert busy_done and busy_done[0] >= 32.0
        assert kernel.api.stack.max_observed_depth >= 1

    def test_invalid_period_rejected(self):
        results = {}

        def user_main(kernel):
            def handler(exinf):
                return
                yield  # pragma: no cover

            results["bad"] = yield from kernel.tk_cre_cyc(handler, cyctim=0)

        run_kernel(user_main, duration_ms=10)
        assert results["bad"] == E_PAR


class TestAlarmHandlers:
    def test_one_shot_activation(self):
        activations = []

        def user_main(kernel):
            def handler(exinf):
                activations.append(kernel.simulator.now.to_ms())
                return
                yield  # pragma: no cover

            almid = yield from kernel.tk_cre_alm(handler, name="H2")
            yield from kernel.tk_sta_alm(almid, 15)

        run_kernel(user_main, duration_ms=80)
        assert len(activations) == 1
        assert 15.0 <= activations[0] <= 18.0

    def test_stop_disarms(self):
        activations = []

        def user_main(kernel):
            def handler(exinf):
                activations.append(kernel.simulator.now.to_ms())
                return
                yield  # pragma: no cover

            almid = yield from kernel.tk_cre_alm(handler)
            yield from kernel.tk_sta_alm(almid, 20)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_stp_alm(almid)

        run_kernel(user_main, duration_ms=60)
        assert activations == []

    def test_rearming_restarts_the_countdown(self):
        activations = []

        def user_main(kernel):
            def handler(exinf):
                activations.append(kernel.simulator.now.to_ms())
                return
                yield  # pragma: no cover

            almid = yield from kernel.tk_cre_alm(handler)
            yield from kernel.tk_sta_alm(almid, 10)
            yield from kernel.tk_dly_tsk(5)
            yield from kernel.tk_sta_alm(almid, 20)  # re-arm: fires at ~25 ms

        run_kernel(user_main, duration_ms=80)
        assert len(activations) == 1
        assert activations[0] >= 24.0


class TestInterrupts:
    def test_external_interrupt_runs_isr(self):
        log = []

        def user_main(kernel):
            def isr(exinf):
                log.append(("isr", kernel.simulator.now.to_ms()))
                yield from kernel.api.sim_wait(duration=SimTime.us(300),
                                               context=ExecutionContext.HANDLER)

            def busy(stacd, exinf):
                yield from kernel.api.sim_wait(duration=SimTime.ms(20))
                log.append(("busy-done", kernel.simulator.now.to_ms()))

            yield from kernel.tk_def_int(3, isr, name="keypad_isr")
            t = yield from kernel.tk_cre_tsk(busy, itskpri=10)
            yield from kernel.tk_sta_tsk(t)

        simulator = Simulator("irq-test")
        kernel = TKernelOS(simulator, user_main=user_main)

        def externals():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(8))
            kernel.raise_interrupt(3)
            yield Wait(SimTime.ms(5))
            kernel.raise_interrupt(3)

        simulator.register_thread("externals", externals)
        simulator.run(SimTime.ms(60))
        isr_times = [t for name, t in log if name == "isr"]
        assert len(isr_times) == 2
        assert 8.0 <= isr_times[0] <= 10.0
        handler = kernel.interrupts.handler_for(3)
        assert handler.activation_count == 2

    def test_undefined_interrupt_is_spurious(self):
        simulator = Simulator("spurious")
        kernel = TKernelOS(simulator, user_main=None)
        simulator.run(SimTime.ms(5))
        assert kernel.raise_interrupt(42) is False
        assert kernel.interrupts.spurious_count == 1

    def test_disabled_interrupt_is_dropped(self):
        log = []

        def user_main(kernel):
            def isr(exinf):
                log.append("isr")
                return
                yield  # pragma: no cover

            yield from kernel.tk_def_int(1, isr)
            yield from kernel.tk_dis_int(1)

        simulator = Simulator("disint")
        kernel = TKernelOS(simulator, user_main=user_main)

        def externals():
            from repro.sysc.process import Wait
            yield Wait(SimTime.ms(10))
            kernel.raise_interrupt(1)

        simulator.register_thread("externals", externals)
        simulator.run(SimTime.ms(30))
        assert log == []

    def test_undefine_interrupt(self):
        results = {}

        def user_main(kernel):
            def isr(exinf):
                return
                yield  # pragma: no cover

            yield from kernel.tk_def_int(2, isr)
            results["undef"] = yield from kernel.tk_def_int(2, None)
            results["undef_again"] = yield from kernel.tk_def_int(2, None)

        run_kernel(user_main, duration_ms=20)
        assert results["undef"] == E_OK
        assert results["undef_again"] == E_NOEXS


class TestTKernelDS:
    def test_listing_contains_every_object_class(self):
        def user_main(kernel):
            def worker(stacd, exinf):
                yield from kernel.tk_slp_tsk(TMO_FEVR)

            def handler(exinf):
                return
                yield  # pragma: no cover

            yield from kernel.tk_cre_sem(isemcnt=1, maxsem=3, name="sem_a")
            yield from kernel.tk_cre_flg(iflgptn=0b101, name="flags")
            yield from kernel.tk_cre_mtx(name="lock")
            yield from kernel.tk_cre_mbx(name="mail")
            yield from kernel.tk_cre_mbf(bufsz=64, maxmsz=8, name="buffer")
            yield from kernel.tk_cre_mpf(mpfcnt=4, blfsz=32, name="fixed_pool")
            yield from kernel.tk_cre_mpl(mplsz=256, name="var_pool")
            yield from kernel.tk_cre_cyc(handler, cyctim=10, name="cyclic_h")
            yield from kernel.tk_cre_alm(handler, name="alarm_h")
            yield from kernel.tk_def_int(5, handler, name="isr5")
            t = yield from kernel.tk_cre_tsk(worker, itskpri=9, name="worker")
            yield from kernel.tk_sta_tsk(t)

        _, kernel = run_kernel(user_main, duration_ms=40)
        listing = TKernelDS(kernel).render_listing()
        for expected in ("worker", "sem_a", "flags", "lock", "mail", "buffer",
                         "fixed_pool", "var_pool", "cyclic_h", "alarm_h", "isr5",
                         "-- tasks --", "WAI"):
            assert expected in listing

    def test_snapshots_are_consistent_with_state(self):
        def user_main(kernel):
            def sleeper(stacd, exinf):
                yield from kernel.tk_slp_tsk(TMO_FEVR)

            t = yield from kernel.tk_cre_tsk(sleeper, itskpri=7, name="sleeper")
            yield from kernel.tk_sta_tsk(t)

        _, kernel = run_kernel(user_main, duration_ms=30)
        ds = TKernelDS(kernel)
        tasks = {row["name"]: row for row in ds.task_snapshot()}
        assert tasks["sleeper"]["state"] == "WAI"
        assert tasks["sleeper"]["wait"] == "SLP"
        system = ds.system_snapshot()
        assert system["task_count"] == 2
        assert system["booted"]
