"""Shared fixtures and helpers for the T-Kernel tests.

Most tests follow the same pattern: define a ``user_main`` that creates the
scenario, boot a kernel, run the simulator for a bounded time and assert on
the log / kernel state.  :func:`run_kernel` packages that pattern.
"""

import pytest

from repro.sysc import SimTime, Simulator
from repro.tkernel import TKernelOS


@pytest.fixture
def sim():
    return Simulator("tkernel-test")


def run_kernel(user_main, duration_ms=100, charge_service_costs=True, **kernel_kwargs):
    """Boot a kernel running *user_main* and simulate for *duration_ms*."""
    simulator = Simulator("tkernel-test")
    kernel = TKernelOS(
        simulator,
        user_main=user_main,
        charge_service_costs=charge_service_costs,
        **kernel_kwargs,
    )
    simulator.run(SimTime.ms(duration_ms))
    return simulator, kernel
