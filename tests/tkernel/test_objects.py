"""Unit tests for ID pools, wait queues and the object table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tkernel.errors import E_LIMIT, E_NOEXS
from repro.tkernel.objects import IDPool, KernelObject, ObjectTable, WaitEntry, WaitQueue
from repro.tkernel.types import TA_TFIFO, TA_TPRI


class FakeTCB:
    """Minimal stand-in for a TaskControlBlock in queue tests."""

    def __init__(self, tskid, priority):
        self.tskid = tskid
        self.priority = priority
        self.name = f"task{tskid}"


class TestIDPool:
    def test_ids_are_sequential(self):
        pool = IDPool()
        assert [pool.allocate() for _ in range(3)] == [1, 2, 3]

    def test_released_ids_are_reused(self):
        pool = IDPool()
        first = pool.allocate()
        pool.allocate()
        pool.release(first)
        assert pool.allocate() == first

    def test_exhaustion_returns_e_limit(self):
        pool = IDPool(max_ids=2)
        pool.allocate()
        pool.allocate()
        assert pool.allocate() == E_LIMIT

    def test_live_count(self):
        pool = IDPool()
        a = pool.allocate()
        pool.allocate()
        pool.release(a)
        assert pool.live_count() == 1

    @given(st.lists(st.booleans(), max_size=60))
    def test_never_hands_out_duplicate_live_ids(self, operations):
        pool = IDPool(max_ids=30)
        live = set()
        for allocate in operations:
            if allocate:
                new_id = pool.allocate()
                if new_id > 0:
                    assert new_id not in live
                    live.add(new_id)
            elif live:
                victim = min(live)
                live.remove(victim)
                pool.release(victim)


class TestWaitQueue:
    def test_fifo_order(self):
        queue = WaitQueue(TA_TFIFO)
        for tskid, priority in [(1, 5), (2, 1), (3, 9)]:
            queue.enqueue(WaitEntry(FakeTCB(tskid, priority), factor=1))
        assert queue.waiting_task_ids() == [1, 2, 3]

    def test_priority_order(self):
        queue = WaitQueue(TA_TPRI)
        for tskid, priority in [(1, 5), (2, 1), (3, 9), (4, 1)]:
            queue.enqueue(WaitEntry(FakeTCB(tskid, priority), factor=1))
        # Priority 1 first (FIFO among equals), then 5, then 9.
        assert queue.waiting_task_ids() == [2, 4, 1, 3]

    def test_remove_and_find(self):
        queue = WaitQueue()
        entry = WaitEntry(FakeTCB(7, 3), factor=1)
        queue.enqueue(entry)
        assert queue.find_task(7) is entry
        assert queue.remove(entry)
        assert not queue.remove(entry)
        assert queue.find_task(7) is None

    def test_pop_returns_in_release_order(self):
        queue = WaitQueue(TA_TPRI)
        queue.enqueue(WaitEntry(FakeTCB(1, 10), factor=1))
        queue.enqueue(WaitEntry(FakeTCB(2, 2), factor=1))
        popped = queue.pop()
        assert popped is not None and popped.tcb.tskid == 2

    def test_reorder_after_priority_change(self):
        queue = WaitQueue(TA_TPRI)
        low = FakeTCB(1, 20)
        high = FakeTCB(2, 10)
        queue.enqueue(WaitEntry(low, factor=1))
        queue.enqueue(WaitEntry(high, factor=1))
        assert queue.waiting_task_ids() == [2, 1]
        low.priority = 1
        queue.reorder_for_priority_change()
        assert queue.waiting_task_ids() == [1, 2]

    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(1, 140)), max_size=40))
    def test_priority_queue_is_sorted(self, tasks):
        queue = WaitQueue(TA_TPRI)
        for index, (tskid, priority) in enumerate(tasks):
            queue.enqueue(WaitEntry(FakeTCB(index, priority), factor=1))
        priorities = [entry.priority for entry in queue.entries()]
        assert priorities == sorted(priorities)


class TestObjectTable:
    def test_add_and_require(self):
        table = ObjectTable()
        obj = table.add(lambda oid: KernelObject(oid, "thing"))
        assert not isinstance(obj, int)
        assert table.require(obj.object_id) is obj

    def test_require_missing_returns_e_noexs(self):
        table = ObjectTable()
        assert table.require(99) == E_NOEXS

    def test_delete_frees_id_for_reuse(self):
        table = ObjectTable()
        obj = table.add(lambda oid: KernelObject(oid, "thing"))
        table.delete(obj.object_id)
        replacement = table.add(lambda oid: KernelObject(oid, "other"))
        assert replacement.object_id == obj.object_id

    def test_full_table_returns_e_limit(self):
        table = ObjectTable(max_objects=1)
        table.add(lambda oid: KernelObject(oid, "a"))
        assert table.add(lambda oid: KernelObject(oid, "b")) == E_LIMIT

    def test_all_ordered_by_id(self):
        table = ObjectTable()
        for name in "abc":
            table.add(lambda oid, name=name: KernelObject(oid, name))
        assert [o.name for o in table.all()] == ["a", "b", "c"]
