"""Tests for the video-game application, widgets, framework and analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import ExecutionTraceReport, TimeEnergyDistribution, format_table
from repro.analysis.speed import CoSimSpeedMeasurement
from repro.app import CoSimulationFramework, FrameworkConfig, WidgetCostModel
from repro.app.videogame import (
    GameState,
    KEY_LEFT,
    KEY_RIGHT,
    VideoGameConfig,
)
from repro.core.events import ExecutionContext
from repro.sysc import SimTime


@pytest.fixture(scope="module")
def cosim():
    """One shared 300 ms co-simulation run used by several read-only tests."""
    config = FrameworkConfig(
        simulated_duration=SimTime.ms(300),
        gui_enabled=True,
        gui_host_seconds_per_callback=0.0,
        game=VideoGameConfig(lcd_update_period_ms=10),
        key_script=FrameworkConfig.default_key_script(300, period_ms=60),
    )
    framework = CoSimulationFramework(config)
    framework.run()
    return framework


class TestGameState:
    def test_ball_bounces_and_scores_on_paddle_hit(self):
        state = GameState(field_width=4, paddle=3, ball=2, ball_direction=1)
        state.advance_ball()
        assert state.score == 1 and state.ball_direction == -1

    def test_ball_misses_when_paddle_away(self):
        state = GameState(field_width=8, paddle=0, ball=6, ball_direction=1)
        state.advance_ball()
        assert state.misses == 1

    def test_paddle_stays_in_field(self):
        state = GameState(field_width=4, paddle=0)
        state.move_paddle(KEY_LEFT)
        assert state.paddle == 0
        state.paddle = 3
        state.move_paddle(KEY_RIGHT)
        assert state.paddle == 3

    def test_render_row_marks_ball_and_paddle(self):
        state = GameState(field_width=6, paddle=1, ball=4)
        row = state.render_row()
        assert row[1] == "=" and row[4] == "o" and len(row) == 6

    @given(st.lists(st.sampled_from([KEY_LEFT, KEY_RIGHT]), max_size=50))
    def test_paddle_never_leaves_field(self, keys):
        state = GameState(field_width=10)
        for key in keys:
            state.move_paddle(key)
        assert 0 <= state.paddle < 10

    @given(st.integers(min_value=1, max_value=200))
    def test_ball_never_leaves_field(self, steps):
        state = GameState(field_width=12)
        for _ in range(steps):
            state.advance_ball()
            assert 0 <= state.ball < 12


class TestVideoGameOnKernel:
    def test_application_runs_and_renders_frames(self, cosim):
        summary = cosim.application.summary()
        assert summary["frames_rendered"] >= 5
        assert summary["keys_handled"] >= 2
        assert set(summary["tasks"]) == {"T1_lcd", "T2_keypad", "T3_ssd", "T4_idle"}

    def test_keypad_interrupts_reach_the_task(self, cosim):
        # Every scripted key press raised the keypad external interrupt.
        assert cosim.bfm.intc.raised_count >= 2
        assert cosim.application.state.keys_handled >= 2
        assert cosim.application.state.key_log[0] in (KEY_LEFT, KEY_RIGHT)

    def test_idle_task_soaks_remaining_cpu(self, cosim):
        stats = cosim.api.energy_statistics()
        idle_cet = stats["T4_idle"]["cet_ms"]
        others = sum(entry["cet_ms"] for name, entry in stats.items()
                     if name not in ("T4_idle",))
        assert idle_cet > others

    def test_game_over_alarm_stops_the_game(self):
        config = FrameworkConfig(
            simulated_duration=SimTime.ms(250),
            gui_enabled=False,
            game=VideoGameConfig(lcd_update_period_ms=10, game_over_ms=100),
            key_script=FrameworkConfig.default_key_script(250, period_ms=60),
        )
        framework = CoSimulationFramework(config)
        results = framework.run()
        assert results["application"]["running"] is False
        frames_at_end = results["application"]["frames_rendered"]
        # No new frames render long after the game-over alarm.
        assert frames_at_end <= 12


class TestWidgets:
    def test_lcd_widget_mirrors_device(self, cosim):
        rendered = cosim.widgets.lcd.render()
        assert "+" in rendered and "|" in rendered
        assert cosim.widgets.lcd.callback_count > 0

    def test_battery_widget_drains_with_energy(self, cosim):
        battery = cosim.widgets.battery
        battery.update()
        assert 0.99 < battery.remaining_fraction <= 1.0
        assert battery.projected_lifespan_hours() is not None
        assert "battery [" in battery.render()

    def test_cost_model_disabled_burns_no_time(self):
        model = WidgetCostModel(enabled=False, host_seconds_per_callback=1.0)
        import time
        start = time.perf_counter()
        model.charge()
        assert time.perf_counter() - start < 0.1

    def test_invalid_battery_capacity_rejected(self, cosim):
        from repro.app.widgets import BatteryWidget
        with pytest.raises(ValueError):
            BatteryWidget(cosim.api, watt_hours=0)

    def test_dashboard_renders(self, cosim):
        dashboard = cosim.widgets.render_dashboard()
        assert "virtual system prototype" in dashboard
        assert "score" in dashboard


class TestAnalysis:
    def test_trace_report_window_filtering(self, cosim):
        full = ExecutionTraceReport(cosim.api)
        early = ExecutionTraceReport(cosim.api, 0, SimTime.ms(50))
        assert full.observed_dispatches() >= early.observed_dispatches()
        assert set(early.threads()).issubset(set(full.threads()))

    def test_trace_contexts_for_lcd_task(self, cosim):
        report = ExecutionTraceReport(cosim.api)
        contexts = report.time_by_context("T1_lcd")
        assert ExecutionContext.BFM_ACCESS in contexts
        assert "GANTT" in report.render(columns=40)

    def test_distribution_shares_sum_to_one(self, cosim):
        distribution = TimeEnergyDistribution(cosim.api)
        rows = distribution.per_thread()
        assert sum(row["cet_share"] for row in rows) == pytest.approx(1.0)
        assert distribution.dominant_consumers(2)

    def test_speed_measurement_returns_consistent_row(self):
        row = CoSimSpeedMeasurement(
            gui_enabled=False, lcd_update_period_ms=20,
            simulated_duration=SimTime.ms(100),
        ).run()
        assert row.simulated_seconds == pytest.approx(0.1)
        assert row.wall_clock_seconds > 0
        assert row.r_over_s == pytest.approx(
            row.wall_clock_seconds / row.simulated_seconds
        )
        assert row.s_over_r == pytest.approx(1.0 / row.r_over_s)

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "longer" in text and "value" in text


class TestFrameworkConfig:
    def test_default_key_script_is_deterministic_and_bounded(self):
        script = FrameworkConfig.default_key_script(500, period_ms=100)
        assert script == FrameworkConfig.default_key_script(500, period_ms=100)
        assert all(0 <= when < 500 for when, _ in script)
        assert {key for _, key in script} <= {KEY_LEFT, KEY_RIGHT}

    def test_results_include_speed_and_energy(self, cosim):
        results = cosim.results()
        assert results["simulated_seconds"] == pytest.approx(0.3)
        assert results["r_over_s"] > 0
        assert results["total_energy_mj"] > 0
        assert results["gui_callbacks"] > 0
