"""Watchdog contracts: deterministic sim ceiling, wall-clock backstop."""

import pytest

from repro.campaign.registry import get_scenario
from repro.campaign.runner import run_spec
from repro.resilience.watchdog import RunBudget, Watchdog, WatchdogTimeout


class FakeSimulator:
    def __init__(self):
        self.now_ns = 0
        self.advance_hooks = []

    def advance(self, to_ns):
        self.now_ns = to_ns
        for hook in self.advance_hooks:
            hook(self, to_ns)


class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(wall_seconds=0)
        with pytest.raises(ValueError):
            RunBudget(sim_ns=0)

    def test_unlimited(self):
        assert RunBudget().unlimited
        assert not RunBudget(sim_ns=1).unlimited


class TestWatchdogUnit:
    def test_unlimited_budget_arms_nothing(self):
        simulator = FakeSimulator()
        Watchdog(RunBudget()).arm(simulator)
        assert simulator.advance_hooks == []

    def test_sim_ceiling_cancels_on_the_crossing_advance(self):
        simulator = FakeSimulator()
        Watchdog(RunBudget(sim_ns=1000)).arm(simulator)
        simulator.advance(1000)  # at the ceiling: still allowed
        with pytest.raises(WatchdogTimeout) as caught:
            simulator.advance(1001)
        assert caught.value.kind == "sim"

    def test_sim_ceiling_is_relative_to_arm_time(self):
        simulator = FakeSimulator()
        simulator.now_ns = 5000
        Watchdog(RunBudget(sim_ns=1000)).arm(simulator)
        simulator.advance(6000)  # 1000 ns past arm: allowed
        with pytest.raises(WatchdogTimeout):
            simulator.advance(6001)

    def test_wall_ceiling_checks_every_64_advances(self):
        ticks = iter([0.0] + [99.0] * 200)  # armed at t=0, late ever after
        simulator = FakeSimulator()
        Watchdog(RunBudget(wall_seconds=1.0), clock=lambda: next(ticks)).arm(
            simulator
        )
        with pytest.raises(WatchdogTimeout) as caught:
            simulator.advance(1)  # call 0 is a check point
        assert caught.value.kind == "wall"

    def test_wall_checks_skip_between_check_points(self):
        calls = []

        def clock():
            calls.append(None)
            return 0.0

        simulator = FakeSimulator()
        Watchdog(RunBudget(wall_seconds=1.0), clock=clock).arm(simulator)
        for advance in range(1, 64):
            simulator.advance(advance)
        # One clock read at arm, one at the call-0 check point, none since.
        assert len(calls) == 2


class TestWatchdogIntegration:
    def test_run_cancels_deterministically(self):
        spec = get_scenario("quickstart")
        budget = RunBudget(sim_ns=100_000)
        with pytest.raises(WatchdogTimeout) as first:
            run_spec(spec, collect_events=False, budget=budget)
        with pytest.raises(WatchdogTimeout) as second:
            run_spec(spec, collect_events=False, budget=budget)
        # Same spec + same ceiling = cancelled at exactly the same advance.
        assert str(first.value) == str(second.value)
        assert first.value.kind == "sim"

    def test_unbudgeted_run_is_untouched(self):
        spec = get_scenario("quickstart")
        result = run_spec(spec, collect_events=False)
        assert result.metrics["scenario"] == spec.name
