"""CLI failure semantics: exit taxonomy, sidecars, verify, allow-partial."""

import json
import os

import pytest

from repro.campaign.cli import main
from repro.resilience.envelope import load_failures


def _corrupt_one_event_stream(cache_dir):
    for root, _dirs, files in os.walk(cache_dir):
        if "events.jsonl" in files and ".quarantine" not in root:
            target = os.path.join(root, "events.jsonl")
            with open(target, "r+b") as handle:
                handle.seek(os.path.getsize(target) // 2)
                byte = handle.read(1)
                handle.seek(-1, os.SEEK_CUR)
                handle.write(bytes([byte[0] ^ 0xFF]))
            return target
    raise AssertionError("no stored events.jsonl to corrupt")


class TestBatchExitCodes:
    def test_clean_batch_exits_0_without_a_sidecar(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["batch", "--scenario", "quickstart", "--serial",
                     "--out", out, "--no-events"]) == 0
        assert not os.path.exists(os.path.join(out, "failures.jsonl"))

    def test_quarantined_runs_exit_1_with_a_sidecar(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        code = main(["batch", "--scenario", "quickstart", "--serial",
                     "--out", out, "--no-events",
                     "--sim-budget-ns", "1000"])
        assert code == 1
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        records, torn = load_failures(os.path.join(out, "failures.jsonl"))
        assert torn == 0
        assert len(records) == 2  # quickstart × the default 2-seed matrix
        assert all(r["outcome"] == "timed-out" for r in records)
        assert all(r["quarantined"] for r in records)
        # Aggregates cover successes only — here, none.
        aggregate = json.load(
            open(os.path.join(out, "aggregate.json"), encoding="utf-8")
        )
        assert aggregate["campaign"]["runs"] == 0

    def test_fail_fast_exits_2(self, tmp_path, capsys):
        code = main(["batch", "--scenario", "quickstart", "--serial",
                     "--out", str(tmp_path / "out"), "--no-events",
                     "--sim-budget-ns", "1000", "--fail-fast"])
        assert code == 2
        assert "fail-fast abort" in capsys.readouterr().err

    def test_explicit_failures_out_is_written_even_when_clean(
        self, tmp_path, capsys
    ):
        sidecar = str(tmp_path / "elsewhere.jsonl")
        assert main(["batch", "--scenario", "quickstart", "--serial",
                     "--out", str(tmp_path / "out"), "--no-events",
                     "--failures-out", sidecar]) == 0
        records, torn = load_failures(sidecar)
        assert records == [] and torn == 0

    def test_invalid_policy_exits_2(self, tmp_path, capsys):
        code = main(["batch", "--scenario", "quickstart", "--serial",
                     "--out", str(tmp_path / "out"), "--no-events",
                     "--max-attempts", "0"])
        assert code == 2
        assert "max_attempts" in capsys.readouterr().err


class TestCacheVerifyCli:
    def _warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch", "--scenario", "quickstart", "--serial",
                     "--out", str(tmp_path / "warm"), "--cache", cache]) == 0
        capsys.readouterr()
        return cache

    def test_clean_store_exits_0(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        assert main(["cache", "verify", "--cache", cache]) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_corruption_exits_1_and_repair_quarantines(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        _corrupt_one_event_stream(cache)
        assert main(["cache", "verify", "--cache", cache]) == 1
        assert "digest mismatch" in capsys.readouterr().out

        assert main(["cache", "verify", "--cache", cache, "--repair"]) == 0
        assert "moved 1" in capsys.readouterr().out
        assert os.path.isdir(os.path.join(cache, ".quarantine"))
        assert main(["cache", "verify", "--cache", cache]) == 0

    def test_missing_store_exits_2(self, capsys):
        env_backup = os.environ.pop("REPRO_CACHE_DIR", None)
        try:
            assert main(["cache", "verify"]) == 2
        finally:
            if env_backup is not None:
                os.environ["REPRO_CACHE_DIR"] = env_backup


class TestShardCli:
    def _run_shard(self, tmp_path, index, capsys):
        out = str(tmp_path / f"shard_{index}")
        assert main(["shard", "run", "--shards", "2", "--index", str(index),
                     "--scenario", "quickstart", "--out", out]) == 0
        capsys.readouterr()
        return out

    def test_strict_merge_of_a_gap_exits_2(self, tmp_path, capsys):
        shard0 = self._run_shard(tmp_path, 0, capsys)
        code = main(["shard", "merge", shard0, "--out",
                     str(tmp_path / "merged")])
        assert code == 2
        assert "--allow-partial" in capsys.readouterr().err

    def test_allow_partial_merge_exits_1_with_coverage(self, tmp_path, capsys):
        shard0 = self._run_shard(tmp_path, 0, capsys)
        merged = str(tmp_path / "merged")
        code = main(["shard", "merge", shard0, "--out", merged,
                     "--allow-partial"])
        assert code == 1
        captured = capsys.readouterr()
        assert "partial merge" in captured.err
        coverage = json.load(
            open(os.path.join(merged, "coverage.json"), encoding="utf-8")
        )
        assert coverage["absent_shards"] == [1]

    def test_complete_merge_exits_0(self, tmp_path, capsys):
        shard0 = self._run_shard(tmp_path, 0, capsys)
        shard1 = self._run_shard(tmp_path, 1, capsys)
        assert main(["shard", "merge", shard0, shard1, "--out",
                     str(tmp_path / "merged"), "--allow-partial"]) == 0

    def test_shard_run_with_timeouts_exits_1(self, tmp_path, capsys):
        out = str(tmp_path / "shard_0")
        code = main(["shard", "run", "--shards", "1", "--index", "0",
                     "--scenario", "quickstart", "--out", out,
                     "--sim-budget-ns", "1000"])
        assert code == 1
        assert "quarantined" in capsys.readouterr().err
        assert os.path.exists(os.path.join(out, "failures.jsonl"))
