"""Failure-envelope contracts: records, sidecar, policy, exit taxonomy."""

import json
import os

import pytest

from repro.campaign.registry import get_scenario
from repro.campaign.spec import spec_hash
from repro.resilience.envelope import (
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_UNUSABLE,
    FAILURES_SCHEMA,
    OUTCOME_CRASHED,
    OUTCOME_FAILED,
    OUTCOME_TIMED_OUT,
    FailureLog,
    FailureRecord,
    ResiliencePolicy,
    WorkerCrash,
    is_transient,
    load_failures,
    outcome_of,
    write_failures,
)
from repro.resilience.hooks import phase_of, tag_phase
from repro.resilience.watchdog import RunBudget, WatchdogTimeout


class TestClassification:
    def test_oserror_is_transient(self):
        assert is_transient(OSError("disk hiccup"))

    def test_marked_exceptions_are_transient(self):
        assert is_transient(WorkerCrash("pool died"))

    def test_plain_exceptions_are_persistent(self):
        assert not is_transient(ValueError("bad knob"))

    def test_watchdog_timeouts_are_never_transient(self):
        # A deterministic ceiling would time out identically on retry.
        assert not is_transient(WatchdogTimeout("over budget", kind="sim"))

    def test_outcome_of_maps_exception_classes(self):
        assert outcome_of(WatchdogTimeout("x", kind="sim")) == OUTCOME_TIMED_OUT
        assert outcome_of(WorkerCrash("x")) == OUTCOME_CRASHED
        assert outcome_of(ValueError("x")) == OUTCOME_FAILED


class TestPhaseTagging:
    def test_default_phase_is_run(self):
        assert phase_of(ValueError("untagged")) == "run"

    def test_first_tag_wins(self):
        error = ValueError("deep failure")
        tag_phase(error, "build")
        tag_phase(error, "store")  # outer wrapper must not re-attribute
        assert phase_of(error) == "build"


class TestFailureRecord:
    def test_from_exception_addresses_the_spec(self):
        spec = get_scenario("quickstart")
        try:
            raise ValueError("knob out of range")
        except ValueError as error:
            record = FailureRecord.from_exception(error, spec, attempt=1,
                                                  index=3)
        assert record.spec_hash == spec_hash(spec)
        assert record.scenario == spec.name
        assert record.outcome == OUTCOME_FAILED
        assert record.exception == "ValueError"
        assert record.index == 3
        assert "knob out of range" in record.message
        assert "ValueError" in record.traceback

    def test_from_exception_accepts_spec_documents(self):
        spec = get_scenario("quickstart")
        record = FailureRecord.from_exception(OSError("io"), spec.to_dict())
        assert record.spec_hash == spec_hash(spec)
        assert record.transient

    def test_round_trips_through_the_sidecar_document(self):
        record = FailureRecord(
            outcome=OUTCOME_FAILED, scenario="s", spec_hash="abc",
            phase="build", exception="ValueError", message="m",
            traceback="tb", attempt=2, index=7, transient=True,
            quarantined=True,
        )
        document = record.to_dict()
        assert document["schema"] == FAILURES_SCHEMA
        assert FailureRecord.from_dict(document) == record

    def test_summary_is_one_line(self):
        record = FailureRecord(
            outcome=OUTCOME_FAILED, scenario="s", spec_hash="abc",
            phase="run", exception="ValueError", message="m",
        )
        assert "\n" not in record.summary()


class TestSidecar:
    def test_write_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "failures.jsonl")
        records = [
            FailureRecord(outcome=OUTCOME_FAILED, scenario="a",
                          spec_hash="1", phase="run", exception="E",
                          message="one"),
            FailureRecord(outcome=OUTCOME_TIMED_OUT, scenario="b",
                          spec_hash="2", phase="run", exception="W",
                          message="two", quarantined=True),
        ]
        assert write_failures(path, records) == 2
        loaded, torn = load_failures(path)
        assert torn == 0
        assert [FailureRecord.from_dict(doc) for doc in loaded] == records

    def test_torn_trailing_line_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "failures.jsonl")
        write_failures(path, [FailureRecord(
            outcome=OUTCOME_FAILED, scenario="a", spec_hash="1",
            phase="run", exception="E", message="m",
        )])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-fail')  # died mid-write
        loaded, torn = load_failures(path)
        assert len(loaded) == 1
        assert torn == 1

    def test_log_creates_no_file_until_a_record_lands(self, tmp_path):
        path = str(tmp_path / "failures.jsonl")
        with FailureLog(path):
            pass
        assert not os.path.exists(path)

    def test_lines_are_canonical_json(self, tmp_path):
        path = str(tmp_path / "failures.jsonl")
        write_failures(path, [FailureRecord(
            outcome=OUTCOME_FAILED, scenario="a", spec_hash="1",
            phase="run", exception="E", message="m",
        )])
        line = open(path, encoding="utf-8").read().strip()
        document = json.loads(line)
        assert list(document) == sorted(document)


class TestPolicy:
    def test_defaults_retry_once_and_keep_going(self):
        policy = ResiliencePolicy()
        assert policy.max_attempts == 2
        assert policy.keep_going
        assert policy.budget() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(run_timeout_s=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(sim_budget_ns=-1)

    def test_budget_carries_both_ceilings(self):
        policy = ResiliencePolicy(run_timeout_s=2.5, sim_budget_ns=10_000)
        assert policy.budget() == RunBudget(wall_seconds=2.5, sim_ns=10_000)

    def test_round_trips_for_worker_payloads(self):
        policy = ResiliencePolicy(max_attempts=3, sim_budget_ns=5,
                                  keep_going=False)
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy


def test_exit_taxonomy_is_pinned():
    # The ROADMAP standing contract: 0 ok, 1 usable-but-partial, 2 unusable.
    assert (EXIT_OK, EXIT_PARTIAL, EXIT_UNUSABLE) == (0, 1, 2)
