"""Merge degradation: precise gap reporting, --allow-partial coverage."""

import json
import os

import pytest

from repro.grid.executor import COVERAGE_SCHEMA, merge_shards, run_shard
from repro.grid.shard import plan_shard
from repro.grid.store import GridError
from repro.resilience.chaos import (
    ChaosInjection,
    ChaosInjector,
    chaos_active,
)
from repro.resilience.envelope import ResiliencePolicy, load_failures
from repro.workload.families import FamilySpec, expand_family


def _specs(count=4):
    return expand_family(FamilySpec(
        name="merge-family", count=count, seed=5, duration_ms=5.0,
    ))


def _run_shards(tmp_path, specs, shards, skip=()):
    shard_dirs = []
    for index in range(shards):
        out = str(tmp_path / f"shard_{index}")
        shard_dirs.append(out)
        if index in skip:
            continue
        run_shard(plan_shard(specs, shards, index), out)
    return shard_dirs


class TestMissingShardReporting:
    def test_error_names_the_absent_indices_and_shards(self, tmp_path):
        specs = _specs(4)
        shard_dirs = _run_shards(tmp_path, specs, 2, skip=(1,))
        with pytest.raises(GridError) as caught:
            merge_shards(shard_dirs, str(tmp_path / "merged"))
        message = str(caught.value)
        assert "missing run indices [1, 3]" in message
        assert "absent shard(s): [1]" in message
        assert "--allow-partial" in message


class TestAllowPartial:
    def test_partial_merge_covers_the_survivors(self, tmp_path):
        specs = _specs(4)
        shard_dirs = _run_shards(tmp_path, specs, 2, skip=(1,))
        manifest = merge_shards(shard_dirs, str(tmp_path / "merged"),
                                allow_partial=True)
        assert manifest["runs"] == 4
        assert manifest["merged"] == 2
        assert manifest["missing"] == [1, 3]

        coverage = json.load(open(manifest["coverage"], encoding="utf-8"))
        assert coverage["schema"] == COVERAGE_SCHEMA
        assert coverage["total"] == 4
        assert coverage["merged"] == 2
        assert coverage["merged_indices"] == [0, 2]
        assert coverage["missing_indices"] == [1, 3]
        assert coverage["present_shards"] == [0]
        assert coverage["absent_shards"] == [1]

        # Event streams for the merged runs exist; gaps simply do not.
        names = sorted(os.listdir(str(tmp_path / "merged")))
        assert sum(name.endswith(".jsonl") for name in names) == 2

    def test_full_merge_is_identical_with_or_without_the_flag(self, tmp_path):
        specs = _specs(4)
        shard_dirs = _run_shards(tmp_path, specs, 2)
        strict = merge_shards(shard_dirs, str(tmp_path / "strict"))
        lenient = merge_shards(shard_dirs, str(tmp_path / "lenient"),
                               allow_partial=True)
        assert lenient["missing"] == []
        strict_bytes = open(strict["aggregate"], "rb").read()
        lenient_bytes = open(lenient["aggregate"], "rb").read()
        assert strict_bytes == lenient_bytes
        # A gap-free lenient merge still records its (complete) coverage.
        coverage = json.load(open(lenient["coverage"], encoding="utf-8"))
        assert coverage["missing_indices"] == []


class TestShardRunResilience:
    def test_poison_run_leaves_a_gap_and_a_sidecar(self, tmp_path):
        specs = _specs(4)
        injector = ChaosInjector([
            ChaosInjection(kind="raise", phase="build", index=2),
        ])
        out = str(tmp_path / "shard_0")
        with chaos_active(injector):
            document = run_shard(plan_shard(specs, 1, 0), out,
                                 policy=ResiliencePolicy())
        assert document["failed"] == 1
        assert [entry["index"] for entry in document["runs"]] == [0, 1, 3]

        records, torn = load_failures(os.path.join(out, "failures.jsonl"))
        assert torn == 0
        assert len(records) == 1
        assert records[0]["index"] == 2
        assert records[0]["phase"] == "build"
        assert records[0]["quarantined"] is True
        # The poisoned run's partial event stream must not linger.
        streams = [n for n in os.listdir(out) if n.startswith("events_")]
        assert len(streams) == 3

        # A partial merge of the shard names exactly the poisoned gap.
        manifest = merge_shards([out], str(tmp_path / "merged"),
                                allow_partial=True)
        assert manifest["missing"] == [2]

    def test_clean_shard_with_policy_matches_plain_artifacts(self, tmp_path):
        specs = _specs(4)
        plain = run_shard(plan_shard(specs, 1, 0), str(tmp_path / "plain"))
        armored = run_shard(plan_shard(specs, 1, 0), str(tmp_path / "armored"),
                            policy=ResiliencePolicy())
        assert armored["failed"] == 0
        assert not os.path.exists(
            os.path.join(str(tmp_path / "armored"), "failures.jsonl")
        )
        # shard.json carries wall-clock timing, so compare through the
        # deterministic merge artifact instead of raw bytes.
        plain_merge = merge_shards([str(tmp_path / "plain")],
                                   str(tmp_path / "plain_merged"))
        armored_merge = merge_shards([str(tmp_path / "armored")],
                                     str(tmp_path / "armored_merged"))
        assert open(plain_merge["aggregate"], "rb").read() == \
            open(armored_merge["aggregate"], "rb").read()
