"""Resilient-engine contracts: byte-identity, quarantine, crash recovery.

The resilient executor is default-on at the CLI, so its clean path must be
invisible: for the same spec list, plain and resilient engines — serial
and pooled — write **byte-identical** ``aggregate.json`` and per-run event
streams.  Under injected faults the sweep must degrade precisely: poison
members quarantine while every other run completes and aggregates,
transient faults retry back to the byte-identical artifact set, and a
SIGKILLed pool worker triggers group bisection plus store-backed resume.
"""

import hashlib
import os

import pytest

from repro.campaign.batch import run_batch, run_events_filename
from repro.campaign.spec import SpecError
from repro.grid.store import ResultStore
from repro.resilience.chaos import (
    ChaosInjection,
    ChaosInjector,
    chaos_active,
)
from repro.resilience.envelope import (
    OUTCOME_CRASHED,
    OUTCOME_FAILED,
    ResilienceAbort,
    ResiliencePolicy,
)
from repro.workload.families import FamilySpec, expand_family


def _family(count, name="resilience-family"):
    return expand_family(FamilySpec(
        name=name, count=count, seed=11,
        kernels=("tkernel", "rtkspec1"), duration_ms=5.0,
    ))


def _digest(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _artifact_digests(out_dir, specs, indices=None):
    digests = {"aggregate.json": _digest(os.path.join(out_dir, "aggregate.json"))}
    indices = range(len(specs)) if indices is None else indices
    for index, spec in zip(indices, specs):
        name = run_events_filename(index, spec.name)
        digests[name] = _digest(os.path.join(out_dir, name))
    return digests


class TestCleanPathByteIdentity:
    def test_serial_and_pooled_resilient_match_the_plain_engine(self, tmp_path):
        specs = _family(6)
        policy = ResiliencePolicy()

        plain = run_batch(specs, workers=1)
        plain.write_outputs(str(tmp_path / "plain"))
        serial = run_batch(specs, workers=1, policy=policy)
        serial.write_outputs(str(tmp_path / "serial"))
        pooled = run_batch(specs, workers=2, policy=policy)
        pooled.write_outputs(str(tmp_path / "pooled"))

        expected = _artifact_digests(str(tmp_path / "plain"), specs)
        assert _artifact_digests(str(tmp_path / "serial"), specs) == expected
        assert _artifact_digests(str(tmp_path / "pooled"), specs) == expected
        assert all(doc["outcome"] == "ok" for doc in serial.outcomes)
        assert serial.failures == [] and pooled.failures == []

    def test_outcomes_cover_every_run_in_index_order(self):
        specs = _family(4)
        batch = run_batch(specs, workers=1, collect_events=False,
                          policy=ResiliencePolicy())
        assert [doc["index"] for doc in batch.outcomes] == [0, 1, 2, 3]
        assert batch.indices == [0, 1, 2, 3]


class TestPoisonQuarantine:
    def test_one_poison_member_of_24_quarantines_alone(self, tmp_path):
        specs = _family(24)
        poison = 5
        injector = ChaosInjector([
            ChaosInjection(kind="raise", phase="build", index=poison),
        ])
        with chaos_active(injector):
            batch = run_batch(specs, workers=1, policy=ResiliencePolicy())
        assert len(batch.results) == 23
        assert batch.indices == [i for i in range(24) if i != poison]
        assert batch.outcomes[poison]["outcome"] == OUTCOME_FAILED
        quarantined = batch.quarantined
        assert len(quarantined) == 1
        assert quarantined[0].index == poison
        assert quarantined[0].phase == "build"
        assert not quarantined[0].transient

        # The survivors' aggregate equals a clean sweep of the 23 healthy
        # specs — failures leave no trace in the deterministic artifacts.
        batch.write_outputs(str(tmp_path / "poisoned"), include_events=False)
        survivors = [spec for i, spec in enumerate(specs) if i != poison]
        clean = run_batch(survivors, workers=1)
        clean.write_outputs(str(tmp_path / "clean"), include_events=False)
        assert _digest(str(tmp_path / "poisoned" / "aggregate.json")) == \
            _digest(str(tmp_path / "clean" / "aggregate.json"))

    def test_fail_fast_aborts_on_the_first_failure(self):
        specs = _family(4)
        injector = ChaosInjector([
            ChaosInjection(kind="raise", phase="build", index=1),
        ])
        with chaos_active(injector):
            with pytest.raises(ResilienceAbort) as caught:
                run_batch(specs, workers=1, collect_events=False,
                          policy=ResiliencePolicy(keep_going=False))
        assert caught.value.record.index == 1

    def test_empty_batch_is_a_spec_error(self):
        with pytest.raises(SpecError):
            run_batch([], policy=ResiliencePolicy())


class TestTransientRetry:
    def test_retried_sweep_is_byte_identical_to_a_clean_one(self, tmp_path):
        specs = _family(6)
        marker = str(tmp_path / "fired")
        injector = ChaosInjector([
            ChaosInjection(kind="raise-transient", phase="run-start",
                           index=2, once_marker=marker),
        ])
        with chaos_active(injector):
            retried = run_batch(specs, workers=1, policy=ResiliencePolicy())
        retried.write_outputs(str(tmp_path / "retried"))
        clean = run_batch(specs, workers=1)
        clean.write_outputs(str(tmp_path / "clean"))
        assert _artifact_digests(str(tmp_path / "retried"), specs) == \
            _artifact_digests(str(tmp_path / "clean"), specs)
        assert retried.outcomes[2]["attempts"] == 2
        assert len(retried.failures) == 1
        record = retried.failures[0]
        assert record.transient and not record.quarantined
        assert record.attempt == 1

    def test_persistent_transient_fault_quarantines_at_the_cap(self):
        specs = _family(4)
        injector = ChaosInjector([
            # No once-marker: every attempt fails.
            ChaosInjection(kind="raise-transient", phase="run-start", index=0),
        ])
        with chaos_active(injector):
            batch = run_batch(specs, workers=1, collect_events=False,
                              policy=ResiliencePolicy(max_attempts=3))
        assert batch.outcomes[0]["attempts"] == 3
        assert [r.attempt for r in batch.failures] == [1, 2, 3]
        assert [r.quarantined for r in batch.failures] == [False, False, True]


class TestWorkerCrashRecovery:
    def test_one_killed_worker_recovers_to_byte_identity(self, tmp_path):
        # 16 specs on 2 workers → multi-member fused groups, so the crash
        # takes innocent group members down with it and the bisection path
        # (re-dispatch crashed groups as isolated singles) must recover all.
        specs = _family(16, name="crash-family")
        marker = str(tmp_path / "killed")
        injector = ChaosInjector([
            ChaosInjection(kind="kill-worker", phase="run-start",
                           index=6, once_marker=marker),
        ])
        with chaos_active(injector):
            crashed = run_batch(specs, workers=2, policy=ResiliencePolicy())
        crashed.write_outputs(str(tmp_path / "crashed"))
        assert os.path.exists(marker)
        assert len(crashed.results) == 16
        assert all(doc["outcome"] == "ok" for doc in crashed.outcomes)

        clean = run_batch(specs, workers=1)
        clean.write_outputs(str(tmp_path / "clean"))
        assert _artifact_digests(str(tmp_path / "crashed"), specs) == \
            _artifact_digests(str(tmp_path / "clean"), specs)

    def test_persistently_crashing_member_quarantines_with_blame(self):
        specs = _family(12, name="crash-family")
        victim = 4
        injector = ChaosInjector([
            # No once-marker: the victim kills every worker that runs it.
            ChaosInjection(kind="kill-worker", phase="run-start",
                           index=victim),
        ])
        with chaos_active(injector):
            batch = run_batch(specs, workers=2, collect_events=False,
                              policy=ResiliencePolicy())
        assert len(batch.results) == 11
        assert batch.outcomes[victim]["outcome"] == OUTCOME_CRASHED
        quarantined = batch.quarantined
        assert len(quarantined) == 1
        assert quarantined[0].index == victim
        assert quarantined[0].exception == "WorkerCrash"

    def test_kill_then_resume_from_store_matches_clean_serial(self, tmp_path):
        # The acceptance scenario: a worker dies mid-sweep, the store keeps
        # the completed runs, and a resumed sweep replays the survivors and
        # simulates only the gap — landing on the byte-identical artifact
        # set of an undisturbed serial run.
        specs = _family(12, name="resume-family")
        store = ResultStore(str(tmp_path / "cache"))
        victim = 7
        injector = ChaosInjector([
            ChaosInjection(kind="kill-worker", phase="run-start",
                           index=victim),
        ])
        with chaos_active(injector):
            first = run_batch(specs, workers=2, store=store,
                              policy=ResiliencePolicy())
        assert len(first.results) == 11
        assert first.outcomes[victim]["outcome"] == OUTCOME_CRASHED

        resumed = run_batch(specs, workers=1, store=store,
                            policy=ResiliencePolicy())
        assert len(resumed.results) == 12
        assert resumed.cache_hits == 11  # only the victim simulates
        resumed.write_outputs(str(tmp_path / "resumed"))

        clean = run_batch(specs, workers=1)
        clean.write_outputs(str(tmp_path / "clean"))
        assert _artifact_digests(str(tmp_path / "resumed"), specs) == \
            _artifact_digests(str(tmp_path / "clean"), specs)


class TestStoreDegradation:
    def test_corrupt_store_entry_is_resimulated_not_fatal(self, tmp_path):
        specs = _family(4)
        store = ResultStore(str(tmp_path / "cache"))
        warm = run_batch(specs, workers=1, collect_events=False, store=store,
                         policy=ResiliencePolicy())
        assert len(warm.results) == 4

        # Rot one stored event stream: the verified lookup must treat the
        # entry as a miss and re-simulate instead of raising or replaying
        # bad bytes.
        victim_dir = None
        for root, _dirs, files in os.walk(str(tmp_path / "cache")):
            if "events.jsonl" in files:
                victim_dir = root
                break
        assert victim_dir is not None
        target = os.path.join(victim_dir, "events.jsonl")
        with open(target, "r+b") as handle:
            handle.seek(os.path.getsize(target) // 2)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))

        second = run_batch(specs, workers=1, collect_events=False,
                           store=store, policy=ResiliencePolicy())
        assert len(second.results) == 4
        assert second.cache_hits == 3
        assert second.failures == []
        assert warm.aggregate == second.aggregate
