"""Store integrity verbs: verify, quarantine-on-repair, precise errors."""

import json
import os

import pytest

from repro.campaign.batch import run_batch
from repro.grid.store import GridError, ResultStore
from repro.workload.families import FamilySpec, expand_family


def _warm_store(tmp_path, count=3):
    store = ResultStore(str(tmp_path / "cache"))
    specs = expand_family(FamilySpec(
        name="verify-family", count=count, seed=3, duration_ms=5.0,
    ))
    run_batch(specs, workers=1, collect_events=False, store=store)
    return store


def _first_artifact(store, name="events.jsonl"):
    for root, _dirs, files in os.walk(store.root):
        if name in files and ".quarantine" not in root:
            return os.path.join(root, name)
    raise AssertionError(f"no {name} in store")


def _flip_byte(path):
    with open(path, "r+b") as handle:
        handle.seek(os.path.getsize(path) // 2)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestVerify:
    def test_clean_store_verifies_clean(self, tmp_path):
        store = _warm_store(tmp_path)
        report = store.verify()
        assert report["checked"] == 3
        assert report["bad"] == []
        assert report["quarantined"] == 0

    def test_digest_mismatch_is_named_per_artifact(self, tmp_path):
        store = _warm_store(tmp_path)
        _flip_byte(_first_artifact(store))
        report = store.verify()
        assert len(report["bad"]) == 1
        problems = report["bad"][0]["problems"]
        assert any("events.jsonl digest mismatch" in p for p in problems)
        assert report["bad"][0]["scenario"]
        # verify alone never mutates the store
        assert store.verify()["checked"] == 3

    def test_unreadable_manifest_is_reported(self, tmp_path):
        store = _warm_store(tmp_path)
        manifest = _first_artifact(store, "manifest.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        report = store.verify()
        assert len(report["bad"]) == 1
        assert any("manifest" in p for p in report["bad"][0]["problems"])

    def test_repair_quarantines_failing_entries(self, tmp_path):
        store = _warm_store(tmp_path)
        _flip_byte(_first_artifact(store))
        report = store.verify(repair=True)
        assert report["quarantined"] == 1
        assert os.path.isdir(store.quarantine_dir())
        assert len(os.listdir(store.quarantine_dir())) == 1
        # The quarantined entry is invisible to the store from now on.
        after = store.verify()
        assert after["checked"] == 2
        assert after["bad"] == []

    def test_quarantined_entries_resimulate_on_the_next_sweep(self, tmp_path):
        store = _warm_store(tmp_path)
        _flip_byte(_first_artifact(store))
        store.verify(repair=True)
        specs = expand_family(FamilySpec(
            name="verify-family", count=3, seed=3, duration_ms=5.0,
        ))
        batch = run_batch(specs, workers=1, collect_events=False, store=store)
        assert len(batch.results) == 3
        assert batch.cache_hits == 2

    def test_clear_sweeps_the_quarantine_too(self, tmp_path):
        store = _warm_store(tmp_path)
        _flip_byte(_first_artifact(store))
        store.verify(repair=True)
        store.clear()
        assert not os.path.exists(store.quarantine_dir())


class TestPutMisuse:
    def test_put_requires_exactly_one_events_source(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = {"name": "x", "kernel": "tkernel", "workload": "w",
                "seed": 1, "duration_ms": 1.0}
        with pytest.raises(GridError):
            store.put(spec, {"scenario": "x"})
        with pytest.raises(GridError) as caught:
            store.put(spec, {"scenario": "x"}, events=[],
                      events_path="somewhere.jsonl")
        assert "exactly one" in str(caught.value)
