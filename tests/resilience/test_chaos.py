"""Chaos-injector contracts: explicit, targeted, deterministic, once."""

import os

import pytest

from repro.resilience.chaos import (
    ChaosError,
    ChaosInjection,
    ChaosInjector,
    TransientChaosError,
    chaos_active,
    choose_index,
)
from repro.resilience.hooks import chaos_enabled, chaos_point, phase_of


class TestInjectionSpec:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            ChaosInjection(kind="meteor-strike")

    def test_matchers_narrow_by_phase_scenario_and_index(self):
        injection = ChaosInjection(kind="raise", phase="build",
                                   scenario="s", index=3)
        assert injection.matches("build", "s", 3)
        assert not injection.matches("run-start", "s", 3)
        assert not injection.matches("build", "other", 3)
        assert not injection.matches("build", "s", 4)

    def test_none_matchers_are_wildcards(self):
        injection = ChaosInjection(kind="raise")
        assert injection.matches("stored", "anything", 99)


class TestFiring:
    def test_production_chaos_point_is_a_no_op(self):
        assert not chaos_enabled()
        chaos_point("build", scenario="s", index=0)  # must not raise

    def test_chaos_active_installs_and_uninstalls(self):
        injector = ChaosInjector([], seed=1)
        with chaos_active(injector):
            assert chaos_enabled()
        assert not chaos_enabled()

    def test_raise_kinds_carry_phase_and_transience(self):
        injector = ChaosInjector([
            ChaosInjection(kind="raise", phase="stored"),
        ])
        with chaos_active(injector):
            with pytest.raises(ChaosError) as caught:
                chaos_point("stored", scenario="s", index=0)
        assert phase_of(caught.value) == "store"
        assert not getattr(caught.value, "transient")

        injector = ChaosInjector([
            ChaosInjection(kind="raise-transient", phase="run-start"),
        ])
        with chaos_active(injector):
            with pytest.raises(TransientChaosError) as caught:
                chaos_point("run-start", scenario="s", index=0)
        assert getattr(caught.value, "transient")

    def test_once_marker_burns_after_the_first_fire(self, tmp_path):
        marker = str(tmp_path / "fired")
        injector = ChaosInjector([
            ChaosInjection(kind="raise", once_marker=marker),
        ])
        with chaos_active(injector):
            with pytest.raises(ChaosError):
                chaos_point("build", scenario="s", index=0)
            chaos_point("build", scenario="s", index=0)  # burned: silent
        assert os.path.exists(marker)

    def test_corrupt_store_flips_one_byte(self, tmp_path):
        target = tmp_path / "events.jsonl"
        original = b'{"t_ns": 100}\n{"t_ns": 200}\n'
        target.write_bytes(original)
        injector = ChaosInjector([
            ChaosInjection(kind="corrupt-store", phase="stored"),
        ])
        with chaos_active(injector):
            chaos_point("stored", scenario="s", index=0,
                        entry_dir=str(tmp_path))
        mutated = target.read_bytes()
        assert mutated != original
        assert len(mutated) == len(original)
        assert sum(a != b for a, b in zip(mutated, original)) == 1

    def test_torn_write_truncates(self, tmp_path):
        target = tmp_path / "events.jsonl"
        target.write_bytes(b"x" * 100)
        injector = ChaosInjector([
            ChaosInjection(kind="torn-write", phase="stored"),
        ])
        with chaos_active(injector):
            chaos_point("stored", scenario="s", index=0,
                        entry_dir=str(tmp_path))
        assert target.stat().st_size == 60


class TestChooseIndex:
    def test_stable_across_calls(self):
        assert choose_index(7, 24) == choose_index(7, 24)
        assert choose_index(7, 24, salt="kill") == \
            choose_index(7, 24, salt="kill")

    def test_in_range_and_seed_sensitive(self):
        picks = {choose_index(seed, 24) for seed in range(50)}
        assert all(0 <= pick < 24 for pick in picks)
        assert len(picks) > 1

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            choose_index(0, 0)
