"""SC_THREAD-style processes.

A process body is a Python generator function.  The generator *yields* wait
requests back to the simulator, which suspends the process until the request
is satisfied and then resumes it.  This mirrors how an ``SC_THREAD`` calls
``wait(...)`` in SystemC: the coroutine keeps its local state across waits,
which is exactly the property the paper's T-THREAD model needs in order to
model task bodies that sleep, get preempted and resume mid-execution.

Wait request kinds
------------------

``Wait(time)``
    Suspend for a simulated duration (``wait(t)``).
``WaitEvent(event)``
    Suspend until an event is notified (``wait(e)`` — dynamic sensitivity).
``WaitEventTimeout(event, time)``
    Suspend until the event is notified or the timeout elapses
    (``wait(t, e)``); the resume value tells the process which happened.
``WaitDelta()``
    Suspend for one delta cycle (``wait(SC_ZERO_TIME)``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional

from repro.sysc.event import SCEvent
from repro.sysc.time import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sysc.kernel import Simulator


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"
    TERMINATED = "terminated"


@dataclass(slots=True)
class Wait:
    """Wait for a simulated duration."""

    duration: SimTime

    def __post_init__(self) -> None:
        if type(self.duration) is not SimTime:
            self.duration = SimTime.coerce(self.duration)


@dataclass(slots=True)
class WaitEvent:
    """Wait for a single event (dynamic sensitivity)."""

    event: SCEvent


@dataclass(slots=True)
class WaitEventTimeout:
    """Wait for an event with a timeout."""

    event: SCEvent
    timeout: SimTime

    def __post_init__(self) -> None:
        if type(self.timeout) is not SimTime:
            self.timeout = SimTime.coerce(self.timeout)


@dataclass(slots=True)
class WaitDelta:
    """Wait for one delta cycle."""


class ResumeReason(enum.Enum):
    """Why a waiting process was resumed."""

    TIMEOUT = "timeout"
    EVENT = "event"
    DELTA = "delta"
    TIME = "time"
    START = "start"


ProcessBody = Generator[object, ResumeReason, None]


@dataclass(slots=True)
class ProcessHandle:
    """Book-keeping for one SC_THREAD-style process.

    Slotted: handles are touched on every wake/resume of the kernel's hot
    loop, so attribute access must not go through an instance ``__dict__``.
    """

    name: str
    factory: Callable[[], ProcessBody]
    simulator: "Simulator"
    static_sensitivity: "tuple[SCEvent, ...]" = ()
    dont_initialize: bool = False

    state: ProcessState = field(default=ProcessState.CREATED, init=False)
    generator: Optional[ProcessBody] = field(default=None, init=False)
    waiting_on: Optional[SCEvent] = field(default=None, init=False)
    # Generation counter identifying the pending wait-timeout; bumping it
    # invalidates the timeout without allocating per-wait token objects.
    _timeout_token: int = field(default=0, init=False)
    _resume_reason: ResumeReason = field(default=ResumeReason.START, init=False)
    resume_count: int = field(default=0, init=False)
    terminated_event: SCEvent = field(default=None, init=False)  # type: ignore[assignment]
    # Bound `generator.send`, cached at start() so every resume skips the
    # generator attribute walk and method-object creation.
    _send: Optional[Callable[[object], object]] = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.terminated_event = SCEvent(
            f"{self.name}.terminated", simulator=self.simulator
        )

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Instantiate the generator; called by the simulator at elaboration."""
        if self.generator is None:
            self.generator = self.factory()
            self._send = self.generator.send

    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return self.state is not ProcessState.TERMINATED

    def _mark_terminated(self) -> None:
        self.state = ProcessState.TERMINATED
        self.waiting_on = None
        self.terminated_event.notify_delta()

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"ProcessHandle({self.name!r}, state={self.state.value})"


def as_sensitivity(events: "Optional[Iterable[SCEvent] | SCEvent]") -> "tuple[SCEvent, ...]":
    """Normalise a sensitivity specification into a tuple of events."""
    if events is None:
        return ()
    if isinstance(events, SCEvent):
        return (events,)
    return tuple(events)
