"""Simulation time representation.

SystemC represents time as an integer number of a global time resolution.
We follow the same idea: all simulation time is held as an integer count of
nanoseconds wrapped in :class:`SimTime`.  Integer arithmetic keeps long
co-simulation runs free of floating-point drift, which matters because the
RTOS tick (1 ms by default) must stay exactly periodic.

Convenience constructors mirror the SystemC time units::

    SimTime.ns(10)      # 10 nanoseconds
    SimTime.us(3)       # 3 microseconds
    SimTime.ms(1)       # the default system tick of the paper's RTC
    SimTime.sec(1)      # the reference simulated second of Table 2

Fast-core convention (PR 3)
---------------------------

:class:`SimTime` is the *public boundary type*: every API that accepts or
returns a time speaks :class:`SimTime` (or a bare number of nanoseconds).
The simulator's hot plane — the timed queue, the delta machinery, signal
settling, SIM_Wait chunking — operates on plain ``int`` nanoseconds
internally and converts at the boundary.  To keep that boundary cheap the
class is slotted, comparisons are hand-written with an integer fast path
(no ``functools.total_ordering`` dispatch chain), and :meth:`coerce`
returns ``int`` inputs without a ``float``/``round`` round-trip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TimeUnit(enum.IntEnum):
    """Time units expressed as nanosecond multipliers."""

    NS = 1
    US = 1_000
    MS = 1_000_000
    SEC = 1_000_000_000


NS = TimeUnit.NS
US = TimeUnit.US
MS = TimeUnit.MS
SEC = TimeUnit.SEC


@dataclass(frozen=True, slots=True, eq=False)
class SimTime:
    """An absolute or relative simulation time, stored in nanoseconds."""

    nanoseconds: int = 0

    # -- constructors -----------------------------------------------------
    @classmethod
    def ns(cls, value: float) -> "SimTime":
        """Create a time of *value* nanoseconds."""
        if type(value) is int:
            return cls(value)
        return cls(int(round(value)))

    @classmethod
    def us(cls, value: float) -> "SimTime":
        """Create a time of *value* microseconds."""
        if type(value) is int:
            return cls(value * 1_000)
        return cls(int(round(value * 1_000)))

    @classmethod
    def ms(cls, value: float) -> "SimTime":
        """Create a time of *value* milliseconds."""
        if type(value) is int:
            return cls(value * 1_000_000)
        return cls(int(round(value * 1_000_000)))

    @classmethod
    def sec(cls, value: float) -> "SimTime":
        """Create a time of *value* seconds."""
        if type(value) is int:
            return cls(value * 1_000_000_000)
        return cls(int(round(value * 1_000_000_000)))

    @classmethod
    def zero(cls) -> "SimTime":
        """The zero time."""
        return cls(0)

    @classmethod
    def coerce(cls, value: "SimTime | int | float") -> "SimTime":
        """Coerce *value* into a :class:`SimTime`.

        Bare numbers are interpreted as nanoseconds, matching the internal
        resolution.  ``int`` inputs take a direct path; only ``float`` (and
        other real numbers) pay the rounding conversion.
        """
        if isinstance(value, SimTime):
            return value
        if type(value) is int:
            return cls(value)
        return cls(int(round(value)))

    # -- conversions ------------------------------------------------------
    def to_ns(self) -> int:
        """Return the time as an integer number of nanoseconds."""
        return self.nanoseconds

    def to_us(self) -> float:
        """Return the time in microseconds."""
        return self.nanoseconds / US

    def to_ms(self) -> float:
        """Return the time in milliseconds."""
        return self.nanoseconds / MS

    def to_sec(self) -> float:
        """Return the time in seconds."""
        return self.nanoseconds / SEC

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "SimTime | int") -> "SimTime":
        if isinstance(other, SimTime):
            return SimTime(self.nanoseconds + other.nanoseconds)
        return SimTime(self.nanoseconds + SimTime.coerce(other).nanoseconds)

    def __radd__(self, other: "SimTime | int") -> "SimTime":
        return self.__add__(other)

    def __sub__(self, other: "SimTime | int") -> "SimTime":
        if isinstance(other, SimTime):
            return SimTime(self.nanoseconds - other.nanoseconds)
        return SimTime(self.nanoseconds - SimTime.coerce(other).nanoseconds)

    def __mul__(self, factor: int) -> "SimTime":
        return SimTime(self.nanoseconds * factor)

    def __rmul__(self, factor: int) -> "SimTime":
        return self.__mul__(factor)

    def __floordiv__(self, other: "SimTime | int") -> int:
        return self.nanoseconds // SimTime.coerce(other).nanoseconds

    def __mod__(self, other: "SimTime | int") -> "SimTime":
        return SimTime(self.nanoseconds % SimTime.coerce(other).nanoseconds)

    def __neg__(self) -> "SimTime":
        return SimTime(-self.nanoseconds)

    def __bool__(self) -> bool:
        return self.nanoseconds != 0

    # -- ordering ---------------------------------------------------------
    # Hand-written with the SimTime/SimTime integer comparison first: the
    # @total_ordering dispatch chain (__gt__ -> not __lt__ and not __eq__)
    # showed up in kernel-loop profiles.
    def __eq__(self, other: object) -> bool:
        if isinstance(other, SimTime):
            return self.nanoseconds == other.nanoseconds
        if isinstance(other, (int, float)):
            return self.nanoseconds == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: "SimTime | int | float") -> bool:
        if isinstance(other, SimTime):
            return self.nanoseconds < other.nanoseconds
        if isinstance(other, (int, float)):
            return self.nanoseconds < other
        return NotImplemented

    def __le__(self, other: "SimTime | int | float") -> bool:
        if isinstance(other, SimTime):
            return self.nanoseconds <= other.nanoseconds
        if isinstance(other, (int, float)):
            return self.nanoseconds <= other
        return NotImplemented

    def __gt__(self, other: "SimTime | int | float") -> bool:
        if isinstance(other, SimTime):
            return self.nanoseconds > other.nanoseconds
        if isinstance(other, (int, float)):
            return self.nanoseconds > other
        return NotImplemented

    def __ge__(self, other: "SimTime | int | float") -> bool:
        if isinstance(other, SimTime):
            return self.nanoseconds >= other.nanoseconds
        if isinstance(other, (int, float)):
            return self.nanoseconds >= other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.nanoseconds)

    def __repr__(self) -> str:
        return f"SimTime({self.format()})"

    def format(self) -> str:
        """Render the time with the most natural unit."""
        value = self.nanoseconds
        if value == 0:
            return "0 s"
        for unit, name in ((SEC, "s"), (MS, "ms"), (US, "us")):
            if value % unit == 0:
                return f"{value // unit} {name}"
        return f"{value} ns"


ZERO_TIME = SimTime(0)
