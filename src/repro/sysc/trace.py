"""Waveform tracing.

The paper's case study probes BFM signals and variables in a waveform viewer
(Fig. 4).  :class:`TraceFile` records settled signal values over time and can
render a compact ASCII waveform or export VCD text, which is the headless
substitute for that viewer.

Since the observability bus landed, :class:`TraceFile` is a *sink* on the
bus's ``signal`` topic rather than a per-signal observer: ``trace(signal)``
subscribes it to the signal's simulator bus and records only the named
signals it was asked to probe.  Records are kept both in arrival order
(``records``) and in a per-signal index, so ``changes_of``/``value_at`` are
O(changes-of-that-signal) with a bisect instead of scanning the full run
history per query.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.obs.vcd import vcd_identifier, vcd_value, vcd_var
from repro.sysc.signal import Signal, SignalObserver
from repro.sysc.time import SimTime


@dataclass(frozen=True)
class TraceRecord:
    """One recorded value change."""

    time: SimTime
    signal: str
    old: object
    new: object


class TraceFile(SignalObserver):
    """Records value changes of the signals attached to it.

    Works as an observability-bus sink (``handle``) and still honours the
    legacy :class:`SignalObserver` interface (``on_change``) for callers that
    attach it to a signal directly.
    """

    topics = ("signal",)
    retains_events = False

    def __init__(self, name: str = "trace"):
        self.name = name
        self.records: List[TraceRecord] = []
        self._signals: List[Signal] = []
        self._initial: Dict[str, object] = {}
        self._names: Set[str] = set()
        self._traced_signals: Set[Signal] = set()
        self._by_signal: Dict[str, List[TraceRecord]] = {}
        self._times_ns: Dict[str, List[int]] = {}
        # Strong references so a bus is never mistaken for a later one that
        # happens to reuse its memory address (identity-based membership).
        self._subscribed_buses: Set[object] = set()

    # -- recording ----------------------------------------------------------
    def trace(self, signal: Signal) -> None:
        """Start tracing *signal*."""
        bus = signal._simulator.obs
        if bus not in self._subscribed_buses:
            bus.subscribe(self, ("signal",))
            self._subscribed_buses.add(bus)
        self._signals.append(signal)
        self._names.add(signal.name)
        self._traced_signals.add(signal)
        self._initial[signal.name] = signal.read()
        self._by_signal.setdefault(signal.name, [])
        self._times_ns.setdefault(signal.name, [])

    def handle(self, event) -> None:
        """Bus-sink entry point for ``signal``-topic events."""
        fields = event.fields
        # Filter by signal *identity* when the publisher provides it —
        # signal names are not required to be unique — falling back to the
        # name filter for synthetic events.
        publisher = fields.get("_signal")
        if publisher is not None:
            if publisher not in self._traced_signals:
                return
        elif fields["signal"] not in self._names:
            return
        self._record(SimTime(event.t_ns), fields["signal"], fields["old"], fields["new"])

    def on_change(self, signal: Signal, when: SimTime, old: object, new: object) -> None:
        """Legacy direct-observer entry point (``signal.attach_observer``)."""
        self._record(when, signal.name, old, new)

    def _record(self, when: SimTime, name: str, old: object, new: object) -> None:
        record = TraceRecord(when, name, old, new)
        self.records.append(record)
        self._by_signal.setdefault(name, []).append(record)
        self._times_ns.setdefault(name, []).append(when.nanoseconds)

    # -- queries ---------------------------------------------------------------
    def signal_names(self) -> List[str]:
        """Names of all traced signals."""
        return [signal.name for signal in self._signals]

    def changes_of(self, signal_name: str) -> List[TraceRecord]:
        """All recorded changes of one signal (indexed, not a full scan)."""
        return list(self._by_signal.get(signal_name, ()))

    def value_at(self, signal_name: str, when: "SimTime | int") -> object:
        """The settled value of *signal_name* at time *when* (bisect lookup)."""
        when_ns = SimTime.coerce(when).nanoseconds
        times = self._times_ns.get(signal_name)
        if not times:
            return self._initial.get(signal_name)
        index = bisect_right(times, when_ns)
        if index == 0:
            return self._initial.get(signal_name)
        return self._by_signal[signal_name][index - 1].new

    # -- rendering -------------------------------------------------------------
    def to_vcd(self, timescale: str = "1ns") -> str:
        """Render the trace as VCD text (value change dump)."""
        lines = [f"$timescale {timescale} $end", "$scope module trace $end"]
        identifiers: Dict[str, str] = {}
        for index, signal in enumerate(self._signals):
            identifier = vcd_identifier(index)
            identifiers[signal.name] = identifier
            lines.append(vcd_var(signal.name, self._initial.get(signal.name), identifier))
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("#0")
        for name, value in self._initial.items():
            if name in identifiers:
                lines.append(vcd_value(value, identifiers[name]))
        last_time = 0
        for record in self.records:
            if record.signal not in identifiers:
                continue
            time_ns = record.time.to_ns()
            if time_ns != last_time:
                lines.append(f"#{time_ns}")
                last_time = time_ns
            lines.append(vcd_value(record.new, identifiers[record.signal]))
        return "\n".join(lines)

    def render_ascii(
        self,
        signals: Optional[Sequence[str]] = None,
        start: "SimTime | int" = 0,
        stop: "SimTime | int | None" = None,
        step: "SimTime | int" = SimTime.ms(1),
        width: int = 60,
    ) -> str:
        """Render a sampled ASCII waveform of the selected signals."""
        names = list(signals) if signals is not None else self.signal_names()
        start = SimTime.coerce(start)
        step = SimTime.coerce(step)
        if stop is None:
            last = max((r.time for r in self.records), default=start)
            stop = last + step
        stop = SimTime.coerce(stop)
        samples = min(width, max(1, (stop - start) // step))
        lines = []
        for name in names:
            cells = []
            for index in range(samples):
                when = start + step * index
                value = self.value_at(name, when)
                cells.append(self._ascii_cell(value))
            lines.append(f"{name:<28} {''.join(cells)}")
        return "\n".join(lines)

    @staticmethod
    def _ascii_cell(value: object) -> str:
        if isinstance(value, bool):
            return "#" if value else "_"
        if value is None:
            return "."
        if isinstance(value, int):
            return str(value % 10)
        return "x"

    def __repr__(self) -> str:
        return f"TraceFile({self.name!r}, signals={len(self._signals)}, records={len(self.records)})"
