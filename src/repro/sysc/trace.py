"""Waveform tracing.

The paper's case study probes BFM signals and variables in a waveform viewer
(Fig. 4).  :class:`TraceFile` records settled signal values over time and can
render a compact ASCII waveform or export VCD text, which is the headless
substitute for that viewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sysc.signal import Signal, SignalObserver
from repro.sysc.time import SimTime


@dataclass(frozen=True)
class TraceRecord:
    """One recorded value change."""

    time: SimTime
    signal: str
    old: object
    new: object


class TraceFile(SignalObserver):
    """Records value changes of the signals attached to it."""

    def __init__(self, name: str = "trace"):
        self.name = name
        self.records: List[TraceRecord] = []
        self._signals: List[Signal] = []
        self._initial: Dict[str, object] = {}

    # -- recording ----------------------------------------------------------
    def trace(self, signal: Signal) -> None:
        """Start tracing *signal*."""
        signal.attach_observer(self)
        self._signals.append(signal)
        self._initial[signal.name] = signal.read()

    def on_change(self, signal: Signal, when: SimTime, old: object, new: object) -> None:
        self.records.append(TraceRecord(when, signal.name, old, new))

    # -- queries ---------------------------------------------------------------
    def signal_names(self) -> List[str]:
        """Names of all traced signals."""
        return [signal.name for signal in self._signals]

    def changes_of(self, signal_name: str) -> List[TraceRecord]:
        """All recorded changes of one signal."""
        return [record for record in self.records if record.signal == signal_name]

    def value_at(self, signal_name: str, when: "SimTime | int") -> object:
        """The settled value of *signal_name* at time *when*."""
        when = SimTime.coerce(when)
        value = self._initial.get(signal_name)
        for record in self.records:
            if record.signal != signal_name:
                continue
            if record.time > when:
                break
            value = record.new
        return value

    # -- rendering -------------------------------------------------------------
    def to_vcd(self, timescale: str = "1ns") -> str:
        """Render the trace as VCD text (value change dump)."""
        lines = [f"$timescale {timescale} $end", "$scope module trace $end"]
        identifiers: Dict[str, str] = {}
        for index, signal in enumerate(self._signals):
            identifier = chr(33 + index)
            identifiers[signal.name] = identifier
            lines.append(f"$var wire 32 {identifier} {signal.name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("#0")
        for name, value in self._initial.items():
            if name in identifiers:
                lines.append(self._vcd_value(value, identifiers[name]))
        last_time = 0
        for record in self.records:
            if record.signal not in identifiers:
                continue
            time_ns = record.time.to_ns()
            if time_ns != last_time:
                lines.append(f"#{time_ns}")
                last_time = time_ns
            lines.append(self._vcd_value(record.new, identifiers[record.signal]))
        return "\n".join(lines)

    @staticmethod
    def _vcd_value(value: object, identifier: str) -> str:
        if isinstance(value, bool):
            return f"{int(value)}{identifier}"
        if isinstance(value, int):
            return f"b{value:b} {identifier}"
        return f"s{value} {identifier}"

    def render_ascii(
        self,
        signals: Optional[Sequence[str]] = None,
        start: "SimTime | int" = 0,
        stop: "SimTime | int | None" = None,
        step: "SimTime | int" = SimTime.ms(1),
        width: int = 60,
    ) -> str:
        """Render a sampled ASCII waveform of the selected signals."""
        names = list(signals) if signals is not None else self.signal_names()
        start = SimTime.coerce(start)
        step = SimTime.coerce(step)
        if stop is None:
            last = max((r.time for r in self.records), default=start)
            stop = last + step
        stop = SimTime.coerce(stop)
        samples = min(width, max(1, (stop - start) // step))
        lines = []
        for name in names:
            cells = []
            for index in range(samples):
                when = start + step * index
                value = self.value_at(name, when)
                cells.append(self._ascii_cell(value))
            lines.append(f"{name:<28} {''.join(cells)}")
        return "\n".join(lines)

    @staticmethod
    def _ascii_cell(value: object) -> str:
        if isinstance(value, bool):
            return "#" if value else "_"
        if value is None:
            return "."
        if isinstance(value, int):
            return str(value % 10)
        return "x"

    def __repr__(self) -> str:
        return f"TraceFile({self.name!r}, signals={len(self._signals)}, records={len(self.records)})"
