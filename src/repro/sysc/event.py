"""SystemC-style events.

An :class:`SCEvent` is the primitive synchronization object of the substrate.
Processes wait on events (dynamic sensitivity) and anything may *notify* an
event:

* ``notify()`` — immediate notification: waiting processes become runnable in
  the current evaluation phase,
* ``notify_delta()`` — delta notification: waiting processes run in the next
  delta cycle at the same simulation time,
* ``notify_after(t)`` — timed notification: waiting processes run after the
  given simulation-time delay.

Only a single pending timed/delta notification exists per event, and an
earlier notification overrides a later one, matching SystemC semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sysc.time import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sysc.kernel import Simulator
    from repro.sysc.process import ProcessHandle


class SCEvent:
    """An event that processes can wait on and that models can notify."""

    _counter = 0

    def __init__(self, name: str = "", simulator: "Optional[Simulator]" = None):
        SCEvent._counter += 1
        self.name = name or f"event_{SCEvent._counter}"
        self._simulator = simulator
        self._waiting: "list[ProcessHandle]" = []
        # Generation counter identifying the currently pending notification
        # so a cancelled/overridden notification can be recognised when it
        # fires; integers instead of per-notify token objects keep the
        # signal-settle hot path allocation-free.
        self._notify_generation = 0
        self._pending_token: Optional[int] = None
        self._pending_time: Optional[SimTime] = None
        self.notify_count = 0

    # -- wiring -----------------------------------------------------------
    def bind(self, simulator: "Simulator") -> None:
        """Attach the event to a simulator (done lazily on first use)."""
        self._simulator = simulator

    @property
    def simulator(self) -> "Simulator":
        if self._simulator is None:
            from repro.sysc.kernel import Simulator

            self._simulator = Simulator.current()
        return self._simulator

    # -- sensitivity ------------------------------------------------------
    def add_waiter(self, process: "ProcessHandle") -> None:
        """Register *process* as dynamically sensitive to this event."""
        if process not in self._waiting:
            self._waiting.append(process)

    def remove_waiter(self, process: "ProcessHandle") -> None:
        """Remove *process* from the waiter list if present."""
        if process in self._waiting:
            self._waiting.remove(process)

    def waiter_count(self) -> int:
        """Number of processes currently waiting on the event."""
        return len(self._waiting)

    # -- notification -----------------------------------------------------
    def notify(self) -> None:
        """Immediate notification: wake waiters in the current evaluation."""
        self._cancel_pending()
        self.notify_count += 1
        self.simulator._trigger_event(self, immediate=True)

    def notify_delta(self) -> None:
        """Delta notification: wake waiters one delta cycle later."""
        # An immediate notification cannot be overridden; a delta notification
        # overrides any pending timed notification.
        if self._pending_time is not None and self._pending_time.nanoseconds > 0:
            self._cancel_pending()
        if self._pending_token is not None:
            return
        self._notify_generation = token = self._notify_generation + 1
        self._pending_token = token
        self._pending_time = ZERO_TIME
        self.simulator._schedule_event_notification(self, ZERO_TIME, token)

    def notify_after(self, delay: "SimTime | int") -> None:
        """Timed notification after *delay* (earlier notification wins)."""
        delay = SimTime.coerce(delay)
        if delay.nanoseconds <= 0:
            self.notify_delta()
            return
        if self._pending_token is not None:
            assert self._pending_time is not None
            if self._pending_time <= delay:
                return
            self._cancel_pending()
        self._notify_generation = token = self._notify_generation + 1
        self._pending_token = token
        self._pending_time = delay
        self.simulator._schedule_event_notification(self, delay, token)

    def cancel(self) -> None:
        """Cancel any pending delta/timed notification."""
        self._cancel_pending()

    def has_pending_notification(self) -> bool:
        """Whether a delta/timed notification is pending."""
        return self._pending_token is not None

    # -- kernel hooks -----------------------------------------------------
    def _cancel_pending(self) -> None:
        self._pending_token = None
        self._pending_time = None

    def _fire(self, token: int, _unused: object = None) -> bool:
        """Called by the kernel when a scheduled notification matures.

        Accepts (and ignores) the second activation-entry payload slot so it
        can sit directly in a ``(func, a, b)`` kernel entry.  Returns ``True``
        if the notification was still valid (not cancelled nor overridden)
        and waiters were woken.
        """
        if token != self._pending_token:
            return False
        self._pending_token = None
        self._pending_time = None
        self.notify_count += 1
        self.simulator._trigger_event(self, immediate=False)
        return True

    def _take_waiters(self) -> "list[ProcessHandle]":
        waiters = self._waiting
        self._waiting = []
        return waiters

    def __repr__(self) -> str:
        return f"SCEvent({self.name!r}, waiters={len(self._waiting)})"
