"""Periodic clocks.

:class:`Clock` is a self-toggling boolean :class:`~repro.sysc.signal.Signal`.
The paper's BFM contains a *Real Time Clock* with a default resolution of
1 ms that drives the kernel central module; that RTC is built on this class.
"""

from __future__ import annotations

from typing import Optional

from repro.sysc.kernel import Simulator
from repro.sysc.signal import Signal
from repro.sysc.time import SimTime


class Clock(Signal[bool]):
    """A boolean signal toggling with a fixed period.

    The clock starts low and produces its first rising edge after
    ``period * duty_cycle`` unless ``start_high`` is set, mirroring
    ``sc_clock``'s posedge-first behaviour closely enough for the models in
    this repository (which are all sensitive to the posedge only).
    """

    def __init__(
        self,
        name: str,
        period: "SimTime | int",
        duty_cycle: float = 0.5,
        start_high: bool = True,
        simulator: Optional[Simulator] = None,
    ):
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty_cycle must be strictly between 0 and 1")
        simulator = simulator or Simulator.current()
        super().__init__(name, initial=False, simulator=simulator)
        self.period = SimTime.coerce(period)
        if self.period.nanoseconds <= 0:
            raise ValueError("clock period must be positive")
        self.duty_cycle = duty_cycle
        self._high_time = SimTime(int(self.period.nanoseconds * duty_cycle))
        self._low_time = self.period - self._high_time
        # Integer phase durations for the toggle hot path (the kernel's
        # schedule_callback_ns fast lane — no SimTime coercion per edge).
        self._high_ns = self._high_time.nanoseconds
        self._low_ns = self._low_time.nanoseconds
        self._running = True
        self.posedge_count = 0
        if start_high:
            simulator.schedule_callback_ns(0, self._go_high)
        else:
            simulator.schedule_callback_ns(self._low_ns, self._go_high)

    def stop(self) -> None:
        """Stop toggling (used to end a bounded co-simulation cleanly)."""
        self._running = False

    def restart(self) -> None:
        """Resume toggling after :meth:`stop`."""
        if not self._running:
            self._running = True
            self._simulator.schedule_callback_ns(self._low_ns, self._go_high)

    def _go_high(self) -> None:
        if not self._running:
            return
        self.posedge_count += 1
        self.write(True)
        self._simulator.schedule_callback_ns(self._high_ns, self._go_low)

    def _go_low(self) -> None:
        if not self._running:
            return
        self.write(False)
        self._simulator.schedule_callback_ns(self._low_ns, self._go_high)

    def __repr__(self) -> str:
        return f"Clock({self.name!r}, period={self.period.format()})"
