"""SystemC-like discrete-event simulation substrate.

This package re-creates, in Python, the subset of the SystemC 2.0 simulation
semantics that the paper's SIM_API library relies on:

* a central simulator with an event wheel and delta cycles
  (:mod:`repro.sysc.kernel`),
* events supporting immediate, delta and timed notification
  (:mod:`repro.sysc.event`),
* ``SC_THREAD``-style processes implemented as Python generators with
  static and dynamic sensitivity (:mod:`repro.sysc.process`),
* signals with request/update semantics and value-changed events
  (:mod:`repro.sysc.signal`), clocks (:mod:`repro.sysc.clock`),
* modules to group processes (:mod:`repro.sysc.module`), and
* a VCD-style waveform tracer (:mod:`repro.sysc.trace`).

The public names below form the stable API used by :mod:`repro.core` and the
hardware models.
"""

from repro.sysc.time import SimTime, NS, US, MS, SEC, TimeUnit
from repro.sysc.event import SCEvent
from repro.sysc.process import (
    ProcessHandle,
    ProcessState,
    Wait,
    WaitEvent,
    WaitEventTimeout,
    WaitDelta,
)
from repro.sysc.kernel import Simulator, SimulationError, SimulationFinished
from repro.sysc.signal import Signal
from repro.sysc.clock import Clock
from repro.sysc.module import SCModule
from repro.sysc.trace import TraceFile, TraceRecord

__all__ = [
    "SimTime",
    "NS",
    "US",
    "MS",
    "SEC",
    "TimeUnit",
    "SCEvent",
    "ProcessHandle",
    "ProcessState",
    "Wait",
    "WaitEvent",
    "WaitEventTimeout",
    "WaitDelta",
    "Simulator",
    "SimulationError",
    "SimulationFinished",
    "Signal",
    "Clock",
    "SCModule",
    "TraceFile",
    "TraceRecord",
]
