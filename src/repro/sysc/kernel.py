"""The discrete-event simulation kernel.

:class:`Simulator` plays the role of the SystemC simulation kernel: it owns
simulated time, the timed event wheel, the delta-cycle machinery and the set
of processes.  The scheduling loop is the classic SystemC one:

1. *Evaluation phase* — run every runnable process until it waits or ends.
2. *Update phase* — apply primitive-channel (signal) update requests.
3. *Delta notification phase* — mature delta notifications; if any process
   became runnable go back to 1 within the same simulation time.
4. *Timed notification phase* — otherwise advance time to the earliest timed
   notification and repeat.

Processes are cooperative generators (see :mod:`repro.sysc.process`).  The
kernel is deliberately single-threaded: determinism is a requirement for the
RTOS model on top (the paper's SIM_API relies on SystemC's deterministic
cooperative scheduling).

The fast core (PR 3)
--------------------

The hot plane operates on plain ``int`` nanoseconds end-to-end;
:class:`~repro.sysc.time.SimTime` appears only at the public API boundary
(``now``, ``run``, ``schedule_callback`` arguments).  Two structural choices
carry the speed:

* **Timestamp buckets over an integer heap.**  Timed activations are grouped
  by their (integer) due time: ``{when_ns: [entries]}`` plus a heap of the
  *distinct* timestamps.  RTOS workloads are tick-aligned — many activations
  share each timestamp — so one heap operation amortises over a whole batch,
  FIFO order within an instant falls out of list append order (no per-entry
  sequence counter), and the same-timestamp batch pop is a plain list scan.
  An entry appended to the live bucket *during* its batch (a zero-delay
  callback) is still executed in that batch, matching the historical heapq
  behaviour.
* **Uniform ``(func, a, b)`` activation entries.**  Timed and delta
  activations both carry two payload slots invoked as ``func(a, b)`` —
  process wakes are ``(trampoline, process, wait_token)``, event
  notifications ``(event._fire, token, None)``, plain callbacks
  ``(self._run_callback, callback, None)`` — so the hot path never allocates
  a nested payload tuple or a closure.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Iterable, Tuple

from repro.obs.bus import EventBus
from repro.sysc.event import SCEvent
from repro.sysc.process import (
    ProcessHandle,
    ProcessState,
    ResumeReason,
    Wait,
    WaitDelta,
    WaitEvent,
    WaitEventTimeout,
    as_sensitivity,
)
from repro.sysc.time import SimTime, ZERO_TIME


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class SimulationFinished(Exception):
    """Raised internally when ``stop()`` terminates the simulation."""


#: One timed/delta activation ``(func, a, b)``.  ``func`` is either a real
#: callable invoked as ``func(a, b)`` or one of the sentinels below, which
#: the queue drains dispatch on by identity — the wake logic for each
#: sentinel kind exists exactly once, in its drain.
_Entry = Tuple[object, object, object]

#: Sentinel: wake process *a* from a timed wait if token *b* is current.
_TIMED_WAKE = object()
#: Sentinel: wake process *a* from a delta wait if token *b* is current.
_DELTA_WAKE = object()
#: Sentinel: time out process *a*'s event wait if token *b* is current.
_WAIT_TIMEOUT = object()


class Simulator:
    """A discrete-event simulator with SystemC-like scheduling semantics."""

    _current: "Optional[Simulator]" = None

    def __init__(self, name: str = "sim"):
        self.name = name
        # The int-nanosecond time plane; `now` materialises a SimTime lazily.
        self._now_ns = 0
        self._now_cache: SimTime = ZERO_TIME
        self._delta_count = 0
        # Timed activations bucketed by integer due time, with a heap of the
        # distinct timestamps.  Invariant: a timestamp is in the heap exactly
        # while its bucket exists (except the one being drained right now).
        self._timed_buckets: Dict[int, List[_Entry]] = {}
        self._timed_heap: List[int] = []
        self._timed_len = 0
        # Processes runnable in the current evaluation phase; each carries
        # its resume reason in `_resume_reason` (set at wake time).
        self._runnable: List[ProcessHandle] = []
        # Delta-cycle pending activations (event notifications & signal
        # wakes) — same (func, a, b) discipline as the timed plane.
        self._delta_callbacks: List[_Entry] = []
        # Signal/channel update requests for the update phase.
        self._update_requests: List[Callable[[], None]] = []
        self._processes: List[ProcessHandle] = []
        self._process_by_name: Dict[str, ProcessHandle] = {}
        self._running_process: Optional[ProcessHandle] = None
        self._stop_requested = False
        self._started = False
        self._elaborated = False
        # Hook invoked at every evaluation cycle; used by the co-simulation
        # speed harness to model host-side (GUI) overhead.
        self.cycle_hooks: List[Callable[["Simulator"], None]] = []
        # Hooks invoked after every timed advance, with the new time; the
        # campaign runner uses them for lightweight run instrumentation.
        self.advance_hooks: List[Callable[["Simulator", SimTime], None]] = []
        #: The observability bus of this simulation (one per simulator so
        #: concurrent/nested simulations never share instrumentation state).
        self.obs = EventBus()
        self._obs_kernel = self.obs.topic("kernel")
        # Bound method cached once so callback scheduling allocates no
        # fresh method object per request (process wakes use sentinels).
        self._on_run_callback = self._run_callback
        self._prior_current = Simulator._current
        Simulator._current = self

    # ------------------------------------------------------------------
    # Class-level access (mirrors sc_get_curr_simcontext)
    # ------------------------------------------------------------------
    @classmethod
    def current(cls) -> "Simulator":
        """Return the most recently created simulator."""
        if cls._current is None:
            raise SimulationError("no simulator has been created")
        return cls._current

    @classmethod
    def reset(cls) -> None:
        """Forget the class-level current simulator.

        Repeated in-process runs (the campaign batch runner, tests) call this
        between runs so that a finished simulation cannot leak into the next
        one through the ``Simulator.current()`` singleton.
        """
        cls._current = None

    def close(self) -> None:
        """Detach this simulator from the class-level current slot.

        Restores whichever simulator was current before this one was
        created, making nested construction (framework inside a campaign
        run) safe.  Idempotent.
        """
        if Simulator._current is self:
            Simulator._current = self._prior_current
        self._prior_current = None

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulation time (a cached boundary object)."""
        cache = self._now_cache
        if cache.nanoseconds != self._now_ns:
            self._now_cache = cache = SimTime(self._now_ns)  # simtime-boundary
        return cache

    @property
    def now_ns(self) -> int:
        """Current simulation time as an integer number of nanoseconds."""
        return self._now_ns

    @property
    def delta_count(self) -> int:
        """Number of delta cycles executed so far."""
        return self._delta_count

    @property
    def running_process(self) -> Optional[ProcessHandle]:
        """The process currently being evaluated (None between processes)."""
        return self._running_process

    def processes(self) -> List[ProcessHandle]:
        """All registered processes."""
        return list(self._processes)

    def get_process(self, name: str) -> ProcessHandle:
        """Look up a process by name."""
        try:
            return self._process_by_name[name]
        except KeyError:
            raise SimulationError(f"no process named {name!r}") from None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def create_event(self, name: str = "") -> SCEvent:
        """Create an event bound to this simulator."""
        return SCEvent(name, simulator=self)

    def register_thread(
        self,
        name: str,
        factory: Callable[[], object],
        sensitivity: "Optional[Iterable[SCEvent] | SCEvent]" = None,
        dont_initialize: bool = False,
    ) -> ProcessHandle:
        """Register an SC_THREAD-style process.

        ``factory`` must be a zero-argument callable returning a generator
        (typically a generator function).  ``sensitivity`` sets the static
        sensitivity list used by argument-less waits (``yield None``).  When
        ``dont_initialize`` is true the process is not made runnable at time
        zero; it waits for its static sensitivity first.
        """
        if name in self._process_by_name:
            raise SimulationError(f"duplicate process name {name!r}")
        handle = ProcessHandle(
            name=name,
            factory=factory,  # type: ignore[arg-type]
            simulator=self,
            static_sensitivity=as_sensitivity(sensitivity),
            dont_initialize=dont_initialize,
        )
        self._processes.append(handle)
        self._process_by_name[name] = handle
        if self._started:
            # Late (dynamic) process creation: elaborate it immediately.
            self._elaborate_process(handle)
        return handle

    def request_update(self, callback: Callable[[], None]) -> None:
        """Queue a primitive-channel update for the update phase."""
        self._update_requests.append(callback)

    # ------------------------------------------------------------------
    # Event scheduling hooks (used by SCEvent)
    # ------------------------------------------------------------------
    def _schedule_event_notification(
        self, event: SCEvent, delay: SimTime, token: object
    ) -> None:
        if delay.nanoseconds <= 0:
            self._delta_callbacks.append((event._fire, token, None))
        else:
            self._schedule_at_ns(
                self._now_ns + delay.nanoseconds, event._fire, token, None
            )

    def schedule_callback(self, delay: "SimTime | int", callback: Callable[[], None]) -> None:
        """Schedule *callback* to run after *delay* of simulated time."""
        delay_ns = delay.nanoseconds if isinstance(delay, SimTime) \
            else SimTime.coerce(delay).nanoseconds
        if delay_ns < 0:
            raise SimulationError("cannot schedule a callback in the past")
        self._schedule_at_ns(
            self._now_ns + delay_ns, self._on_run_callback, callback, None
        )

    def schedule_callback_ns(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Int-nanosecond fast path of :meth:`schedule_callback`."""
        if delay_ns < 0:
            raise SimulationError("cannot schedule a callback in the past")
        self._schedule_at_ns(
            self._now_ns + delay_ns, self._on_run_callback, callback, None
        )

    def _schedule_at_ns(
        self, when_ns: int, func: object, a: object, b: object
    ) -> None:
        """Append a timed activation (internal; *when_ns* must be >= now)."""
        bucket = self._timed_buckets.get(when_ns)
        if bucket is None:
            self._timed_buckets[when_ns] = bucket = []
            heappush(self._timed_heap, when_ns)
        bucket.append((func, a, b))
        self._timed_len += 1

    def _trigger_event(self, event: SCEvent, immediate: bool) -> None:
        """Wake every process waiting on *event*."""
        waiting = event._waiting
        if len(waiting) == 1:
            # The dominant notify shape (one suspended thread per run
            # event): wake in place without the _take_waiters list swap.
            process = waiting[0]
            waiting.clear()
            self._wake_process(process, ResumeReason.EVENT, event)
            return
        waiters = event._take_waiters()
        for process in waiters:
            self._wake_process(process, ResumeReason.EVENT, event)

    def _wake_process(
        self, process: ProcessHandle, reason: ResumeReason, event: Optional[SCEvent] = None
    ) -> None:
        if process.state is not ProcessState.WAITING:
            # TERMINATED, or already woken in this phase.
            return
        # Detach from whatever the process was waiting on.
        waiting_on = process.waiting_on
        if waiting_on is not None and waiting_on is not event:
            waiting_on.remove_waiter(process)
        process.waiting_on = None
        process._timeout_token += 1  # invalidate any pending timeout
        process.state = ProcessState.READY
        process._resume_reason = reason
        self._runnable.append(process)

    # Process wakes are queued as (_TIMED_WAKE | _DELTA_WAKE | _WAIT_TIMEOUT,
    # process, token) sentinel entries and handled inline by the queue
    # drains.  Every queued wake carries the process's wait-generation token
    # from scheduling time; throw_into/_wake_process bump the token, so a
    # stale entry surviving in the delta/timed queues can never fire into a
    # *later* wait of the same process.

    @staticmethod
    def _run_callback(callback: Callable[[], None], _unused: object) -> None:
        callback()

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def _elaborate(self) -> None:
        if self._elaborated:
            return
        self._elaborated = True
        for process in list(self._processes):
            self._elaborate_process(process)

    def _elaborate_process(self, process: ProcessHandle) -> None:
        if process.state is ProcessState.TERMINATED:
            # Killed before it ever started (throw_into on a never-started
            # process): elaboration must not resurrect it.
            return
        process.start()
        topic = self._obs_kernel
        if topic.enabled:
            topic.emit("process_start", self._now_ns, process=process.name)
        if process.dont_initialize:
            process.state = ProcessState.WAITING
            self._subscribe_static(process)
        else:
            process.state = ProcessState.READY
            process._resume_reason = ResumeReason.START
            self._runnable.append(process)

    def _subscribe_static(self, process: ProcessHandle) -> None:
        if not process.static_sensitivity:
            raise SimulationError(
                f"process {process.name!r} waits on static sensitivity "
                "but has an empty sensitivity list"
            )
        for event in process.static_sensitivity:
            event.add_waiter(process)
        # waiting_on is used for single-event bookkeeping; static sensitivity
        # may involve several events so leave it unset and rely on
        # remove_waiter calls when the process resumes.
        process.waiting_on = None

    # ------------------------------------------------------------------
    # The scheduler
    # ------------------------------------------------------------------
    def run(self, duration: "SimTime | int | None" = None) -> SimTime:
        """Run the simulation.

        With no *duration* the simulation runs until no activity remains or
        :meth:`stop` is called.  With a duration it runs for at most that much
        additional simulated time.  Returns the simulation time reached.
        """
        self._elaborate()
        self._started = True
        self._stop_requested = False
        end_ns: Optional[int] = None
        if duration is not None:
            end_ns = self._now_ns + SimTime.coerce(duration).nanoseconds

        heap = self._timed_heap
        try:
            while True:
                self._evaluate_and_update()
                if self._stop_requested:
                    break
                if self._runnable:
                    continue
                if not heap:
                    break
                next_ns = heap[0]
                if end_ns is not None and next_ns > end_ns:
                    # Advance to the horizon (not the event) so advance
                    # hooks observe the final interval of the run too.
                    self._advance_to_ns(end_ns)
                    break
                self._advance_to_ns(next_ns)
        except SimulationFinished:
            pass
        if end_ns is not None and self._now_ns < end_ns and not heap \
                and not self._runnable and not self._stop_requested:
            # Nothing left to do: report the requested horizon anyway.
            self._advance_to_ns(end_ns)
        return self.now

    def stop(self) -> None:
        """Request simulation stop (honoured at the next scheduling point)."""
        self._stop_requested = True

    # -- internal phases ---------------------------------------------------
    def _evaluate_and_update(self) -> None:
        """Run evaluation/update/delta phases until no delta activity remains.

        The evaluation loop and the ``Wait`` request handling are inlined:
        this is the hottest code in the simulator and every function call
        here is paid once per process resume.
        """
        obs_kernel = self._obs_kernel
        terminated = ProcessState.TERMINATED
        running = ProcessState.RUNNING
        waiting = ProcessState.WAITING
        buckets = self._timed_buckets
        heap = self._timed_heap
        timed_wake = _TIMED_WAKE
        delta_wake = _DELTA_WAKE
        ready = ProcessState.READY
        delta_reason = ResumeReason.DELTA
        while True:
            if self._runnable:
                self._delta_count += 1
                if obs_kernel.enabled:
                    obs_kernel.emit(
                        "delta", self._now_ns,
                        cycle=self._delta_count, runnable=len(self._runnable),
                    )
                if self.cycle_hooks:
                    for hook in self.cycle_hooks:
                        hook(self)
                # Evaluation phase.
                runnable, self._runnable = self._runnable, []
                now_ns = self._now_ns
                for process in runnable:
                    if process.state is terminated:
                        continue
                    process.state = running
                    process.resume_count = resume_count = process.resume_count + 1
                    self._running_process = process
                    try:
                        if resume_count != 1:
                            request = process._send(process._resume_reason)
                        else:
                            # First activation: a just-started generator
                            # cannot receive a value; prime it with next().
                            request = next(process.generator)
                    except StopIteration:
                        self._running_process = None
                        self._mark_process_end(process)
                        if self._stop_requested:
                            break
                        continue
                    except SimulationFinished:
                        self._running_process = None
                        self._mark_process_end(process)
                        raise
                    except BaseException:
                        self._running_process = None
                        raise
                    self._running_process = None
                    if type(request) is Wait:
                        process.state = waiting
                        duration_ns = request.duration.nanoseconds
                        if duration_ns > 0:
                            when_ns = now_ns + duration_ns
                            bucket = buckets.get(when_ns)
                            if bucket is None:
                                buckets[when_ns] = bucket = []
                                heappush(heap, when_ns)
                            bucket.append(
                                (timed_wake, process, process._timeout_token)
                            )
                            self._timed_len += 1
                        else:
                            self._delta_callbacks.append(
                                (delta_wake, process, process._timeout_token)
                            )
                    else:
                        self._apply_wait_request(process, request)
                    if self._stop_requested:
                        break
            # Update phase.
            if self._update_requests:
                updates, self._update_requests = self._update_requests, []
                for update in updates:
                    update()
            # Delta notification phase.
            if self._delta_callbacks:
                callbacks, self._delta_callbacks = self._delta_callbacks, []
                append_runnable = self._runnable.append
                for func, a, b in callbacks:
                    if func is delta_wake:
                        # Delta wake of a process (the common entry kind).
                        if a._timeout_token == b and a.state is waiting:
                            waiting_on = a.waiting_on
                            if waiting_on is not None:
                                waiting_on.remove_waiter(a)
                                a.waiting_on = None
                            a._timeout_token = b + 1
                            a.state = ready
                            a._resume_reason = delta_reason
                            append_runnable(a)
                    else:
                        func(a, b)
            if self._stop_requested:
                return
            if not self._runnable:
                return

    def _mark_process_end(self, process: ProcessHandle) -> None:
        """Terminate *process* and publish its lifecycle end event."""
        process._mark_terminated()
        topic = self._obs_kernel
        if topic.enabled:
            topic.emit(
                "process_end", self._now_ns,
                process=process.name, resumes=process.resume_count,
            )

    def _apply_wait_request(self, process: ProcessHandle, request: object) -> None:
        process.state = ProcessState.WAITING
        if type(request) is Wait:
            # The dominant request kind: checked first, scheduled inline.
            duration_ns = request.duration.nanoseconds
            if duration_ns > 0:
                when_ns = self._now_ns + duration_ns
                bucket = self._timed_buckets.get(when_ns)
                if bucket is None:
                    self._timed_buckets[when_ns] = bucket = []
                    heappush(self._timed_heap, when_ns)
                bucket.append(
                    (_TIMED_WAKE, process, process._timeout_token)
                )
                self._timed_len += 1
            else:
                self._delta_callbacks.append(
                    (_DELTA_WAKE, process, process._timeout_token)
                )
            return
        if type(request) is WaitEvent:
            request.event.add_waiter(process)
            process.waiting_on = request.event
            return
        if request is None:
            # Argument-less wait: static sensitivity.
            self._subscribe_static(process)
            return
        if type(request) is WaitEventTimeout:
            if request.timeout.nanoseconds < 0:
                raise SimulationError("cannot schedule a callback in the past")
            request.event.add_waiter(process)
            process.waiting_on = request.event
            token = process._timeout_token + 1
            process._timeout_token = token
            self._schedule_at_ns(
                self._now_ns + request.timeout.nanoseconds,
                _WAIT_TIMEOUT, process, token,
            )
            return
        if type(request) is WaitDelta:
            self._delta_callbacks.append(
                (_DELTA_WAKE, process, process._timeout_token)
            )
            return
        if isinstance(request, SCEvent):
            # Allow yielding a bare event as shorthand for WaitEvent.
            request.add_waiter(process)
            process.waiting_on = request
            return
        # Subclassed wait-request kinds (the exact-type checks above missed):
        # re-enter through the same branches so the semantics exist once.
        if isinstance(request, Wait):
            duration_ns = request.duration.nanoseconds
            if duration_ns > 0:
                self._schedule_at_ns(
                    self._now_ns + duration_ns,
                    _TIMED_WAKE, process, process._timeout_token,
                )
            else:
                self._delta_callbacks.append(
                    (_DELTA_WAKE, process, process._timeout_token)
                )
            return
        if isinstance(request, WaitEvent):
            request.event.add_waiter(process)
            process.waiting_on = request.event
            return
        if isinstance(request, WaitEventTimeout):
            if request.timeout.nanoseconds < 0:
                raise SimulationError("cannot schedule a callback in the past")
            request.event.add_waiter(process)
            process.waiting_on = request.event
            token = process._timeout_token + 1
            process._timeout_token = token
            self._schedule_at_ns(
                self._now_ns + request.timeout.nanoseconds,
                _WAIT_TIMEOUT, process, token,
            )
            return
        if isinstance(request, WaitDelta):
            self._delta_callbacks.append(
                (_DELTA_WAKE, process, process._timeout_token)
            )
            return
        raise SimulationError(
            f"process {process.name!r} yielded an unsupported wait request: {request!r}"
        )

    def throw_into(self, process: ProcessHandle, exception: BaseException) -> None:
        """Raise *exception* inside a waiting process, synchronously.

        The process resumes at its current wait point with the exception
        raised there; any new wait request it yields while unwinding is
        honoured.  Used by RTOS models to force-terminate a task
        (``tk_ter_tsk``) whose body is suspended somewhere in the middle.
        """
        if process.state is ProcessState.TERMINATED:
            return
        if process.state is ProcessState.RUNNING:
            raise SimulationError("cannot throw into the currently running process")
        # Detach the process from whatever it is waiting on.
        if process.waiting_on is not None:
            process.waiting_on.remove_waiter(process)
            process.waiting_on = None
        for event in process.static_sensitivity:
            event.remove_waiter(process)
        process._timeout_token += 1
        # Drop any queued activation of this process — in place: the queue
        # drains cache `self._runnable.append`, so the list object must
        # never be swapped out from under a running drain.
        self._runnable[:] = [p for p in self._runnable if p is not process]
        if process.generator is None:
            # Never elaborated/started: there is no body to unwind, the
            # process simply dies (mirrors terminating a dormant task).
            self._mark_process_end(process)
            return
        previous = self._running_process
        self._running_process = process
        process.state = ProcessState.RUNNING
        try:
            request = process.generator.throw(exception)
        except StopIteration:
            self._mark_process_end(process)
            return
        except type(exception):
            # The body let the exception escape entirely: the process dies.
            self._mark_process_end(process)
            return
        finally:
            self._running_process = previous
        self._apply_wait_request(process, request)

    def _advance_to_ns(self, when_ns: int) -> None:
        if when_ns < self._now_ns:
            raise SimulationError("time cannot move backwards")
        self._now_ns = when_ns
        topic = self._obs_kernel
        if topic.enabled:
            topic.emit("advance", when_ns, pending=self._timed_len)
        if self.advance_hooks:
            when = self.now
            for hook in self.advance_hooks:
                hook(self, when)
        # Drain the bucket scheduled for this instant, if any.  Entries
        # appended to the live bucket during the drain (zero-delay
        # callbacks) run within the same batch.
        heap = self._timed_heap
        if heap and heap[0] == when_ns:
            heappop(heap)
            buckets = self._timed_buckets
            bucket = buckets[when_ns]
            waiting = ProcessState.WAITING
            ready = ProcessState.READY
            time_reason = ResumeReason.TIME
            timeout_reason = ResumeReason.TIMEOUT
            append_runnable = self._runnable.append
            index = 0
            try:
                while index < len(bucket):
                    func, a, b = bucket[index]
                    index += 1
                    if func is _TIMED_WAKE:
                        # Timed wake of a process (the dominant entry kind).
                        if a._timeout_token == b and a.state is waiting:
                            waiting_on = a.waiting_on
                            if waiting_on is not None:
                                waiting_on.remove_waiter(a)
                                a.waiting_on = None
                            a._timeout_token = b + 1
                            a.state = ready
                            a._resume_reason = time_reason
                            append_runnable(a)
                    elif func is _WAIT_TIMEOUT:
                        # Event-wait timeout: if the token still matches, the
                        # wait that scheduled it is still active, so
                        # `waiting_on` is exactly its event.  The token is
                        # (historically) not bumped here.
                        if a._timeout_token == b and a.state is waiting:
                            event = a.waiting_on
                            if event is not None:
                                event.remove_waiter(a)
                            a.waiting_on = None
                            a.state = ready
                            a._resume_reason = timeout_reason
                            append_runnable(a)
                    else:
                        func(a, b)
            finally:
                # Keep the queue invariant even when an entry raises: drop
                # the executed prefix, and either retire the bucket or put
                # its (unprocessed) remainder back under its timestamp —
                # mirroring the old heapq behaviour, where entries not yet
                # popped simply stayed queued.
                self._timed_len -= index
                if index < len(bucket):
                    del bucket[:index]
                    heappush(heap, when_ns)
                else:
                    del buckets[when_ns]

    # ------------------------------------------------------------------
    # Convenience helpers for tests & examples
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Kernel-level counters of the run so far (campaign instrumentation)."""
        return {
            "now_ms": self._now_ns / 1_000_000,
            "delta_cycles": float(self._delta_count),
            "processes": float(len(self._processes)),
            "terminated_processes": float(
                sum(1 for p in self._processes if p.state is ProcessState.TERMINATED)
            ),
        }

    def pending_activity(self) -> bool:
        """Whether any runnable process or scheduled activity remains."""
        return bool(self._runnable or self._delta_callbacks or self._timed_buckets)

    def time_to_next_activity(self) -> Optional[SimTime]:
        """Delay until the next timed activity, or None if none is pending."""
        if not self._timed_heap:
            return None
        return SimTime(self._timed_heap[0] - self._now_ns)  # simtime-boundary

    def __repr__(self) -> str:
        return (
            f"Simulator({self.name!r}, now={self.now.format()}, "
            f"processes={len(self._processes)})"
        )
