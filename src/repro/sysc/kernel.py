"""The discrete-event simulation kernel.

:class:`Simulator` plays the role of the SystemC simulation kernel: it owns
simulated time, the timed event wheel, the delta-cycle machinery and the set
of processes.  The scheduling loop is the classic SystemC one:

1. *Evaluation phase* — run every runnable process until it waits or ends.
2. *Update phase* — apply primitive-channel (signal) update requests.
3. *Delta notification phase* — mature delta notifications; if any process
   became runnable go back to 1 within the same simulation time.
4. *Timed notification phase* — otherwise advance time to the earliest timed
   notification and repeat.

Processes are cooperative generators (see :mod:`repro.sysc.process`).  The
kernel is deliberately single-threaded: determinism is a requirement for the
RTOS model on top (the paper's SIM_API relies on SystemC's deterministic
cooperative scheduling).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.bus import EventBus
from repro.sysc.event import SCEvent
from repro.sysc.process import (
    ProcessHandle,
    ProcessState,
    ResumeReason,
    Wait,
    WaitDelta,
    WaitEvent,
    WaitEventTimeout,
    as_sensitivity,
)
from repro.sysc.time import SimTime


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class SimulationFinished(Exception):
    """Raised internally when ``stop()`` terminates the simulation."""


#: Sentinel payload for timed-queue entries whose callable takes no argument.
_NO_PAYLOAD = object()


class Simulator:
    """A discrete-event simulator with SystemC-like scheduling semantics."""

    _current: "Optional[Simulator]" = None

    def __init__(self, name: str = "sim"):
        self.name = name
        self._now = SimTime(0)
        self._delta_count = 0
        self._sequence = itertools.count()
        # Timed queue entries: (time_ns, seq, func, payload).  func is called
        # with payload, or with no argument when payload is _NO_PAYLOAD; this
        # keeps the hot wait path free of per-wait closure allocations.
        self._timed_queue: List[Tuple[int, int, Callable, object]] = []
        # Processes runnable in the current evaluation phase.
        self._runnable: List[Tuple[ProcessHandle, ResumeReason]] = []
        # Delta-cycle pending activations (event notifications & signal
        # wakes) as (func, payload) pairs — same no-closure discipline.
        self._delta_callbacks: List[Tuple[Callable, object]] = []
        # Signal/channel update requests for the update phase.
        self._update_requests: List[Callable[[], None]] = []
        self._processes: List[ProcessHandle] = []
        self._process_by_name: Dict[str, ProcessHandle] = {}
        self._running_process: Optional[ProcessHandle] = None
        self._stop_requested = False
        self._started = False
        self._elaborated = False
        # Hook invoked at every evaluation cycle; used by the co-simulation
        # speed harness to model host-side (GUI) overhead.
        self.cycle_hooks: List[Callable[["Simulator"], None]] = []
        # Hooks invoked after every timed advance, with the new time; the
        # campaign runner uses them for lightweight run instrumentation.
        self.advance_hooks: List[Callable[["Simulator", SimTime], None]] = []
        #: The observability bus of this simulation (one per simulator so
        #: concurrent/nested simulations never share instrumentation state).
        self.obs = EventBus()
        self._obs_kernel = self.obs.topic("kernel")
        # Bound methods cached once so the wait hot path allocates neither
        # closures nor fresh method objects per wait request.
        self._on_delta_wake = self._delta_wake
        self._on_timed_wake = self._timed_wake
        self._on_wait_timeout = self._wait_timeout
        self._prior_current = Simulator._current
        Simulator._current = self

    # ------------------------------------------------------------------
    # Class-level access (mirrors sc_get_curr_simcontext)
    # ------------------------------------------------------------------
    @classmethod
    def current(cls) -> "Simulator":
        """Return the most recently created simulator."""
        if cls._current is None:
            raise SimulationError("no simulator has been created")
        return cls._current

    @classmethod
    def reset(cls) -> None:
        """Forget the class-level current simulator.

        Repeated in-process runs (the campaign batch runner, tests) call this
        between runs so that a finished simulation cannot leak into the next
        one through the ``Simulator.current()`` singleton.
        """
        cls._current = None

    def close(self) -> None:
        """Detach this simulator from the class-level current slot.

        Restores whichever simulator was current before this one was
        created, making nested construction (framework inside a campaign
        run) safe.  Idempotent.
        """
        if Simulator._current is self:
            Simulator._current = self._prior_current
        self._prior_current = None

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulation time."""
        return self._now

    @property
    def delta_count(self) -> int:
        """Number of delta cycles executed so far."""
        return self._delta_count

    @property
    def running_process(self) -> Optional[ProcessHandle]:
        """The process currently being evaluated (None between processes)."""
        return self._running_process

    def processes(self) -> List[ProcessHandle]:
        """All registered processes."""
        return list(self._processes)

    def get_process(self, name: str) -> ProcessHandle:
        """Look up a process by name."""
        try:
            return self._process_by_name[name]
        except KeyError:
            raise SimulationError(f"no process named {name!r}") from None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def create_event(self, name: str = "") -> SCEvent:
        """Create an event bound to this simulator."""
        return SCEvent(name, simulator=self)

    def register_thread(
        self,
        name: str,
        factory: Callable[[], object],
        sensitivity: "Optional[Iterable[SCEvent] | SCEvent]" = None,
        dont_initialize: bool = False,
    ) -> ProcessHandle:
        """Register an SC_THREAD-style process.

        ``factory`` must be a zero-argument callable returning a generator
        (typically a generator function).  ``sensitivity`` sets the static
        sensitivity list used by argument-less waits (``yield None``).  When
        ``dont_initialize`` is true the process is not made runnable at time
        zero; it waits for its static sensitivity first.
        """
        if name in self._process_by_name:
            raise SimulationError(f"duplicate process name {name!r}")
        handle = ProcessHandle(
            name=name,
            factory=factory,  # type: ignore[arg-type]
            simulator=self,
            static_sensitivity=as_sensitivity(sensitivity),
            dont_initialize=dont_initialize,
        )
        self._processes.append(handle)
        self._process_by_name[name] = handle
        if self._started:
            # Late (dynamic) process creation: elaborate it immediately.
            self._elaborate_process(handle)
        return handle

    def request_update(self, callback: Callable[[], None]) -> None:
        """Queue a primitive-channel update for the update phase."""
        self._update_requests.append(callback)

    # ------------------------------------------------------------------
    # Event scheduling hooks (used by SCEvent)
    # ------------------------------------------------------------------
    def _schedule_event_notification(
        self, event: SCEvent, delay: SimTime, token: object
    ) -> None:
        if delay.nanoseconds <= 0:
            self._delta_callbacks.append((event._fire, token))
        else:
            self._schedule_at(delay, event._fire, token)

    def schedule_callback(self, delay: "SimTime | int", callback: Callable[[], None]) -> None:
        """Schedule *callback* to run after *delay* of simulated time."""
        delay = SimTime.coerce(delay)
        if delay.nanoseconds < 0:
            raise SimulationError("cannot schedule a callback in the past")
        self._schedule_at(delay, callback, _NO_PAYLOAD)

    def _schedule_at(self, delay: SimTime, func: Callable, payload: object) -> None:
        """Push a timed-queue entry (internal; *delay* must be non-negative)."""
        when_ns = self._now.nanoseconds + delay.nanoseconds
        heapq.heappush(
            self._timed_queue, (when_ns, next(self._sequence), func, payload)
        )

    def _trigger_event(self, event: SCEvent, immediate: bool) -> None:
        """Wake every process waiting on *event*."""
        waiters = event._take_waiters()
        for process in waiters:
            self._wake_process(process, ResumeReason.EVENT, event)

    def _wake_process(
        self, process: ProcessHandle, reason: ResumeReason, event: Optional[SCEvent] = None
    ) -> None:
        if process.state is ProcessState.TERMINATED:
            return
        if process.state is not ProcessState.WAITING:
            return
        # Detach from whatever the process was waiting on.
        if process.waiting_on is not None and process.waiting_on is not event:
            process.waiting_on.remove_waiter(process)
        process.waiting_on = None
        process._timeout_token += 1  # invalidate any pending timeout
        process.state = ProcessState.READY
        process._resume_reason = reason
        self._runnable.append((process, reason))

    # -- no-allocation wake/timeout trampolines (cached in __init__) -------
    # Every queued wake carries the process's wait-generation token from
    # scheduling time; throw_into/_wake_process bump the token, so a stale
    # entry surviving in the delta/timed queues can never fire into a
    # *later* wait of the same process.
    def _delta_wake(self, payload: "Tuple[ProcessHandle, int]") -> None:
        process, token = payload
        if process._timeout_token == token:
            self._wake_process(process, ResumeReason.DELTA)

    def _timed_wake(self, payload: "Tuple[ProcessHandle, int]") -> None:
        process, token = payload
        if process._timeout_token == token:
            self._wake_process(process, ResumeReason.TIME)

    def _wait_timeout(self, payload: "Tuple[ProcessHandle, int, SCEvent]") -> None:
        process, token, event = payload
        if process._timeout_token == token and process.state is ProcessState.WAITING:
            event.remove_waiter(process)
            process.waiting_on = None
            process.state = ProcessState.READY
            process._resume_reason = ResumeReason.TIMEOUT
            self._runnable.append((process, ResumeReason.TIMEOUT))

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def _elaborate(self) -> None:
        if self._elaborated:
            return
        self._elaborated = True
        for process in list(self._processes):
            self._elaborate_process(process)

    def _elaborate_process(self, process: ProcessHandle) -> None:
        if process.state is ProcessState.TERMINATED:
            # Killed before it ever started (throw_into on a never-started
            # process): elaboration must not resurrect it.
            return
        process.start()
        topic = self._obs_kernel
        if topic.enabled:
            topic.emit("process_start", self._now.nanoseconds, process=process.name)
        if process.dont_initialize:
            process.state = ProcessState.WAITING
            self._subscribe_static(process)
        else:
            process.state = ProcessState.READY
            self._runnable.append((process, ResumeReason.START))

    def _subscribe_static(self, process: ProcessHandle) -> None:
        if not process.static_sensitivity:
            raise SimulationError(
                f"process {process.name!r} waits on static sensitivity "
                "but has an empty sensitivity list"
            )
        for event in process.static_sensitivity:
            event.add_waiter(process)
        # waiting_on is used for single-event bookkeeping; static sensitivity
        # may involve several events so leave it unset and rely on
        # remove_waiter calls when the process resumes.
        process.waiting_on = None

    # ------------------------------------------------------------------
    # The scheduler
    # ------------------------------------------------------------------
    def run(self, duration: "SimTime | int | None" = None) -> SimTime:
        """Run the simulation.

        With no *duration* the simulation runs until no activity remains or
        :meth:`stop` is called.  With a duration it runs for at most that much
        additional simulated time.  Returns the simulation time reached.
        """
        self._elaborate()
        self._started = True
        self._stop_requested = False
        end_time: Optional[SimTime] = None
        if duration is not None:
            end_time = self._now + SimTime.coerce(duration)

        try:
            while True:
                self._evaluate_and_update()
                if self._stop_requested:
                    break
                if self._runnable:
                    continue
                if not self._timed_queue:
                    break
                next_time_ns = self._timed_queue[0][0]
                if end_time is not None and next_time_ns > end_time.nanoseconds:
                    # Advance to the horizon (not the event) so advance
                    # hooks observe the final interval of the run too.
                    self._advance_to(end_time)
                    break
                self._advance_to(SimTime(next_time_ns))
        except SimulationFinished:
            pass
        if end_time is not None and self._now < end_time and not self._timed_queue \
                and not self._runnable and not self._stop_requested:
            # Nothing left to do: report the requested horizon anyway.
            self._advance_to(end_time)
        return self._now

    def stop(self) -> None:
        """Request simulation stop (honoured at the next scheduling point)."""
        self._stop_requested = True

    # -- internal phases ---------------------------------------------------
    def _evaluate_and_update(self) -> None:
        """Run evaluation/update/delta phases until no delta activity remains."""
        obs_kernel = self._obs_kernel
        while True:
            if self._runnable:
                self._delta_count += 1
                if obs_kernel.enabled:
                    obs_kernel.emit(
                        "delta", self._now.nanoseconds,
                        cycle=self._delta_count, runnable=len(self._runnable),
                    )
                for hook in self.cycle_hooks:
                    hook(self)
                self._evaluation_phase()
            # Update phase.
            if self._update_requests:
                updates, self._update_requests = self._update_requests, []
                for update in updates:
                    update()
            # Delta notification phase.
            if self._delta_callbacks:
                callbacks, self._delta_callbacks = self._delta_callbacks, []
                for func, payload in callbacks:
                    func(payload)
            if self._stop_requested:
                return
            if not self._runnable:
                return

    def _evaluation_phase(self) -> None:
        runnable, self._runnable = self._runnable, []
        for process, reason in runnable:
            if process.state is ProcessState.TERMINATED:
                continue
            self._resume_process(process, reason)
            if self._stop_requested:
                return

    def _resume_process(self, process: ProcessHandle, reason: ResumeReason) -> None:
        process.state = ProcessState.RUNNING
        process.resume_count += 1
        previous = self._running_process
        self._running_process = process
        try:
            assert process.generator is not None
            if process.resume_count == 1:
                # First activation: a just-started generator cannot receive a
                # value, so prime it with next().
                request = next(process.generator)
            else:
                request = process.generator.send(reason)
        except StopIteration:
            self._mark_process_end(process)
            return
        except SimulationFinished:
            self._mark_process_end(process)
            raise
        finally:
            self._running_process = previous
        self._apply_wait_request(process, request)

    def _mark_process_end(self, process: ProcessHandle) -> None:
        """Terminate *process* and publish its lifecycle end event."""
        process._mark_terminated()
        topic = self._obs_kernel
        if topic.enabled:
            topic.emit(
                "process_end", self._now.nanoseconds,
                process=process.name, resumes=process.resume_count,
            )

    def _apply_wait_request(self, process: ProcessHandle, request: object) -> None:
        process.state = ProcessState.WAITING
        if request is None:
            # Argument-less wait: static sensitivity.
            self._subscribe_static(process)
            return
        if isinstance(request, Wait):
            if request.duration.nanoseconds <= 0:
                self._delta_callbacks.append(
                    (self._on_delta_wake, (process, process._timeout_token))
                )
            else:
                self._schedule_at(
                    request.duration, self._on_timed_wake,
                    (process, process._timeout_token),
                )
            return
        if isinstance(request, WaitDelta):
            self._delta_callbacks.append(
                (self._on_delta_wake, (process, process._timeout_token))
            )
            return
        if isinstance(request, WaitEvent):
            request.event.add_waiter(process)
            process.waiting_on = request.event
            return
        if isinstance(request, WaitEventTimeout):
            if request.timeout.nanoseconds < 0:
                raise SimulationError("cannot schedule a callback in the past")
            request.event.add_waiter(process)
            process.waiting_on = request.event
            token = process._timeout_token + 1
            process._timeout_token = token
            self._schedule_at(
                request.timeout, self._on_wait_timeout, (process, token, request.event)
            )
            return
        if isinstance(request, SCEvent):
            # Allow yielding a bare event as shorthand for WaitEvent.
            request.add_waiter(process)
            process.waiting_on = request
            return
        raise SimulationError(
            f"process {process.name!r} yielded an unsupported wait request: {request!r}"
        )

    def throw_into(self, process: ProcessHandle, exception: BaseException) -> None:
        """Raise *exception* inside a waiting process, synchronously.

        The process resumes at its current wait point with the exception
        raised there; any new wait request it yields while unwinding is
        honoured.  Used by RTOS models to force-terminate a task
        (``tk_ter_tsk``) whose body is suspended somewhere in the middle.
        """
        if process.state is ProcessState.TERMINATED:
            return
        if process.state is ProcessState.RUNNING:
            raise SimulationError("cannot throw into the currently running process")
        # Detach the process from whatever it is waiting on.
        if process.waiting_on is not None:
            process.waiting_on.remove_waiter(process)
            process.waiting_on = None
        for event in process.static_sensitivity:
            event.remove_waiter(process)
        process._timeout_token += 1
        # Drop any queued activation of this process.
        self._runnable = [(p, r) for (p, r) in self._runnable if p is not process]
        if process.generator is None:
            # Never elaborated/started: there is no body to unwind, the
            # process simply dies (mirrors terminating a dormant task).
            self._mark_process_end(process)
            return
        previous = self._running_process
        self._running_process = process
        process.state = ProcessState.RUNNING
        try:
            request = process.generator.throw(exception)
        except StopIteration:
            self._mark_process_end(process)
            return
        except type(exception):
            # The body let the exception escape entirely: the process dies.
            self._mark_process_end(process)
            return
        finally:
            self._running_process = previous
        self._apply_wait_request(process, request)

    def _advance_to(self, when: SimTime) -> None:
        if when < self._now:
            raise SimulationError("time cannot move backwards")
        self._now = when
        topic = self._obs_kernel
        if topic.enabled:
            topic.emit("advance", when.nanoseconds, pending=len(self._timed_queue))
        for hook in self.advance_hooks:
            hook(self, when)
        # Pop every callback scheduled for this instant.
        while self._timed_queue and self._timed_queue[0][0] == when.nanoseconds:
            __, __, func, payload = heapq.heappop(self._timed_queue)
            if payload is _NO_PAYLOAD:
                func()
            else:
                func(payload)

    # ------------------------------------------------------------------
    # Convenience helpers for tests & examples
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Kernel-level counters of the run so far (campaign instrumentation)."""
        return {
            "now_ms": self._now.to_ms(),
            "delta_cycles": float(self._delta_count),
            "processes": float(len(self._processes)),
            "terminated_processes": float(
                sum(1 for p in self._processes if p.state is ProcessState.TERMINATED)
            ),
        }

    def pending_activity(self) -> bool:
        """Whether any runnable process or scheduled activity remains."""
        return bool(self._runnable or self._delta_callbacks or self._timed_queue)

    def time_to_next_activity(self) -> Optional[SimTime]:
        """Delay until the next timed activity, or None if none is pending."""
        if not self._timed_queue:
            return None
        return SimTime(self._timed_queue[0][0]) - self._now

    def __repr__(self) -> str:
        return (
            f"Simulator({self.name!r}, now={self._now.format()}, "
            f"processes={len(self._processes)})"
        )
