"""Signals with SystemC ``sc_signal`` request/update semantics.

A signal write does not take effect immediately; it is applied in the update
phase of the current delta cycle and the *value-changed* event is notified as
a delta notification.  This keeps the hardware side of the co-simulation
(BFM, interrupt lines, reset, system tick) race-free, exactly like the
SystemC models the paper plugs SIM_API into.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

from repro.sysc.event import SCEvent
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime

T = TypeVar("T")


class Signal(Generic[T]):
    """A single-driver signal with deferred (delta-cycle) update."""

    def __init__(self, name: str, initial: T, simulator: Optional[Simulator] = None):
        self.name = name
        self._simulator = simulator or Simulator.current()
        self._current: T = initial
        self._next: T = initial
        self._update_pending = False
        self.value_changed_event = SCEvent(f"{name}.value_changed", self._simulator)
        self.posedge_event = SCEvent(f"{name}.posedge", self._simulator)
        self.negedge_event = SCEvent(f"{name}.negedge", self._simulator)
        self.write_count = 0
        self.change_count = 0
        self._tracers: List["SignalObserver"] = []
        # Cached `signal` topic of the owning simulator's observability bus:
        # the settle path publishes with a single enabled-flag check.
        self._obs_signal = self._simulator.obs.topic("signal")

    # -- value access -------------------------------------------------------
    def read(self) -> T:
        """Current (settled) value of the signal."""
        return self._current

    @property
    def value(self) -> T:
        """Alias for :meth:`read`."""
        return self._current

    def write(self, value: T) -> None:
        """Request a new value; applied at the next update phase."""
        self.write_count += 1
        self._next = value
        if not self._update_pending:
            self._update_pending = True
            self._simulator.request_update(self._update)

    def _update(self) -> None:
        self._update_pending = False
        if self._next == self._current:
            return
        old, new = self._current, self._next
        self._current = new
        self.change_count += 1
        self.value_changed_event.notify_delta()
        if self._is_rising(old, new):
            self.posedge_event.notify_delta()
        if self._is_falling(old, new):
            self.negedge_event.notify_delta()
        topic = self._obs_signal
        if topic.enabled:
            # `_signal` carries the publishing object for sinks that filter
            # by identity (names need not be unique); JSON output drops it.
            topic.emit(
                "change", self._simulator._now_ns,
                signal=self.name, old=old, new=new, _signal=self,
            )
        if self._tracers:
            now = self._simulator.now
            for tracer in self._tracers:
                tracer.on_change(self, now, old, new)

    @staticmethod
    def _is_rising(old: T, new: T) -> bool:
        try:
            return bool(new) and not bool(old)
        except Exception:  # pragma: no cover - exotic value types
            return False

    @staticmethod
    def _is_falling(old: T, new: T) -> bool:
        try:
            return bool(old) and not bool(new)
        except Exception:  # pragma: no cover - exotic value types
            return False

    # -- observation ----------------------------------------------------------
    def attach_observer(self, observer: "SignalObserver") -> None:
        """Attach an observer notified on every settled value change."""
        self._tracers.append(observer)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._current!r})"


class SignalObserver:
    """Interface for objects that observe signal value changes."""

    def on_change(self, signal: Signal, when: SimTime, old: object, new: object) -> None:
        """Called after *signal* settles to a new value."""
        raise NotImplementedError
