"""SC_MODULE-style grouping of processes and signals.

:class:`SCModule` is a thin organizational layer: hardware and kernel models
subclass it, create their signals/events in ``__init__`` and register their
behaviour with :meth:`SCModule.sc_thread`.  It matches the structural role of
``SC_MODULE`` in the paper's figures (the kernel central module, the BFM and
the application tasks module are each one module).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.sysc.event import SCEvent
from repro.sysc.kernel import Simulator
from repro.sysc.process import ProcessHandle


class SCModule:
    """Base class for structural modules."""

    def __init__(self, name: str, simulator: Optional[Simulator] = None):
        self.name = name
        self.simulator = simulator or Simulator.current()
        self._threads: List[ProcessHandle] = []
        self._children: List["SCModule"] = []

    # -- construction helpers ------------------------------------------------
    def sc_thread(
        self,
        name: str,
        factory: Callable[[], object],
        sensitivity: "Optional[Iterable[SCEvent] | SCEvent]" = None,
        dont_initialize: bool = False,
    ) -> ProcessHandle:
        """Register an SC_THREAD belonging to this module."""
        handle = self.simulator.register_thread(
            f"{self.name}.{name}",
            factory,
            sensitivity=sensitivity,
            dont_initialize=dont_initialize,
        )
        self._threads.append(handle)
        return handle

    def create_event(self, name: str) -> SCEvent:
        """Create an event namespaced under this module."""
        return self.simulator.create_event(f"{self.name}.{name}")

    def add_child(self, child: "SCModule") -> "SCModule":
        """Register a child module (for structural enumeration)."""
        self._children.append(child)
        return child

    # -- introspection ---------------------------------------------------------
    @property
    def threads(self) -> List[ProcessHandle]:
        """Processes registered by this module."""
        return list(self._threads)

    @property
    def children(self) -> List["SCModule"]:
        """Child modules."""
        return list(self._children)

    def hierarchy(self) -> List[str]:
        """Flattened list of module names in this subtree (pre-order)."""
        names = [self.name]
        for child in self._children:
            names.extend(child.hierarchy())
        return names

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
