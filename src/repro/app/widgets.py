"""Headless virtual-prototype widgets.

The paper wraps the ASIC peripherals in GUI widgets "to give the look & feel
of a virtual system prototype" and measures the co-simulation slowdown caused
by their callback functions (Table 2).  This module provides headless
equivalents that keep the same state and expose the same measurement hooks:

* each widget registers a callback on its hardware device and, when the
  :class:`WidgetCostModel` says the GUI is enabled, burns a configurable
  amount of *host* wall-clock time per callback — that is what makes the
  with-GUI co-simulation measurably slower, reproducing the Table 2 effect
  without a display,
* :class:`BatteryWidget` integrates consumed execution energy against a
  10 Wh battery (Fig. 7),
* :class:`WidgetSet` groups everything and renders a text dashboard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bfm.peripherals import KeypadDevice, LCDDevice, SevenSegmentDevice
from repro.core.simapi import SimApi
from repro.sysc.time import SimTime

#: The battery assumed by the paper's Fig. 7 widget: 10 watt-hours.
DEFAULT_BATTERY_WATT_HOURS = 10.0


@dataclass
class WidgetCostModel:
    """Host-side cost of GUI callbacks.

    ``enabled`` switches the GUI overhead on or off (the two halves of
    Table 2); ``host_seconds_per_callback`` is the wall-clock time burned per
    widget callback, standing in for X11 drawing and event handling.
    """

    enabled: bool = True
    host_seconds_per_callback: float = 0.00004

    def charge(self) -> None:
        """Burn the configured amount of host time (busy wait)."""
        if not self.enabled or self.host_seconds_per_callback <= 0:
            return
        deadline = time.perf_counter() + self.host_seconds_per_callback
        while time.perf_counter() < deadline:
            pass


class LCDWidget:
    """Headless view of the LCD frame buffer."""

    def __init__(self, device: LCDDevice, cost_model: WidgetCostModel):
        self.device = device
        self.cost_model = cost_model
        self.callback_count = 0
        self.last_text: List[str] = device.text()
        device.update_hooks.append(self._on_update)

    def _on_update(self, device: LCDDevice) -> None:
        self.callback_count += 1
        self.last_text = device.text()
        self.cost_model.charge()

    def render(self) -> str:
        """The current display contents framed as text."""
        width = self.device.columns
        border = "+" + "-" * width + "+"
        body = "\n".join(f"|{line}|" for line in self.last_text)
        return f"{border}\n{body}\n{border}"


class SSDWidget:
    """Headless view of the seven-segment display digits."""

    def __init__(self, device: SevenSegmentDevice, cost_model: WidgetCostModel):
        self.device = device
        self.cost_model = cost_model
        self.callback_count = 0
        device.update_hooks.append(self._on_update)

    def _on_update(self, device: SevenSegmentDevice) -> None:
        self.callback_count += 1
        self.cost_model.charge()

    def render(self) -> str:
        """The displayed digits, most significant first."""
        return "[" + " ".join(str(d) for d in reversed(self.device.digits)) + "]"


class KeypadWidget:
    """Headless keypad: scripted user key presses instead of mouse clicks."""

    def __init__(self, device: KeypadDevice, cost_model: WidgetCostModel):
        self.device = device
        self.cost_model = cost_model
        self.injected: List[int] = []

    def press(self, key_code: int) -> bool:
        """Simulate the user pressing a key on the widget."""
        self.cost_model.charge()
        self.injected.append(key_code)
        return self.device.press_key(key_code)


class BatteryWidget:
    """The Fig. 7 battery widget: a 10 Wh battery drained by CEE.

    At every :meth:`update` the widget reads the accumulated consumed
    execution energy from the SIM_API statistics, adds the idle platform
    draw, and recomputes the remaining charge and the projected lifespan.
    """

    def __init__(self, api: SimApi, watt_hours: float = DEFAULT_BATTERY_WATT_HOURS):
        if watt_hours <= 0:
            raise ValueError("battery capacity must be positive")
        self.api = api
        self.capacity_mj = watt_hours * 3600.0 * 1000.0  # Wh -> J -> mJ
        self.consumed_mj = 0.0
        self.update_count = 0

    def update(self) -> None:
        """Refresh the consumed-energy reading."""
        self.update_count += 1
        self.consumed_mj = self.api.total_consumed_energy_mj(include_idle=True)

    @property
    def remaining_fraction(self) -> float:
        """Remaining charge as a fraction of capacity (clamped to [0, 1])."""
        remaining = 1.0 - self.consumed_mj / self.capacity_mj
        return min(1.0, max(0.0, remaining))

    def projected_lifespan_hours(self) -> Optional[float]:
        """Battery lifespan extrapolated from the average drain so far."""
        elapsed = self.api.simulator.now.to_sec()
        if elapsed <= 0 or self.consumed_mj <= 0:
            return None
        drain_mj_per_s = self.consumed_mj / elapsed
        return self.capacity_mj / drain_mj_per_s / 3600.0

    def render(self, width: int = 30) -> str:
        """A text status bar like the paper's battery display."""
        filled = int(round(self.remaining_fraction * width))
        bar = "#" * filled + "." * (width - filled)
        lifespan = self.projected_lifespan_hours()
        lifespan_text = f"{lifespan:.1f} h" if lifespan is not None else "n/a"
        return (
            f"battery [{bar}] {self.remaining_fraction * 100:5.1f}%  "
            f"consumed {self.consumed_mj:.3f} mJ  projected lifespan {lifespan_text}"
        )


class WidgetSet:
    """All widgets of the virtual system prototype."""

    def __init__(self, api: SimApi, lcd: LCDDevice, keypad: KeypadDevice,
                 ssd: SevenSegmentDevice, cost_model: Optional[WidgetCostModel] = None,
                 battery_watt_hours: float = DEFAULT_BATTERY_WATT_HOURS):
        self.cost_model = cost_model if cost_model is not None else WidgetCostModel()
        self.lcd = LCDWidget(lcd, self.cost_model)
        self.keypad = KeypadWidget(keypad, self.cost_model)
        self.ssd = SSDWidget(ssd, self.cost_model)
        self.battery = BatteryWidget(api, battery_watt_hours)

    def callback_count(self) -> int:
        """Total GUI callbacks triggered so far."""
        return self.lcd.callback_count + self.ssd.callback_count + self.battery.update_count

    def render_dashboard(self) -> str:
        """A text dashboard combining every widget."""
        self.battery.update()
        return "\n".join([
            "=== virtual system prototype ===",
            self.lcd.render(),
            f"score {self.ssd.render()}",
            self.battery.render(),
        ])
