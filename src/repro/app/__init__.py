"""The case-study application: video game, virtual-prototype widgets, framework.

Section 5 of the paper builds an RTOS-centric co-simulation framework from
RTK-Spec TRON, the i8051 BFM, a group of ASIC components wrapped in GUI
widgets, and a video-game application mapped onto four communicating tasks
{LCD:T1, Keypad:T2, SSD:T3, IDLE:T4} and two handlers {Cyclic:H1, Alarm:H2}.

* :mod:`repro.app.widgets` — headless stand-ins for the GUI widgets,
  including the battery widget of Fig. 7 and a configurable host-side
  callback cost model used to reproduce the GUI overhead of Table 2,
* :mod:`repro.app.videogame` — the video-game application itself,
* :mod:`repro.app.framework` — :class:`CoSimulationFramework`, the one-call
  assembly of kernel + BFM + application + widgets (Fig. 5).
"""

from repro.app.widgets import (
    BatteryWidget,
    KeypadWidget,
    LCDWidget,
    SSDWidget,
    WidgetCostModel,
    WidgetSet,
)
from repro.app.videogame import GameState, VideoGameApplication, VideoGameConfig
from repro.app.framework import CoSimulationFramework, FrameworkConfig

__all__ = [
    "BatteryWidget",
    "KeypadWidget",
    "LCDWidget",
    "SSDWidget",
    "WidgetCostModel",
    "WidgetSet",
    "GameState",
    "VideoGameApplication",
    "VideoGameConfig",
    "CoSimulationFramework",
    "FrameworkConfig",
]
