"""The video-game application of the case study (section 5.2).

The game is a small paddle-and-ball game mapped onto four communicating tasks
and two handlers, exactly the decomposition of the paper:

=========  ===============  ==========================================================
T-THREAD   Priority          Behaviour
=========  ===============  ==========================================================
LCD:T1     high (8)          waits for a frame semaphore, renders the play field to
                             the LCD through parallel-port BFM writes
Keypad:T2  higher (6)        waits on an event flag set by the keypad ISR, reads the
                             key code from the keypad port and moves the paddle
SSD:T3     medium (12)       periodically writes the score to the seven-segment display
IDLE:T4    lowest (120)      the idle loop, burning background cycles
Cyclic:H1  handler           the game tick: advances the ball, detects bounces and
                             misses, updates the score and signals the frame semaphore
Alarm:H2   handler           one-shot game-over alarm that stops the game
=========  ===============  ==========================================================

The keypad ISR (external interrupt line 0) bridges the hardware keypad to T2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bfm.i8051 import I8051BFM, KEYPAD_PORT, LCD_PORT, SSD_PORT
from repro.core.events import ExecutionContext
from repro.sysc.time import SimTime
from repro.tkernel import TA_WMUL, TMO_FEVR, TWF_CLR, TWF_ORW
from repro.tkernel.kernel import TKernelOS

#: Key codes delivered by the keypad widget.
KEY_LEFT = 0x01
KEY_RIGHT = 0x02
KEY_FIRE = 0x03


@dataclass
class VideoGameConfig:
    """Tunable parameters of the video-game workload.

    ``lcd_update_period_ms`` is the paper's Table 2 knob: how often a BFM
    access burst drives the LCD GUI widget.  ``game_over_ms`` arms the H2
    alarm handler.
    """

    field_width: int = 16
    lcd_update_period_ms: int = 10
    ssd_update_period_ms: int = 50
    game_tick_period_ms: int = 20
    game_over_ms: Optional[int] = None
    lcd_task_priority: int = 8
    keypad_task_priority: int = 6
    ssd_task_priority: int = 12
    idle_task_priority: int = 120
    #: Cycle budget of the per-frame rendering computation (basic block).
    render_cycles: int = 400
    #: Cycle budget of the game-tick computation inside H1.
    tick_cycles: int = 120
    idle_slice_cycles: int = 200


@dataclass
class GameState:
    """Shared state updated by the handlers and tasks."""

    field_width: int = 16
    paddle: int = 8
    ball: int = 0
    ball_direction: int = 1
    score: int = 0
    misses: int = 0
    running: bool = True
    frames_rendered: int = 0
    keys_handled: int = 0
    key_log: List[int] = field(default_factory=list)

    def advance_ball(self) -> None:
        """Move the ball one cell; bounce at the paddle, score or miss."""
        if not self.running:
            return
        self.ball += self.ball_direction
        if self.ball <= 0:
            self.ball = 0
            self.ball_direction = 1
        elif self.ball >= self.field_width - 1:
            if abs(self.paddle - self.ball) <= 1:
                self.score += 1
            else:
                self.misses += 1
            self.ball_direction = -1
            self.ball = self.field_width - 1

    def move_paddle(self, key_code: int) -> None:
        """Apply a key press to the paddle position."""
        if key_code == KEY_LEFT:
            self.paddle = max(0, self.paddle - 1)
        elif key_code == KEY_RIGHT:
            self.paddle = min(self.field_width - 1, self.paddle + 1)

    def render_row(self) -> str:
        """The play field as a one-line string (ball ``o``, paddle ``=``)."""
        row = ["."] * self.field_width
        row[self.paddle] = "="
        row[self.ball % self.field_width] = "o"
        return "".join(row)


class VideoGameApplication:
    """Creates the game's tasks, handlers and kernel objects on a kernel."""

    #: Event-flag bit set by the keypad ISR.
    KEY_EVENT_BIT = 0b1
    #: Event-flag bit set by the game-over alarm.
    GAME_OVER_BIT = 0b10

    def __init__(self, kernel: TKernelOS, bfm: I8051BFM,
                 config: Optional[VideoGameConfig] = None):
        self.kernel = kernel
        self.bfm = bfm
        self.config = config if config is not None else VideoGameConfig()
        self.state = GameState(field_width=self.config.field_width)
        self.task_ids: Dict[str, int] = {}
        self.frame_semaphore_id: Optional[int] = None
        self.key_flag_id: Optional[int] = None
        self.cyclic_id: Optional[int] = None
        self.alarm_id: Optional[int] = None

    # ------------------------------------------------------------------
    # user_main: create every object and start the tasks
    # ------------------------------------------------------------------
    def user_main(self, kernel: TKernelOS):
        """The user main entry the initial task runs (creates the scenario)."""
        config = self.config
        self.frame_semaphore_id = yield from kernel.tk_cre_sem(
            isemcnt=0, maxsem=8, name="frame_sem"
        )
        self.key_flag_id = yield from kernel.tk_cre_flg(
            iflgptn=0, flgatr=TA_WMUL, name="key_flag"
        )

        t1 = yield from kernel.tk_cre_tsk(
            self._lcd_task, itskpri=config.lcd_task_priority, name="T1_lcd"
        )
        t2 = yield from kernel.tk_cre_tsk(
            self._keypad_task, itskpri=config.keypad_task_priority, name="T2_keypad"
        )
        t3 = yield from kernel.tk_cre_tsk(
            self._ssd_task, itskpri=config.ssd_task_priority, name="T3_ssd"
        )
        t4 = yield from kernel.tk_cre_tsk(
            self._idle_task, itskpri=config.idle_task_priority, name="T4_idle"
        )
        self.task_ids = {"T1_lcd": t1, "T2_keypad": t2, "T3_ssd": t3, "T4_idle": t4}

        yield from kernel.tk_def_int(0, self._keypad_isr, name="keypad_isr")

        self.cyclic_id = yield from kernel.tk_cre_cyc(
            self._game_tick_handler, cyctim=config.game_tick_period_ms, name="H1_cyclic"
        )
        self.alarm_id = yield from kernel.tk_cre_alm(
            self._game_over_handler, name="H2_alarm"
        )

        for task_id in self.task_ids.values():
            yield from kernel.tk_sta_tsk(task_id)
        yield from kernel.tk_sta_cyc(self.cyclic_id)
        if config.game_over_ms is not None:
            yield from kernel.tk_sta_alm(self.alarm_id, config.game_over_ms)

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def _lcd_task(self, stacd, exinf):
        """T1: render a frame to the LCD whenever the frame semaphore fires."""
        kernel, api, config = self.kernel, self.kernel.api, self.config
        while self.state.running:
            yield from kernel.tk_wai_sem(self.frame_semaphore_id)
            # Rate-limit rendering to the configured LCD update period.
            yield from kernel.tk_dly_tsk(config.lcd_update_period_ms)
            yield from api.sim_wait(
                cycles=config.render_cycles, label="task:T1:render"
            )
            row = self.state.render_row()
            for character in row:
                yield from self.bfm.pio.write_port(LCD_PORT, ord(character))
            self.state.frames_rendered += 1

    def _keypad_task(self, stacd, exinf):
        """T2: consume key events signalled by the keypad ISR."""
        kernel, api = self.kernel, self.kernel.api
        while self.state.running:
            pattern = yield from kernel.tk_wai_flg(
                self.key_flag_id, self.KEY_EVENT_BIT | self.GAME_OVER_BIT,
                TWF_ORW | TWF_CLR,
            )
            if pattern < 0 or not self.state.running:
                return
            if pattern & self.GAME_OVER_BIT:
                return
            key = yield from self.bfm.pio.read_port(KEYPAD_PORT)
            # Acknowledge the key (pops it from the keypad FIFO).
            yield from self.bfm.pio.write_port(KEYPAD_PORT, 0)
            yield from api.sim_wait(cycles=60, label="task:T2:handle_key")
            self.state.move_paddle(key)
            self.state.keys_handled += 1
            self.state.key_log.append(key)

    def _ssd_task(self, stacd, exinf):
        """T3: periodically publish the score on the seven-segment display."""
        kernel, api, config = self.kernel, self.kernel.api, self.config
        while self.state.running:
            yield from kernel.tk_dly_tsk(config.ssd_update_period_ms)
            yield from api.sim_wait(cycles=40, label="task:T3:format_score")
            score = self.state.score % 100
            yield from self.bfm.pio.write_port(SSD_PORT, (0 << 4) | (score % 10))
            yield from self.bfm.pio.write_port(SSD_PORT, (1 << 4) | (score // 10))

    def _idle_task(self, stacd, exinf):
        """T4: the idle loop."""
        api, config = self.kernel.api, self.config
        while True:
            yield from api.sim_wait(
                cycles=config.idle_slice_cycles,
                context=ExecutionContext.IDLE,
                label="task:T4:idle",
            )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _game_tick_handler(self, exinf):
        """H1 (cyclic): advance the game and signal a new frame."""
        kernel, api, config = self.kernel, self.kernel.api, self.config
        yield from api.sim_wait(
            cycles=config.tick_cycles,
            context=ExecutionContext.HANDLER,
            label="handler:H1:tick",
        )
        if not self.state.running:
            return
        self.state.advance_ball()
        yield from kernel.tk_sig_sem(self.frame_semaphore_id)

    def _game_over_handler(self, exinf):
        """H2 (alarm): stop the game and release any waiting tasks."""
        kernel, api = self.kernel, self.kernel.api
        yield from api.sim_wait(
            cycles=50, context=ExecutionContext.HANDLER, label="handler:H2:game_over"
        )
        self.state.running = False
        yield from kernel.tk_set_flg(self.key_flag_id, self.GAME_OVER_BIT)
        yield from kernel.tk_sig_sem(self.frame_semaphore_id)

    def _keypad_isr(self, exinf):
        """Keypad ISR: turn the hardware interrupt into a key event flag."""
        kernel, api = self.kernel, self.kernel.api
        yield from api.sim_wait(
            cycles=30, context=ExecutionContext.HANDLER, label="isr:keypad"
        )
        yield from kernel.tk_set_flg(self.key_flag_id, self.KEY_EVENT_BIT)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A compact result summary for benchmarks and examples."""
        return {
            "frames_rendered": self.state.frames_rendered,
            "keys_handled": self.state.keys_handled,
            "score": self.state.score,
            "misses": self.state.misses,
            "running": self.state.running,
            "tasks": dict(self.task_ids),
        }
