"""The RTOS-centric co-simulation framework (Fig. 5).

:class:`CoSimulationFramework` assembles in one call everything the paper's
case study wires together: the DES simulator, the SIM_API library, RTK-Spec
TRON (the T-Kernel/OS model) driven by the BFM's real-time clock, the i8051
BFM with its peripherals, the GUI widgets (headless), the video-game
application, an optional scripted "user" pressing keypad keys, and a waveform
trace on the bus signals.

It is the object the Table 2 / Fig. 6 / Fig. 7 / Fig. 8 benchmarks run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.app.videogame import KEY_LEFT, KEY_RIGHT, VideoGameApplication, VideoGameConfig
from repro.app.widgets import WidgetCostModel, WidgetSet
from repro.bfm.i8051 import BFM_CONTROLLERS, BFM_PERIPHERALS, I8051BFM
from repro.core.scheduler import PriorityScheduler
from repro.core.simapi import SimApi
from repro.sysc.kernel import Simulator
from repro.sysc.process import Wait
from repro.sysc.time import SimTime
from repro.sysc.trace import TraceFile
from repro.tkernel.debugger import TKernelDS
from repro.tkernel.kernel import TKernelOS


@dataclass
class FrameworkConfig:
    """Configuration of one co-simulation run."""

    #: Duration of the simulated reference window S (Table 2 uses 1 s).
    simulated_duration: SimTime = field(default_factory=lambda: SimTime.sec(1))
    #: Whether the GUI widgets (and their host callback cost) are enabled.
    gui_enabled: bool = True
    #: Host seconds burned per GUI callback when the GUI is enabled.
    gui_host_seconds_per_callback: float = 0.00004
    #: The video-game parameters (LCD update period is the Table 2 knob).
    game: VideoGameConfig = field(default_factory=VideoGameConfig)
    #: Scripted user key presses: (time_ms, key_code).
    key_script: List = field(default_factory=list)
    #: Whether to record a waveform trace of the bus signals (Fig. 4).
    trace_waveforms: bool = False
    #: System tick / RTC resolution.
    tick: SimTime = field(default_factory=lambda: SimTime.ms(1))

    @staticmethod
    def default_key_script(duration_ms: int, period_ms: int = 120) -> List:
        """A deterministic left/right key script covering *duration_ms*."""
        script = []
        keys = [KEY_LEFT, KEY_RIGHT]
        for index, when in enumerate(range(40, duration_ms, period_ms)):
            script.append((when, keys[index % 2]))
        return script

    @classmethod
    def from_knobs(cls, duration_ms: float, gui_enabled: bool = True,
                   lcd_update_period_ms: int = 10,
                   key_period_ms: int = 120,
                   render_cycles: Optional[int] = None,
                   trace_waveforms: bool = False,
                   tick_ms: float = 1.0) -> "FrameworkConfig":
        """Build a config from the flat knobs a campaign scenario exposes."""
        duration_ms = int(duration_ms)
        game = VideoGameConfig(
            lcd_update_period_ms=lcd_update_period_ms,
            game_over_ms=max(duration_ms - 50, duration_ms // 2) or None,
        )
        if render_cycles is not None:
            game.render_cycles = render_cycles
        return cls(
            simulated_duration=SimTime.ms(duration_ms),
            gui_enabled=gui_enabled,
            game=game,
            key_script=cls.default_key_script(duration_ms, period_ms=key_period_ms),
            trace_waveforms=trace_waveforms,
            tick=SimTime.ms(tick_ms),
        )


class CoSimulationFramework:
    """One fully-wired co-simulation instance."""

    def __init__(self, config: Optional[FrameworkConfig] = None, name: str = "cosim"):
        self.config = config if config is not None else FrameworkConfig()
        self.name = name
        self.simulator = Simulator(name)
        self.api = SimApi(
            self.simulator,
            scheduler=PriorityScheduler(),
            system_tick=self.config.tick,
        )
        self.bfm = I8051BFM(self.api, rtc_resolution=self.config.tick)
        self.application = VideoGameApplication(None, self.bfm, self.config.game)  # type: ignore[arg-type]
        self.kernel = TKernelOS(
            self.simulator,
            user_main=self.application.user_main,
            api=self.api,
            system_tick=self.config.tick,
            tick_signal=self.bfm.tick_signal,
        )
        self.application.kernel = self.kernel
        self.kernel.attach_interrupt_controller(self.bfm.intc)
        self.debugger = TKernelDS(self.kernel)

        cost_model = WidgetCostModel(
            enabled=self.config.gui_enabled,
            host_seconds_per_callback=self.config.gui_host_seconds_per_callback,
        )
        assert self.bfm.lcd is not None and self.bfm.keypad is not None \
            and self.bfm.ssd is not None
        self.widgets = WidgetSet(self.api, self.bfm.lcd, self.bfm.keypad, self.bfm.ssd,
                                 cost_model=cost_model)

        self.trace: Optional[TraceFile] = None
        if self.config.trace_waveforms:
            self.trace = self.bfm.attach_trace()

        self._install_key_script()
        self.wall_clock_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # Scenario plumbing
    # ------------------------------------------------------------------
    def _install_key_script(self) -> None:
        script = list(self.config.key_script)
        if not script:
            return

        widgets = self.widgets

        def user_process():
            last_ms = 0
            for when_ms, key in script:
                delay = max(0, when_ms - last_ms)
                last_ms = when_ms
                if delay:
                    yield Wait(SimTime.ms(delay))
                widgets.keypad.press(key)

        self.simulator.register_thread(f"{self.name}.user_input", user_process)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: "SimTime | int | None" = None) -> Dict[str, object]:
        """Run the co-simulation and return the result summary.

        Measures the host wall-clock time R spent simulating the reference
        window S, which is the quantity Table 2 reports as R/S.
        """
        duration = SimTime.coerce(duration) if duration is not None else self.config.simulated_duration
        start = time.perf_counter()
        self.simulator.run(duration)
        self.wall_clock_seconds = time.perf_counter() - start
        return self.results()

    def results(self) -> Dict[str, object]:
        """The combined result summary of the run so far."""
        simulated_seconds = self.simulator.now.to_sec()
        wall = self.wall_clock_seconds or 0.0
        self.widgets.battery.update()
        return {
            "simulated_seconds": simulated_seconds,
            "wall_clock_seconds": wall,
            "r_over_s": (wall / simulated_seconds) if simulated_seconds else None,
            "s_over_r": (simulated_seconds / wall) if wall else None,
            "gui_enabled": self.config.gui_enabled,
            "lcd_update_period_ms": self.config.game.lcd_update_period_ms,
            "gui_callbacks": self.widgets.callback_count(),
            "application": self.application.summary(),
            "bfm": self.bfm.access_statistics(),
            "energy": self.api.energy_statistics(),
            "total_energy_mj": self.api.total_consumed_energy_mj(),
            "battery_remaining_fraction": self.widgets.battery.remaining_fraction,
            "dispatches": self.api.dispatch_count,
            "preemptions": self.api.preemption_count,
            "interrupts": self.api.interrupt_count,
        }

    # ------------------------------------------------------------------
    # Structural enumeration (Fig. 5)
    # ------------------------------------------------------------------
    def component_inventory(self) -> Dict[str, List[str]]:
        """The framework structure: which components are wired together."""
        return {
            "kernel_processes": [
                handle.name for handle in self.kernel.threads
            ],
            "bfm_controllers": list(BFM_CONTROLLERS),
            "peripherals": list(BFM_PERIPHERALS),
            "widgets": ["lcd_widget", "keypad_widget", "ssd_widget", "battery_widget"],
            "application_tasks": list(self.application.task_ids) or
                ["T1_lcd", "T2_keypad", "T3_ssd", "T4_idle"],
            "application_handlers": ["H1_cyclic", "H2_alarm", "keypad_isr"],
        }

    def __repr__(self) -> str:
        return f"CoSimulationFramework({self.name!r}, gui={self.config.gui_enabled})"
