"""The interrupt controller of the BFM.

External devices raise interrupt lines; the controller latches them, orders
them by line priority and signals the kernel's Interrupt Dispatch process via
``irq_event``.  The kernel acknowledges pending interrupts one at a time with
:meth:`InterruptController.acknowledge`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sysc.kernel import Simulator
from repro.sysc.signal import Signal


class InterruptController:
    """Latching, priority-ordered interrupt controller."""

    def __init__(self, simulator: Simulator, name: str = "intc", line_count: int = 8):
        self.simulator = simulator
        self.name = name
        self.line_count = line_count
        self.irq_event = simulator.create_event(f"{name}.irq")
        self.irq_signal: Signal[bool] = Signal(f"{name}.irq_line", False, simulator)
        #: Priority per line: lower value = served first (defaults to line number).
        self.priorities: Dict[int, int] = {line: line for line in range(line_count)}
        self._pending: List[int] = []
        self.raised_count = 0
        self.acknowledged_count = 0
        self.dropped_count = 0

    def set_priority(self, line: int, priority: int) -> None:
        """Assign a service priority to an interrupt line."""
        self._check_line(line)
        self.priorities[line] = priority

    def raise_line(self, line: int) -> None:
        """Latch interrupt *line* and signal the kernel."""
        self._check_line(line)
        self.raised_count += 1
        if line in self._pending:
            # Already latched: edge is lost (level-triggered latch behaviour).
            self.dropped_count += 1
            return
        self._pending.append(line)
        self.irq_signal.write(True)
        self.irq_event.notify()

    def acknowledge(self) -> Optional[int]:
        """Return and clear the highest-priority pending line (None if none)."""
        if not self._pending:
            return None
        self._pending.sort(key=lambda line: (self.priorities.get(line, line), line))
        line = self._pending.pop(0)
        self.acknowledged_count += 1
        if not self._pending:
            self.irq_signal.write(False)
        return line

    def pending_lines(self) -> List[int]:
        """Currently latched lines in service order."""
        return sorted(self._pending, key=lambda line: (self.priorities.get(line, line), line))

    def has_pending(self) -> bool:
        """Whether any interrupt is latched."""
        return bool(self._pending)

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.line_count:
            raise ValueError(f"interrupt line {line} outside [0, {self.line_count})")

    def __repr__(self) -> str:
        return f"InterruptController(pending={self.pending_lines()}, raised={self.raised_count})"
