"""Multiplexed parallel I/O of the BFM.

"...and Multiplexed Parallel I/O interface to which several external
peripheral devices are connected" (section 5.1).  The interface exposes a
small set of 8-bit ports; peripheral devices (LCD, keypad, seven-segment
display) attach to a port and observe writes / provide read values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.bfm.budgets import BFMBudgets
from repro.bfm.driver import BusDriver
from repro.sysc.signal import Signal


class PortDevice(Protocol):
    """What the PIO expects from an attached peripheral device."""

    def on_port_write(self, port: int, value: int) -> None:
        """Called when software writes *value* to *port*."""

    def on_port_read(self, port: int) -> Optional[int]:
        """Value the device drives on *port* reads (None = not driving)."""


class ParallelIO:
    """A bank of 8-bit ports with attached peripheral devices."""

    def __init__(self, driver: BusDriver, port_count: int = 4,
                 budgets: Optional[BFMBudgets] = None, name: str = "pio"):
        self.driver = driver
        self.budgets = budgets if budgets is not None else driver.budgets
        self.port_count = port_count
        self.name = name
        simulator = driver.api.simulator
        self.port_signals: List[Signal[int]] = [
            Signal(f"{name}.p{index}", 0, simulator) for index in range(port_count)
        ]
        self._latches: List[int] = [0] * port_count
        self._devices: Dict[int, List[PortDevice]] = {}
        self.write_counts: Dict[int, int] = {index: 0 for index in range(port_count)}
        self.read_counts: Dict[int, int] = {index: 0 for index in range(port_count)}

    # ------------------------------------------------------------------
    # Device attachment
    # ------------------------------------------------------------------
    def attach(self, port: int, device: PortDevice) -> None:
        """Attach a peripheral device to *port*."""
        self._check_port(port)
        self._devices.setdefault(port, []).append(device)

    def devices_on(self, port: int) -> List[PortDevice]:
        """Devices attached to *port*."""
        return list(self._devices.get(port, []))

    # ------------------------------------------------------------------
    # Software-visible BFM calls (generators)
    # ------------------------------------------------------------------
    def write_port(self, port: int, value: int):
        """Write an 8-bit value to a port (devices see the new value)."""
        self._check_port(port)
        self.write_counts[port] += 1

        def apply(v: int) -> None:
            self._latches[port] = v
            self.port_signals[port].write(v)
            for device in self._devices.get(port, []):
                device.on_port_write(port, v)

        yield from self.driver.bus_write(
            0x80 + port,
            value & 0xFF,
            apply,
            cycles=self.budgets.port_write,
            label="bfm:port_write",
        )

    def read_port(self, port: int):
        """Read an 8-bit value from a port (device-driven if attached)."""
        self._check_port(port)
        self.read_counts[port] += 1

        def provide() -> int:
            for device in self._devices.get(port, []):
                value = device.on_port_read(port)
                if value is not None:
                    return value & 0xFF
            return self._latches[port]

        value = yield from self.driver.bus_read(
            0x80 + port,
            provide,
            cycles=self.budgets.port_read,
            label="bfm:port_read",
        )
        return value

    # ------------------------------------------------------------------
    # Debug backdoor
    # ------------------------------------------------------------------
    def latch_value(self, port: int) -> int:
        """The last written value of *port* (no simulated cost)."""
        self._check_port(port)
        return self._latches[port]

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.port_count:
            raise ValueError(f"port {port} outside [0, {self.port_count})")

    def __repr__(self) -> str:
        return f"ParallelIO(ports={self.port_count}, devices={sum(len(d) for d in self._devices.values())})"
