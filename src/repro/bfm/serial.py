"""Serial I/O (UART-style) of the BFM.

Byte-oriented transmit/receive buffers.  Receiving hardware (a test bench or
a peripheral model) injects bytes with :meth:`SerialIO.inject_rx_byte`, which
optionally raises the serial interrupt line so the kernel's ISR can drain the
buffer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bfm.budgets import BFMBudgets
from repro.bfm.driver import BusDriver
from repro.bfm.intc import InterruptController

#: Conventional serial interrupt line number on the 8051 (TI/RI).
SERIAL_INTERRUPT_LINE = 4


class SerialIO:
    """A transmit/receive byte channel with bounded FIFOs."""

    def __init__(self, driver: BusDriver, intc: Optional[InterruptController] = None,
                 budgets: Optional[BFMBudgets] = None, fifo_depth: int = 16,
                 interrupt_line: int = SERIAL_INTERRUPT_LINE):
        self.driver = driver
        self.intc = intc
        self.budgets = budgets if budgets is not None else driver.budgets
        self.fifo_depth = fifo_depth
        self.interrupt_line = interrupt_line
        self.tx_log: List[int] = []
        self._rx_fifo: List[int] = []
        self.overrun_count = 0
        self.sent_count = 0
        self.received_count = 0

    # ------------------------------------------------------------------
    # Software-visible BFM calls (generators)
    # ------------------------------------------------------------------
    def send_byte(self, value: int):
        """Transmit one byte (cycle budget covers the shift time)."""
        yield from self.driver.bus_write(
            0xF0,
            value & 0xFF,
            lambda v: self.tx_log.append(v),
            cycles=self.budgets.serial_send_byte,
            label="bfm:serial_send_byte",
        )
        self.sent_count += 1

    def send_string(self, text: str):
        """Transmit a string byte by byte."""
        for char in text:
            yield from self.send_byte(ord(char))

    def receive_byte(self):
        """Read one received byte (or None if the FIFO is empty)."""
        value = yield from self.driver.bus_read(
            0xF1,
            lambda: self._rx_fifo[0] if self._rx_fifo else -1,
            cycles=self.budgets.serial_receive_byte,
            label="bfm:serial_receive_byte",
        )
        if value < 0:
            return None
        self._rx_fifo.pop(0)
        self.received_count += 1
        return value

    def rx_available(self) -> int:
        """Number of bytes waiting in the receive FIFO (no simulated cost)."""
        return len(self._rx_fifo)

    # ------------------------------------------------------------------
    # Hardware-side injection (test benches, external devices)
    # ------------------------------------------------------------------
    def inject_rx_byte(self, value: int, raise_interrupt: bool = True) -> bool:
        """Deliver a byte from the external world into the receive FIFO."""
        if len(self._rx_fifo) >= self.fifo_depth:
            self.overrun_count += 1
            return False
        self._rx_fifo.append(value & 0xFF)
        if raise_interrupt and self.intc is not None:
            self.intc.raise_line(self.interrupt_line)
        return True

    def transmitted_text(self) -> str:
        """The transmit log decoded as text (for assertions in tests)."""
        return "".join(chr(b) for b in self.tx_log)

    def __repr__(self) -> str:
        return (
            f"SerialIO(sent={self.sent_count}, received={self.received_count}, "
            f"rx_pending={len(self._rx_fifo)})"
        )
