"""The assembled i8051 bus functional model (Fig. 5's BFM block).

:class:`I8051BFM` wires together the real-time clock, the bus driver, the
memory controller, the interrupt controller, the serial I/O and the
multiplexed parallel I/O, attaches the case-study peripherals (LCD on port 0,
keypad on port 1, seven-segment display on port 2) and exposes everything a
co-simulation framework needs: the tick signal for the kernel, the interrupt
controller to attach to Interrupt Dispatch, and the signals to probe in a
waveform trace.
"""

from __future__ import annotations

from typing import Optional

from repro.bfm.budgets import BFMBudgets
from repro.bfm.driver import BusDriver
from repro.bfm.intc import InterruptController
from repro.bfm.memctrl import MemoryController
from repro.bfm.peripherals import KeypadDevice, LCDDevice, SevenSegmentDevice
from repro.bfm.pio import ParallelIO
from repro.bfm.rtc import RealTimeClock
from repro.bfm.serial import SerialIO
from repro.core.simapi import SimApi
from repro.sysc.module import SCModule
from repro.sysc.time import SimTime
from repro.sysc.trace import TraceFile

#: Port assignments of the case-study peripherals.
LCD_PORT = 0
KEYPAD_PORT = 1
SSD_PORT = 2
SPARE_PORT = 3

#: The controllers an assembled i8051 BFM wires together (Fig. 5), in the
#: order they are constructed; the workload plane's Platform component
#: reports these in ``repro describe``.
BFM_CONTROLLERS = (
    "rtc", "bus_driver", "memory_controller", "interrupt_controller",
    "serial_io", "parallel_io",
)

#: The case-study peripherals attached to the parallel ports.
BFM_PERIPHERALS = ("lcd", "keypad", "seven_segment_display")


class I8051BFM(SCModule):
    """Cycle-budgeted bus functional model of an i8051-class platform."""

    def __init__(
        self,
        api: SimApi,
        name: str = "i8051",
        rtc_resolution: "SimTime | int" = SimTime.ms(1),
        budgets: Optional[BFMBudgets] = None,
        with_peripherals: bool = True,
    ):
        super().__init__(name, api.simulator)
        self.api = api
        self.budgets = budgets if budgets is not None else BFMBudgets()
        # Make the bfm:* cycle budgets visible to the annotation table so that
        # sim_wait_key lookups resolve to the configured values.
        self.api.annotations = self.api.annotations.merged_with(
            self.budgets.as_annotation_table()
        )

        self.rtc = RealTimeClock(api.simulator, api, rtc_resolution, name=f"{name}.rtc")
        self.driver = BusDriver(api, self.budgets, name=f"{name}.bus")
        self.memory = MemoryController(self.driver, budgets=self.budgets)
        self.intc = InterruptController(api.simulator, name=f"{name}.intc")
        self.serial = SerialIO(self.driver, self.intc, budgets=self.budgets)
        self.pio = ParallelIO(self.driver, budgets=self.budgets, name=f"{name}.pio")

        self.lcd: Optional[LCDDevice] = None
        self.keypad: Optional[KeypadDevice] = None
        self.ssd: Optional[SevenSegmentDevice] = None
        if with_peripherals:
            self.lcd = LCDDevice()
            self.keypad = KeypadDevice(self.intc)
            self.ssd = SevenSegmentDevice()
            self.pio.attach(LCD_PORT, self.lcd)
            self.pio.attach(KEYPAD_PORT, self.keypad)
            self.pio.attach(SSD_PORT, self.ssd)

    # ------------------------------------------------------------------
    # Integration points
    # ------------------------------------------------------------------
    @property
    def tick_signal(self):
        """The RTC tick signal the kernel's Thread Dispatch listens to."""
        return self.rtc.tick_signal

    def attach_trace(self, trace: Optional[TraceFile] = None) -> TraceFile:
        """Probe the bus and port signals in a waveform trace (Fig. 4)."""
        trace = trace if trace is not None else TraceFile(f"{self.name}.waves")
        for signal in self.driver.signals():
            trace.trace(signal)
        trace.trace(self.intc.irq_signal)
        for signal in self.pio.port_signals:
            trace.trace(signal)
        return trace

    def access_statistics(self) -> dict:
        """Counters summarising BFM activity (used by the speed benchmark)."""
        return {
            "bus_accesses": self.driver.access_count,
            "bus_reads": self.driver.read_count,
            "bus_writes": self.driver.write_count,
            "xram_reads": self.memory.read_count,
            "xram_writes": self.memory.write_count,
            "port_writes": dict(self.pio.write_counts),
            "port_reads": dict(self.pio.read_counts),
            "serial_sent": self.serial.sent_count,
            "interrupts_raised": self.intc.raised_count,
            "rtc_ticks": self.rtc.tick_count,
        }

    def __repr__(self) -> str:
        return f"I8051BFM({self.name!r}, accesses={self.driver.access_count})"
