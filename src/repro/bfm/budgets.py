"""Cycle and energy budgets for BFM calls.

"Each BFM Call will be associated with a cycle budget that is based on BFM
timing characteristics, and an estimation on the energy consumed during that
BFM access" (section 5.1).  The numbers below are estimates in 8051 machine
cycles (1 us at 12 MHz), in line with MOVX/serial transfer costs of the
classic part; they are deliberately kept in a single table so experiments can
swap them out or scale them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.etm import AnnotationTable, TimingAnnotation


@dataclass(frozen=True)
class BFMBudgets:
    """Cycle budgets (machine cycles) for each class of BFM access."""

    bus_read: int = 2
    bus_write: int = 2
    xram_read: int = 4
    xram_write: int = 4
    code_read: int = 2
    port_read: int = 3
    port_write: int = 3
    serial_send_byte: int = 12
    serial_receive_byte: int = 12
    intc_acknowledge: int = 3
    rtc_read: int = 2
    #: Energy per bus access in nanojoules (on top of the per-cycle energy).
    access_energy_nj: float = 6.0

    def as_annotation_table(self) -> AnnotationTable:
        """Expose the budgets as ``bfm:*`` keys for the annotation table."""
        table = AnnotationTable()
        entries = {
            "bfm:bus_read": self.bus_read,
            "bfm:bus_write": self.bus_write,
            "bfm:xram_read": self.xram_read,
            "bfm:xram_write": self.xram_write,
            "bfm:code_read": self.code_read,
            "bfm:port_read": self.port_read,
            "bfm:port_write": self.port_write,
            "bfm:serial_send_byte": self.serial_send_byte,
            "bfm:serial_receive_byte": self.serial_receive_byte,
            "bfm:intc_acknowledge": self.intc_acknowledge,
            "bfm:rtc_read": self.rtc_read,
        }
        for key, cycles in entries.items():
            table.annotate(key, cycles, energy_nj=None)
        return table

    def annotation_for(self, key: str) -> TimingAnnotation:
        """The annotation of one ``bfm:*`` key."""
        return self.as_annotation_table().lookup(key)


def default_bfm_budgets() -> BFMBudgets:
    """The default budget set used by the case study."""
    return BFMBudgets()
