"""Bus functional model (BFM) of an i8051-class MCU and its peripherals.

Section 5.1 of the paper: the co-simulation framework uses a cycle-accurate
bus functional model of the 8051 core's surroundings, consisting of a real
time clock (default resolution 1 ms) driving the kernel central module, a
memory controller, an interrupt controller, serial I/O and a multiplexed
parallel I/O interface to which several external peripheral devices are
connected.  Each BFM call carries a cycle budget and an energy estimate for
the access.

The top-level assembly is :class:`repro.bfm.i8051.I8051BFM`.  Application
tasks access the hardware through generator methods (``yield from
bfm.pio.write_port(...)``) so that every access consumes its cycle budget in
the ``BFM_ACCESS`` execution context, exactly as the paper attributes BFM
access time/energy in the Fig. 6 trace.
"""

from repro.bfm.budgets import BFMBudgets, default_bfm_budgets
from repro.bfm.driver import BusDriver
from repro.bfm.rtc import RealTimeClock
from repro.bfm.memctrl import MemoryController
from repro.bfm.intc import InterruptController
from repro.bfm.serial import SerialIO
from repro.bfm.pio import ParallelIO
from repro.bfm.peripherals import KeypadDevice, LCDDevice, SevenSegmentDevice
from repro.bfm.i8051 import I8051BFM

__all__ = [
    "BFMBudgets",
    "default_bfm_budgets",
    "BusDriver",
    "RealTimeClock",
    "MemoryController",
    "InterruptController",
    "SerialIO",
    "ParallelIO",
    "KeypadDevice",
    "LCDDevice",
    "SevenSegmentDevice",
    "I8051BFM",
]
