"""The Driver Model: handshake functions for BFM calls (Fig. 4).

Every hardware access from the software side goes through :class:`BusDriver`.
A call charges its cycle/energy budget in the ``BFM_ACCESS`` execution
context (so the Fig. 6 trace attributes it correctly) and drives the address,
data and strobe signals so a waveform viewer (:class:`repro.sysc.trace.TraceFile`)
can probe the transaction, as in the paper's Fig. 4.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.bfm.budgets import BFMBudgets
from repro.core.etm import TimingAnnotation
from repro.core.events import ExecutionContext
from repro.core.simapi import SimApi
from repro.sysc.signal import Signal


class BusDriver:
    """Handshake functions shared by all BFM controllers."""

    def __init__(self, api: SimApi, budgets: Optional[BFMBudgets] = None,
                 name: str = "bus"):
        self.api = api
        self.budgets = budgets if budgets is not None else BFMBudgets()
        self.name = name
        simulator = api.simulator
        self.address_bus: Signal[int] = Signal(f"{name}.address", 0, simulator)
        self.data_bus: Signal[int] = Signal(f"{name}.data", 0, simulator)
        self.read_strobe: Signal[bool] = Signal(f"{name}.rd", False, simulator)
        self.write_strobe: Signal[bool] = Signal(f"{name}.wr", False, simulator)
        self.access_count = 0
        self.read_count = 0
        self.write_count = 0
        #: Hooks called after every completed access: fn(kind, address, value).
        self.access_hooks: List[Callable[[str, int, int], None]] = []
        # Completed transactions publish on the bus's `bfm` topic.
        self._obs_bfm = api.obs.topic("bfm")

    # ------------------------------------------------------------------
    # Handshake functions (generators: call with ``yield from``)
    # ------------------------------------------------------------------
    def bus_read(self, address: int, value_provider: Callable[[], int],
                 cycles: Optional[int] = None, label: str = "bfm:bus_read"):
        """Perform a read transaction and return the value."""
        cycles = cycles if cycles is not None else self.budgets.bus_read
        self.address_bus.write(address)
        self.read_strobe.write(True)
        yield from self._charge(cycles, label)
        value = value_provider()
        self.data_bus.write(value)
        self.read_strobe.write(False)
        self.access_count += 1
        self.read_count += 1
        self._notify_hooks("read", address, value)
        return value

    def bus_write(self, address: int, value: int,
                  apply: Callable[[int], None],
                  cycles: Optional[int] = None, label: str = "bfm:bus_write"):
        """Perform a write transaction."""
        cycles = cycles if cycles is not None else self.budgets.bus_write
        self.address_bus.write(address)
        self.data_bus.write(value)
        self.write_strobe.write(True)
        yield from self._charge(cycles, label)
        apply(value)
        self.write_strobe.write(False)
        self.access_count += 1
        self.write_count += 1
        self._notify_hooks("write", address, value)

    def _charge(self, cycles: int, label: str):
        """Charge the access cost in the BFM_ACCESS context."""
        energy = (
            self.api.energy_model.energy_of(TimingAnnotation(cycles))
            + self.budgets.access_energy_nj
        )
        yield from self.api.sim_wait(
            cycles=cycles,
            energy_nj=energy,
            context=ExecutionContext.BFM_ACCESS,
            label=label,
        )

    def _notify_hooks(self, kind: str, address: int, value: int) -> None:
        topic = self._obs_bfm
        if topic.enabled:
            topic.emit(
                kind, self.api.simulator.now.nanoseconds,
                driver=self.name, address=address, value=value,
            )
        for hook in self.access_hooks:
            hook(kind, address, value)

    def add_access_hook(self, hook: Callable[[str, int, int], None]) -> None:
        """Register a hook called after every completed bus access."""
        self.access_hooks.append(hook)

    def signals(self) -> List[Signal]:
        """The probe-able bus signals (for waveform tracing)."""
        return [self.address_bus, self.data_bus, self.read_strobe, self.write_strobe]

    def __repr__(self) -> str:
        return f"BusDriver({self.name!r}, accesses={self.access_count})"
