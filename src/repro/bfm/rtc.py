"""The real-time clock of the BFM.

"Real Time Clock driving the kernel Central Module with default timing
resolution = 1 ms" (section 5.1).  The RTC owns the tick signal that the
kernel's Thread Dispatch process is sensitive to, and counts milliseconds so
software can read a coarse hardware time-base.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import ExecutionContext
from repro.core.simapi import SimApi
from repro.sysc.clock import Clock
from repro.sysc.kernel import Simulator
from repro.sysc.process import WaitEvent
from repro.sysc.time import SimTime


class RealTimeClock:
    """A periodic tick generator with a software-readable counter."""

    def __init__(self, simulator: Simulator, api: Optional[SimApi] = None,
                 resolution: "SimTime | int" = SimTime.ms(1), name: str = "rtc"):
        self.simulator = simulator
        self.api = api
        self.resolution = SimTime.coerce(resolution)
        self.name = name
        self.tick_signal = Clock(f"{name}.tick", self.resolution, simulator=simulator)
        self.tick_count = 0
        simulator.register_thread(f"{name}.counter", self._count_ticks,
                                  sensitivity=self.tick_signal.posedge_event,
                                  dont_initialize=True)

    def _count_ticks(self):
        while True:
            self.tick_count += 1
            yield None  # wait for the next posedge (static sensitivity)

    def read_milliseconds(self):
        """Read the RTC counter from software (a BFM call with a cycle cost)."""
        if self.api is not None:
            yield from self.api.sim_wait_key(
                "bfm:rtc_read", context=ExecutionContext.BFM_ACCESS
            )
        return self.tick_count * max(1, int(self.resolution.to_ms()))

    def stop(self) -> None:
        """Stop the tick signal (ends a bounded co-simulation cleanly)."""
        self.tick_signal.stop()

    def __repr__(self) -> str:
        return f"RealTimeClock(resolution={self.resolution.format()}, ticks={self.tick_count})"
