"""The memory controller of the BFM (external RAM and code memory).

Models the MOVX-style external data memory of an 8051 system: byte-wide
reads and writes with their cycle budgets, backed by a sparse dictionary so
arbitrarily large address spaces cost nothing until touched.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bfm.budgets import BFMBudgets
from repro.bfm.driver import BusDriver


class MemoryController:
    """External data memory (XRAM) plus read-only code memory."""

    def __init__(self, driver: BusDriver, xram_size: int = 0x10000,
                 budgets: Optional[BFMBudgets] = None):
        self.driver = driver
        self.budgets = budgets if budgets is not None else driver.budgets
        self.xram_size = xram_size
        self._xram: Dict[int, int] = {}
        self._code: Dict[int, int] = {}
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # Software-visible BFM calls (generators)
    # ------------------------------------------------------------------
    def read_xram(self, address: int):
        """Read one byte of external RAM."""
        self._check_address(address)
        self.read_count += 1
        value = yield from self.driver.bus_read(
            address,
            lambda: self._xram.get(address, 0),
            cycles=self.budgets.xram_read,
            label="bfm:xram_read",
        )
        return value

    def write_xram(self, address: int, value: int):
        """Write one byte of external RAM."""
        self._check_address(address)
        self.write_count += 1
        yield from self.driver.bus_write(
            address,
            value & 0xFF,
            lambda v: self._xram.__setitem__(address, v),
            cycles=self.budgets.xram_write,
            label="bfm:xram_write",
        )

    def read_block(self, address: int, length: int):
        """Read *length* consecutive bytes (one bus transaction per byte)."""
        data = []
        for offset in range(length):
            value = yield from self.read_xram(address + offset)
            data.append(value)
        return data

    def write_block(self, address: int, data):
        """Write consecutive bytes starting at *address*."""
        for offset, value in enumerate(data):
            yield from self.write_xram(address + offset, value)

    def read_code(self, address: int):
        """Read one byte of code memory (cheaper than XRAM)."""
        value = yield from self.driver.bus_read(
            address,
            lambda: self._code.get(address, 0),
            cycles=self.budgets.code_read,
            label="bfm:code_read",
        )
        return value

    # ------------------------------------------------------------------
    # Backdoor access (test benches and loaders; no simulated cost)
    # ------------------------------------------------------------------
    def load_code(self, address: int, data) -> None:
        """Load code memory contents without consuming simulated time."""
        for offset, value in enumerate(data):
            self._code[address + offset] = value & 0xFF

    def peek(self, address: int) -> int:
        """Read XRAM without a bus transaction (debug backdoor)."""
        return self._xram.get(address, 0)

    def poke(self, address: int, value: int) -> None:
        """Write XRAM without a bus transaction (debug backdoor)."""
        self._check_address(address)
        self._xram[address] = value & 0xFF

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.xram_size:
            raise ValueError(f"XRAM address 0x{address:X} outside 0..0x{self.xram_size:X}")

    def __repr__(self) -> str:
        return (
            f"MemoryController(xram={self.xram_size} bytes, "
            f"reads={self.read_count}, writes={self.write_count})"
        )
