"""Peripheral devices attached to the parallel I/O: LCD, keypad, SSD.

These are the hardware halves of the paper's "ASIC components ... wrapped in
GUI widgets to give the look & feel of a virtual system prototype".  The GUI
halves live in :mod:`repro.app.widgets`; the devices here only keep the
hardware-visible state (frame buffer, key FIFO, digit latches) and raise
interrupts where the case study needs them (key presses).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.bfm.intc import InterruptController

#: Conventional external interrupt line used by the keypad (INT0).
KEYPAD_INTERRUPT_LINE = 0

#: Command byte written to the LCD control port to clear the display.
LCD_CLEAR_COMMAND = 0x01


class LCDDevice:
    """A character LCD with a small frame buffer.

    Software drives it through two ports: a *control* port (commands such as
    clear / set cursor) and a *data* port (character bytes at the cursor).
    In the video-game case study only the data path matters; commands are
    modelled for completeness.
    """

    def __init__(self, columns: int = 16, rows: int = 2):
        self.columns = columns
        self.rows = rows
        self.frame_buffer: List[List[int]] = [[0x20] * columns for _ in range(rows)]
        self.cursor = 0
        self.write_count = 0
        self.clear_count = 0
        #: Observers called after every visible update: fn(device).
        self.update_hooks: List[Callable[["LCDDevice"], None]] = []

    # -- PortDevice interface ------------------------------------------------
    def on_port_write(self, port: int, value: int) -> None:
        self.write_count += 1
        self.write_data(value)
        self._notify()

    def on_port_read(self, port: int) -> Optional[int]:
        row, column = divmod(self.cursor % (self.rows * self.columns), self.columns)
        return self.frame_buffer[row][column]

    # -- device behaviour -------------------------------------------------------
    def write_command(self, value: int) -> None:
        """Apply a control command (clear display / set cursor address)."""
        if value == LCD_CLEAR_COMMAND:
            self.clear()
        elif value & 0x80:
            self.cursor = value & 0x7F
        self._notify()

    def write_data(self, value: int) -> None:
        """Write one character at the cursor and advance it."""
        position = self.cursor % (self.rows * self.columns)
        row, column = divmod(position, self.columns)
        self.frame_buffer[row][column] = value & 0xFF
        self.cursor = (self.cursor + 1) % (self.rows * self.columns)

    def clear(self) -> None:
        """Blank the display."""
        self.clear_count += 1
        self.frame_buffer = [[0x20] * self.columns for _ in range(self.rows)]
        self.cursor = 0

    def text(self) -> List[str]:
        """The display contents as printable strings."""
        return [
            "".join(chr(c) if 32 <= c < 127 else "." for c in row)
            for row in self.frame_buffer
        ]

    def _notify(self) -> None:
        for hook in self.update_hooks:
            hook(self)

    def __repr__(self) -> str:
        return f"LCDDevice({self.columns}x{self.rows}, writes={self.write_count})"


class KeypadDevice:
    """A matrix keypad delivering key codes through a FIFO plus an interrupt."""

    def __init__(self, intc: Optional[InterruptController] = None,
                 interrupt_line: int = KEYPAD_INTERRUPT_LINE, fifo_depth: int = 8):
        self.intc = intc
        self.interrupt_line = interrupt_line
        self.fifo_depth = fifo_depth
        self._fifo: List[int] = []
        self.pressed_count = 0
        self.dropped_count = 0
        self.read_count = 0

    # -- PortDevice interface ------------------------------------------------
    def on_port_write(self, port: int, value: int) -> None:
        # Writing to the keypad port acknowledges/clears the oldest key.
        if self._fifo:
            self._fifo.pop(0)

    def on_port_read(self, port: int) -> Optional[int]:
        self.read_count += 1
        return self._fifo[0] if self._fifo else 0

    # -- external world ---------------------------------------------------------
    def press_key(self, key_code: int) -> bool:
        """Simulate a user pressing a key (raises the keypad interrupt)."""
        self.pressed_count += 1
        if len(self._fifo) >= self.fifo_depth:
            self.dropped_count += 1
            return False
        self._fifo.append(key_code & 0xFF)
        if self.intc is not None:
            self.intc.raise_line(self.interrupt_line)
        return True

    def pending_keys(self) -> List[int]:
        """Key codes waiting to be read."""
        return list(self._fifo)

    def __repr__(self) -> str:
        return f"KeypadDevice(pending={len(self._fifo)}, pressed={self.pressed_count})"


class SevenSegmentDevice:
    """A bank of seven-segment display digits (the paper's SSD peripheral)."""

    def __init__(self, digit_count: int = 4):
        self.digit_count = digit_count
        self.digits: List[int] = [0] * digit_count
        self._selected = 0
        self.write_count = 0
        self.update_hooks: List[Callable[["SevenSegmentDevice"], None]] = []

    # -- PortDevice interface ------------------------------------------------
    def on_port_write(self, port: int, value: int) -> None:
        """Multiplexed write: high nibble selects the digit, low nibble the value."""
        self.write_count += 1
        self._selected = (value >> 4) % self.digit_count
        self.digits[self._selected] = value & 0x0F
        for hook in self.update_hooks:
            hook(self)

    def on_port_read(self, port: int) -> Optional[int]:
        return (self._selected << 4) | self.digits[self._selected]

    # -- convenience -------------------------------------------------------------
    def value(self) -> int:
        """The displayed digits interpreted as a decimal number."""
        number = 0
        for digit in reversed(self.digits):
            number = number * 10 + digit
        return number

    def __repr__(self) -> str:
        return f"SevenSegmentDevice(digits={self.digits})"
