"""``python -m repro`` — the campaign command line.

Five subcommands make the campaign subsystem usable without writing code:

* ``list`` — show the built-in scenario registry,
* ``run`` — execute one scenario, with ``--set key=value`` knob overrides,
* ``batch`` — expand a parameter matrix over one or more scenarios and fan
  the runs out across multiprocessing workers,
* ``compare`` — align two metrics JSON files key by key,
* ``bench`` — kernel microbenchmarks + Table-2 S/R + campaign scenario
  timing, written to the ``BENCH_PR<n>.json`` perf-trend trajectory file.

Every run can export its JSONL event stream and JSON metrics; ``batch``
always writes both into the output directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.report import format_table
from repro.campaign.batch import default_worker_count, plan_batch, run_batch
from repro.campaign.metrics import compare_metrics
from repro.campaign.registry import (
    get_scenario,
    scenario_description,
    scenario_names,
)
from repro.campaign.runner import run_spec
from repro.campaign.spec import SpecError, parse_matrix_axis, parse_overrides

#: The default batch: every cheap built-in scenario crossed with two seeds,
#: which expands to eight runs — a meaningful parallelism demo out of the box.
DEFAULT_BATCH_SCENARIOS = (
    "quickstart",
    "sync-tour",
    "rtk-round-robin",
    "rtk-priority",
)
DEFAULT_BATCH_MATRIX = {"seed": [1, 2]}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="RTK-Spec TRON simulation campaigns: declarative scenario "
        "specs, a parallel batch runner, and metrics/event export.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the built-in scenarios")

    run_parser = subparsers.add_parser("run", help="run one scenario")
    run_parser.add_argument("scenario", help="registry scenario name")
    run_parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE", help="override a spec field or extra knob",
    )
    run_parser.add_argument(
        "--events-out", metavar="PATH",
        help="stream the JSONL event stream here *during* the run "
        "(bounded memory; '-' streams to stdout)",
    )
    run_parser.add_argument("--metrics-out", help="write the metrics JSON here")

    batch_parser = subparsers.add_parser(
        "batch", help="expand a parameter matrix and run it in parallel"
    )
    batch_parser.add_argument(
        "--scenario", dest="scenarios", action="append", default=[],
        help="scenario to include (repeatable; default: "
        + ", ".join(DEFAULT_BATCH_SCENARIOS) + ")",
    )
    batch_parser.add_argument(
        "--matrix", dest="matrix", action="append", default=[],
        metavar="KEY=V1,V2,...",
        help="parameter axis to sweep (repeatable; default: seed=1,2)",
    )
    batch_parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE", help="override applied to every run",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per core, at least 2)",
    )
    batch_parser.add_argument(
        "--serial", action="store_true", help="force serial execution"
    )
    batch_parser.add_argument(
        "--out", default="campaign_out", help="output directory (default: campaign_out)"
    )
    batch_parser.add_argument(
        "--no-events", action="store_true", help="skip the per-run event streams"
    )

    compare_parser = subparsers.add_parser(
        "compare", help="compare two metrics JSON files"
    )
    compare_parser.add_argument("left", help="baseline metrics JSON")
    compare_parser.add_argument("right", help="candidate metrics JSON")

    bench_parser = subparsers.add_parser(
        "bench",
        help="run kernel microbenchmarks + Table-2 S/R + scenario timing "
        "and write the perf-trend JSON",
    )
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="report file (default: BENCH_PR<n>.json of this checkout; "
        "'-' prints the JSON to stdout only; required with --quick)",
    )
    bench_parser.add_argument(
        "--scenario", dest="scenarios", action="append", default=[],
        help="scenario to time (repeatable; default: the cheap builtins)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="shrink iteration counts (schema-valid but noisy numbers)",
    )

    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in scenario_names():
        spec = get_scenario(name)
        rows.append(
            (name, spec.kernel, spec.workload, f"{spec.duration_ms:g}",
             scenario_description(name))
        )
    print(
        format_table(
            ["scenario", "kernel", "workload", "duration [ms]", "description"],
            rows,
            title="Built-in scenarios",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_scenario(args.scenario)
    if args.overrides:
        overrides = parse_overrides(args.overrides)
        _note_extra_overrides(overrides)
        spec = spec.with_overrides(overrides).validate()
    if args.events_out:
        # Events are streamed live over the observability bus while the
        # simulation runs, never materialized in memory.
        result = run_spec(spec, collect_events=False, events_stream=args.events_out)
    else:
        result = run_spec(spec)
    print(_run_summary_table([result.metrics]))
    timing = result.timing
    if timing.get("wall_clock_seconds") is not None:
        print(
            f"wall clock R = {timing['wall_clock_seconds']:.3f} s   "
            f"R/S = {timing['r_over_s']:.3f}   S/R = {timing['s_over_r']:.2f}"
        )
    if args.events_out:
        target = "stdout" if args.events_out == "-" else args.events_out
        print(f"events  -> {target} ({result.events_streamed} events, streamed)")
    if args.metrics_out:
        result.write_metrics(args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    scenarios: List[str] = args.scenarios or list(DEFAULT_BATCH_SCENARIOS)
    matrix: Dict[str, List[Any]] = {}
    for axis in args.matrix:
        key, values = parse_matrix_axis(axis)
        matrix[key] = values
    if not matrix:
        matrix = dict(DEFAULT_BATCH_MATRIX)
    overrides = parse_overrides(args.overrides) if args.overrides else None

    if overrides:
        _note_extra_overrides(overrides)
    specs = plan_batch(scenarios, matrix=matrix, overrides=overrides)
    workers = 1 if args.serial else args.workers
    if workers is None:
        workers = default_worker_count(len(specs))
    workers = max(1, min(workers, len(specs)))
    print(f"batch: {len(specs)} runs on {workers} worker(s)")

    batch = run_batch(specs, workers=workers, collect_events=not args.no_events)
    manifest = batch.write_outputs(args.out, include_events=not args.no_events)

    print(_run_summary_table([result.metrics for result in batch.results]))
    aggregate = batch.aggregate
    print(
        f"\naggregate over {aggregate['runs']} runs: "
        f"{aggregate['total'].get('context_switches', 0):.0f} context switches, "
        f"{aggregate['total'].get('preemptions', 0):.0f} preemptions, "
        f"{aggregate['total'].get('energy_mj', 0.0):.4f} mJ"
    )
    print(f"metrics -> {manifest['metrics']}")
    if not args.no_events:
        print(f"events  -> {len(manifest['events'])} JSONL files in {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    left = _load_comparable(args.left)
    right = _load_comparable(args.right)
    rows = compare_metrics(left, right)
    print(
        format_table(
            ["metric", args.left, args.right, "delta"],
            rows,
            title="Metrics comparison",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        default_report_path,
        render_report,
        run_benchmarks,
        validate_report,
        write_report,
    )

    if args.quick and args.out is None:
        # Quick-mode numbers are noisy by design; never let them silently
        # replace the committed trajectory file.
        print(
            "error: --quick requires an explicit --out (quick numbers must "
            "not overwrite the committed trajectory file)",
            file=sys.stderr,
        )
        return 2
    document = run_benchmarks(
        quick=args.quick, scenarios=args.scenarios or None
    )
    problems = validate_report(document)
    if problems:  # pragma: no cover - a bug in the bench itself
        for problem in problems:
            print(f"error: invalid bench report: {problem}", file=sys.stderr)
        return 1
    if args.out == "-":
        # Keep stdout pure JSON so '-' mode is pipeable; summary to stderr.
        print(render_report(document), file=sys.stderr)
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(render_report(document))
    out_path = args.out or default_report_path()
    write_report(document, out_path)
    print(f"report  -> {out_path}")
    return 0


def _note_extra_overrides(overrides: Dict[str, Any]) -> None:
    """Warn when a ``--set`` key is not a spec field (it becomes a workload
    knob, which is legitimate but also what a typo'd field name looks like)."""
    from repro.campaign.spec import ScenarioSpec

    fields = set(ScenarioSpec.__dataclass_fields__) - {"extra"}
    for key in overrides:
        if key not in fields:
            print(f"note: {key!r} is not a spec field; passing it through "
                  "as a workload knob", file=sys.stderr)


def _load_comparable(path: str) -> Dict[str, Any]:
    """Reduce a metrics file (single run or batch aggregate) to one dict."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if "aggregate" in document:
        return {"aggregate": document["aggregate"]}
    if "metrics" in document:
        return document["metrics"]
    return document


def _run_summary_table(metrics_list: List[Dict[str, Any]]) -> str:
    rows = []
    for metrics in metrics_list:
        rows.append(
            (
                metrics["scenario"],
                metrics["kernel"],
                metrics["seed"],
                f"{metrics['simulated_ms']:g}",
                metrics["context_switches"],
                metrics["preemptions"],
                metrics["interrupts"],
                metrics["syscall_total"],
                f"{metrics['cpu_utilization']:.3f}",
                f"{metrics['energy_mj']:.4f}",
            )
        )
    return format_table(
        ["scenario", "kernel", "seed", "S [ms]", "ctx sw", "preempt",
         "irq", "syscalls", "CPU util", "CEE [mJ]"],
        rows,
        title="Run metrics",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "batch": _cmd_batch,
        "compare": _cmd_compare,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: not a metrics JSON file: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
