"""``python -m repro`` — the campaign command line.

Subcommands make the campaign + grid subsystems usable without writing code:

* ``list`` — show the built-in scenario registry (``--json`` for tooling),
* ``describe`` — print a scenario's composed platform/kernel/workload/probes
  parts with every parameter resolved, as canonical JSON,
* ``run`` — execute one scenario (registry name or ``--spec file.json``),
  with ``--set key=value`` knob overrides,
* ``batch`` — expand a parameter matrix over one or more scenarios (and/or a
  ``--spec-dir`` of spec documents, and/or ``--family`` workload-family
  documents) and fan the runs out across multiprocessing workers,
* ``shard plan|run|merge`` — deterministically partition the expanded
  matrix over N independent workers, execute one shard (streaming,
  resumable from the result store), and reassemble shard outputs into the
  exact single-host batch artifact set,
* ``cache stats|gc|clear|verify`` — inspect and maintain the grid result
  store (``verify --repair`` quarantines entries failing integrity checks),
* ``index build|status`` — (re)build and inspect the analytics corpus index
  over a warm result store (a sqlite view: spec knobs × metrics per run),
* ``query`` — filter/group/aggregate the corpus (table or canonical JSON),
* ``report audit|deadlines|latency|family|telemetry`` — schedulability
  audits, deadline-miss and latency distributions, per-family regression
  tables (all zero-simulation over a warm store) and telemetry summaries,
* ``compare`` — align two metrics JSON files key by key,
* ``bench`` — kernel microbenchmarks + Table-2 S/R + campaign scenario
  timing, written to the ``BENCH_PR<n>.json`` perf-trend trajectory file.

``batch`` and ``shard run|merge`` accept ``--telemetry``: pipeline phase
spans (compose → build → run → store → merge) are collected over the obs
bus's ``telemetry`` topic, written to a ``telemetry.jsonl`` sidecar in the
output directory and summarized on stdout.  Telemetry is wall-clock data
and never enters spec hashes, stored artifacts or golden streams.

Failure semantics: ``batch`` and ``shard run`` envelope failures instead of
crashing the sweep.  Each failed run's per-attempt records land in a
``failures.jsonl`` sidecar (never in spec hashes, stored artifacts or golden
streams), transient failures retry up to ``--max-attempts`` with identical
spec and seed, runaway runs are cancelled by ``--run-timeout`` /
``--sim-budget-ns`` watchdogs, and persistent failures quarantine.  Exit
codes: 0 — everything ran; 1 — usable but partial (quarantined runs, a
coverage-gapped ``--allow-partial`` merge, failing ``cache verify``);
2 — unusable invocation (bad arguments, unreadable inputs, ``--fail-fast``
abort).

Caching: ``run``, ``batch`` and ``shard run`` consult the content-addressed
result store rooted at ``--cache DIR`` (default: the ``REPRO_CACHE_DIR``
environment variable).  A verified cache hit replays stored artifacts
byte-identically instead of simulating; ``--no-cache`` skips the store
entirely and ``--refresh`` re-simulates and overwrites the entries.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.report import format_table
from repro.campaign.batch import default_worker_count, plan_batch, run_batch
from repro.campaign.metrics import compare_metrics
from repro.campaign.registry import (
    describe_scenario,
    get_scenario,
    scenario_description,
    scenario_names,
)
from repro.campaign.runner import run_spec
from repro.campaign.spec import (
    ScenarioSpec,
    SpecError,
    load_spec_dir,
    load_spec_file,
    parse_matrix_axis,
    parse_overrides,
)
from repro.grid.store import GridError
from repro.resilience.envelope import (
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_UNUSABLE,
    ResilienceAbort,
    ResiliencePolicy,
    write_failures,
)

#: The default batch: every cheap built-in scenario crossed with two seeds,
#: which expands to eight runs — a meaningful parallelism demo out of the box.
DEFAULT_BATCH_SCENARIOS = (
    "quickstart",
    "sync-tour",
    "rtk-round-robin",
    "rtk-priority",
)
DEFAULT_BATCH_MATRIX = {"seed": [1, 2]}

#: Environment variable naming the default result-store root.
CACHE_ENV = "REPRO_CACHE_DIR"


# ----------------------------------------------------------------------
# Shared argument groups
# ----------------------------------------------------------------------
def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="grid result-store root consulted before simulating "
        f"(default: ${CACHE_ENV} when set)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="never consult or fill the result store",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="re-simulate even on a cache hit and overwrite the entry",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-attempts", type=int, default=2, metavar="N",
        help="attempts per run before quarantine; transient failures "
        "(worker crashes, I/O) retry with identical spec and seed "
        "(default: 2)",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock watchdog budget per run (default: unlimited)",
    )
    parser.add_argument(
        "--sim-budget-ns", type=int, default=None, metavar="NS",
        help="simulated-time watchdog budget per run in nanoseconds — a "
        "deterministic ceiling, so timed-out runs are never retried "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--failures-out", metavar="PATH", default=None,
        help="failure-record sidecar (default: <out>/failures.jsonl; "
        "written only when failures occurred or PATH was given)",
    )
    parser.add_argument(
        "--keep-going", dest="keep_going", action="store_true", default=True,
        help="continue past failed runs: quarantine them, aggregate over "
        "the successes and exit 1 (default)",
    )
    parser.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the sweep on the first non-ok run (exit 2)",
    )


def _policy_from_args(args: argparse.Namespace) -> ResiliencePolicy:
    """The sweep's :class:`ResiliencePolicy` (always on at the CLI)."""
    try:
        return ResiliencePolicy(
            max_attempts=args.max_attempts,
            run_timeout_s=args.run_timeout,
            sim_budget_ns=args.sim_budget_ns,
            keep_going=args.keep_going,
        )
    except ValueError as error:
        raise SpecError(str(error)) from None


def _add_selection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", dest="scenarios", action="append", default=[],
        help="scenario to include (repeatable; default: "
        + ", ".join(DEFAULT_BATCH_SCENARIOS) + ")",
    )
    parser.add_argument(
        "--spec-dir", metavar="DIR", default=None,
        help="also include every *.json ScenarioSpec document in DIR "
        "(sorted by filename; runs keep their stated seeds and the default "
        "seed matrix is disabled)",
    )
    parser.add_argument(
        "--family", dest="families", action="append", default=[],
        metavar="PATH",
        help="also include every member of the workload-family document at "
        "PATH (repeatable; members keep their derived seeds and the default "
        "seed matrix is disabled)",
    )
    parser.add_argument(
        "--matrix", dest="matrix", action="append", default=[],
        metavar="KEY=V1,V2,...",
        help="parameter axis to sweep (repeatable; default: seed=1,2 "
        "unless --spec-dir is given)",
    )
    parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE", help="override applied to every run",
    )


def _store_from_args(args: argparse.Namespace, required: bool = False):
    """Build the ResultStore the cache flags describe (or ``None``)."""
    if getattr(args, "no_cache", False):
        if getattr(args, "refresh", False):
            raise GridError("--refresh needs the cache; drop --no-cache")
        return None
    root = getattr(args, "cache", None) or os.environ.get(CACHE_ENV)
    if root is None:
        if required:
            raise GridError(
                f"no result store: pass --cache DIR or set ${CACHE_ENV}"
            )
        if getattr(args, "refresh", False):
            raise GridError(
                f"--refresh needs a result store: pass --cache DIR or set ${CACHE_ENV}"
            )
        return None
    from repro.grid.store import ResultStore

    return ResultStore(root)


def _selected_specs(args: argparse.Namespace) -> List[ScenarioSpec]:
    """Expand the selection flags into the sweep's global run list.

    The expansion is deterministic in the flags alone — scenario order,
    sorted spec-dir filenames, family-document seeds, matrix key order — so
    every shard of a sweep computes the identical list and the identical
    derived seeds.  Seed derivation is per base: registry scenarios
    decorrelate their matrix points with derived per-run seeds as always,
    while explicit spec documents and generated family members keep their
    stated/derived seeds.
    """
    names: List[str] = list(args.scenarios)
    file_specs: List[ScenarioSpec] = (
        load_spec_dir(args.spec_dir) if args.spec_dir else []
    )
    family_specs: List[ScenarioSpec] = []
    for family_path in getattr(args, "families", []):
        from repro.workload.families import expand_family, load_family_file

        family_specs += expand_family(load_family_file(family_path))
    if not names and not file_specs and not family_specs:
        names = list(DEFAULT_BATCH_SCENARIOS)
    matrix: Dict[str, List[Any]] = {}
    for axis in args.matrix:
        key, values = parse_matrix_axis(axis)
        matrix[key] = values
    if not matrix and not args.spec_dir and not family_specs:
        matrix = dict(DEFAULT_BATCH_MATRIX)
    overrides = parse_overrides(args.overrides) if args.overrides else None
    if overrides:
        _note_extra_overrides(overrides)
    specs = plan_batch(names, matrix=matrix, overrides=overrides)
    specs += plan_batch(file_specs + family_specs, matrix=matrix,
                        overrides=overrides, derive_seeds=False)
    return specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="RTK-Spec TRON simulation campaigns: declarative scenario "
        "specs, a parallel batch runner, a content-addressed result cache, "
        "cross-host sharding, and metrics/event export.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the built-in scenarios")
    list_parser.set_defaults(handler=_cmd_list)
    list_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry as a canonical JSON array for tooling",
    )

    describe_parser = subparsers.add_parser(
        "describe",
        help="print a scenario's composed platform/kernel/workload/probes "
        "parts as canonical JSON",
    )
    describe_parser.set_defaults(handler=_cmd_describe)
    describe_parser.add_argument(
        "scenario", nargs="?", default=None,
        help="registry scenario name (or use --spec)",
    )
    describe_parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="describe the scenario in a ScenarioSpec JSON document",
    )
    describe_parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE", help="override a spec field or extra knob",
    )

    run_parser = subparsers.add_parser("run", help="run one scenario")
    run_parser.set_defaults(handler=_cmd_run)
    run_parser.add_argument(
        "scenario", nargs="?", default=None,
        help="registry scenario name (or use --spec)",
    )
    run_parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="load the scenario from a ScenarioSpec JSON document",
    )
    run_parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KEY=VALUE", help="override a spec field or extra knob",
    )
    run_parser.add_argument(
        "--events-out", metavar="PATH",
        help="stream the JSONL event stream here *during* the run "
        "(bounded memory; '-' streams to stdout)",
    )
    run_parser.add_argument("--metrics-out", help="write the metrics JSON here")
    _add_cache_args(run_parser)

    batch_parser = subparsers.add_parser(
        "batch", help="expand a parameter matrix and run it in parallel"
    )
    batch_parser.set_defaults(handler=_cmd_batch)
    _add_selection_args(batch_parser)
    batch_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per core; at least 2 with "
        "--no-fuse)",
    )
    batch_parser.add_argument(
        "--serial", action="store_true", help="force serial execution"
    )
    batch_parser.add_argument(
        "--fuse", dest="fuse", action="store_true", default=True,
        help="fused engine: group runs per worker, reuse compositions and "
        "event plumbing (default)",
    )
    batch_parser.add_argument(
        "--no-fuse", dest="fuse", action="store_false",
        help="pre-fused engine: one process round trip per run",
    )
    batch_parser.add_argument(
        "--out", default="campaign_out", help="output directory (default: campaign_out)"
    )
    batch_parser.add_argument(
        "--no-events", action="store_true", help="skip the per-run event streams"
    )
    batch_parser.add_argument(
        "--telemetry", action="store_true",
        help="collect pipeline phase spans into <out>/telemetry.jsonl and "
        "print a per-phase summary",
    )
    _add_cache_args(batch_parser)
    _add_resilience_args(batch_parser)

    shard_parser = subparsers.add_parser(
        "shard", help="partition a sweep across hosts: plan, run one shard, merge"
    )
    shard_subparsers = shard_parser.add_subparsers(
        dest="shard_command", required=True
    )

    shard_plan = shard_subparsers.add_parser(
        "plan", help="print the run list one shard of the sweep executes"
    )
    shard_plan.set_defaults(handler=_cmd_shard_plan)
    shard_plan.add_argument("--shards", type=int, required=True,
                            help="total number of shards")
    shard_plan.add_argument("--index", type=int, required=True,
                            help="this shard's index (0-based)")
    _add_selection_args(shard_plan)
    shard_plan.add_argument(
        "--json", action="store_true",
        help="emit the shard's runs as JSON Lines ({index, spec}) for scripting",
    )

    shard_run = shard_subparsers.add_parser(
        "run", help="execute one shard, streaming per-run JSONL event files"
    )
    shard_run.set_defaults(handler=_cmd_shard_run)
    shard_run.add_argument("--shards", type=int, required=True)
    shard_run.add_argument("--index", type=int, required=True)
    _add_selection_args(shard_run)
    shard_run.add_argument(
        "--out", default=None,
        help="shard output directory (default: shard_<index>_of_<shards>)",
    )
    shard_run.add_argument(
        "--telemetry", action="store_true",
        help="collect pipeline phase spans into <out>/telemetry.jsonl and "
        "print a per-phase summary",
    )
    shard_run.add_argument(
        "--fuse", dest="fuse", action="store_true", default=True,
        help="reuse compositions and event plumbing across the shard's "
        "runs (default)",
    )
    shard_run.add_argument(
        "--no-fuse", dest="fuse", action="store_false",
        help="build every run from scratch",
    )
    _add_cache_args(shard_run)
    _add_resilience_args(shard_run)

    shard_merge = shard_subparsers.add_parser(
        "merge", help="reassemble shard outputs into the single-host batch artifacts"
    )
    shard_merge.set_defaults(handler=_cmd_shard_merge)
    shard_merge.add_argument(
        "shard_dirs", nargs="+", metavar="SHARD_DIR",
        help="every shard's output directory",
    )
    shard_merge.add_argument("--out", required=True, help="merged output directory")
    shard_merge.add_argument(
        "--no-events", action="store_true",
        help="merge metrics only, skip the event streams",
    )
    shard_merge.add_argument(
        "--telemetry", action="store_true",
        help="time the merge into <out>/telemetry.jsonl and print a summary",
    )
    shard_merge.add_argument(
        "--allow-partial", action="store_true",
        help="merge whatever shards/runs exist, report the gaps in "
        "<out>/coverage.json and exit 1 when runs are missing "
        "(default: refuse to merge with shards absent)",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect and maintain the grid result store"
    )
    cache_subparsers = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    for name, help_text, handler in (
        ("stats", "entry counts, health and sizes of the store", _cmd_cache_stats),
        ("gc", "drop stale/corrupt entries and staging residue", _cmd_cache_gc),
        ("clear", "remove every entry from the store", _cmd_cache_clear),
    ):
        sub = cache_subparsers.add_parser(name, help=help_text)
        sub.set_defaults(handler=handler)
        sub.add_argument(
            "--cache", metavar="DIR", default=None,
            help=f"result-store root (default: ${CACHE_ENV} when set)",
        )
    cache_verify = cache_subparsers.add_parser(
        "verify", help="check every entry's manifest and artifact digests"
    )
    cache_verify.set_defaults(handler=_cmd_cache_verify)
    cache_verify.add_argument(
        "--cache", metavar="DIR", default=None,
        help=f"result-store root (default: ${CACHE_ENV} when set)",
    )
    cache_verify.add_argument(
        "--repair", action="store_true",
        help="move failing entries into the store's .quarantine/ directory "
        "so later sweeps re-simulate them",
    )

    index_parser = subparsers.add_parser(
        "index", help="build/inspect the analytics corpus index over a store"
    )
    index_subparsers = index_parser.add_subparsers(
        dest="index_command", required=True
    )
    index_build = index_subparsers.add_parser(
        "build", help="(re)build the corpus index from the store's entries"
    )
    index_build.set_defaults(handler=_cmd_index_build)
    index_status_parser = index_subparsers.add_parser(
        "status", help="index presence, size and freshness vs. the store"
    )
    index_status_parser.set_defaults(handler=_cmd_index_status)
    for sub in (index_build, index_status_parser):
        sub.add_argument(
            "--cache", metavar="DIR", default=None,
            help=f"result-store root (default: ${CACHE_ENV} when set)",
        )

    query_parser = subparsers.add_parser(
        "query", help="filter/group/aggregate the corpus index"
    )
    query_parser.set_defaults(handler=_cmd_query)
    query_parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help=f"result-store root (default: ${CACHE_ENV} when set)",
    )
    query_parser.add_argument(
        "--where", action="append", default=[], metavar="COL OP VALUE",
        help="row filter, e.g. 'kernel=tkernel' or 'cpu_utilization>0.5' "
        "(repeatable; filters AND together)",
    )
    query_parser.add_argument(
        "--select", action="append", default=[], metavar="COL",
        help="column to show in row mode (repeatable; default: a standard "
        "knob/metric set)",
    )
    query_parser.add_argument(
        "--group-by", action="append", default=[], metavar="COL",
        help="group rows by this column (repeatable; switches to aggregate mode)",
    )
    query_parser.add_argument(
        "--agg", action="append", default=[], metavar="FN[:COL]",
        help="aggregate: count, or sum/mean/min/max:column (repeatable; "
        "default in grouped mode: count)",
    )
    query_parser.add_argument(
        "--limit", type=int, default=None, help="cap the number of output rows"
    )
    query_parser.add_argument(
        "--json", action="store_true",
        help="emit canonical JSON (the byte-stable machine form) instead of a table",
    )
    query_parser.add_argument(
        "--no-build", action="store_true",
        help="fail if the index is missing/stale instead of rebuilding it",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="audit reports over a warm corpus (zero simulation) "
        "and telemetry summaries",
    )
    report_subparsers = report_parser.add_subparsers(
        dest="report_command", required=True
    )
    report_audit = report_subparsers.add_parser(
        "audit", help="per-run schedulability audit (RM bound vs. requested "
        "and measured utilization)",
    )
    report_audit.set_defaults(handler=_cmd_report_audit)
    report_deadlines = report_subparsers.add_parser(
        "deadlines", help="deadline misses + response-time percentiles "
        "reconstructed from stored streams (generated periodic tasks)",
    )
    report_deadlines.set_defaults(handler=_cmd_report_deadlines)
    report_latency = report_subparsers.add_parser(
        "latency", help="execution-slice latency percentiles per run and "
        "aggregate, streamed from stored events",
    )
    report_latency.set_defaults(handler=_cmd_report_latency)
    report_family = report_subparsers.add_parser(
        "family", help="per-family run counts and metric means "
        "(regression table with --baseline)",
    )
    report_family.set_defaults(handler=_cmd_report_family)
    report_family.add_argument(
        "--baseline", default=None, metavar="FAMILY",
        help="add delta columns against this family's means",
    )
    report_family.add_argument(
        "--metric", dest="metrics", action="append", default=[],
        metavar="COL", help="metric column to average (repeatable; default: "
        "context switches, preemptions, CPU utilization, energy)",
    )
    for sub in (report_audit, report_deadlines, report_latency, report_family):
        sub.add_argument(
            "--cache", metavar="DIR", default=None,
            help=f"result-store root (default: ${CACHE_ENV} when set)",
        )
        sub.add_argument(
            "--where", action="append", default=[], metavar="COL OP VALUE",
            help="corpus filter (same syntax as 'repro query --where')",
        )
        sub.add_argument(
            "--json", action="store_true",
            help="emit canonical JSON instead of a table",
        )
    report_telemetry = report_subparsers.add_parser(
        "telemetry", help="summarize a telemetry.jsonl sidecar per phase"
    )
    report_telemetry.set_defaults(handler=_cmd_report_telemetry)
    report_telemetry.add_argument(
        "telemetry_path", metavar="TELEMETRY_JSONL",
        help="sidecar written by batch/shard --telemetry",
    )
    report_telemetry.add_argument(
        "--json", action="store_true",
        help="emit the per-phase rollup as canonical JSON",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="compare two metrics JSON files"
    )
    compare_parser.set_defaults(handler=_cmd_compare)
    compare_parser.add_argument("left", help="baseline metrics JSON")
    compare_parser.add_argument("right", help="candidate metrics JSON")

    bench_parser = subparsers.add_parser(
        "bench",
        help="run kernel microbenchmarks + Table-2 S/R + scenario timing "
        "and write the perf-trend JSON",
    )
    bench_parser.set_defaults(handler=_cmd_bench)
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="report file (default: BENCH_PR<n>.json of this checkout; "
        "'-' prints the JSON to stdout only; required with --quick)",
    )
    bench_parser.add_argument(
        "--scenario", dest="scenarios", action="append", default=[],
        help="scenario to time (repeatable; default: the cheap builtins)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="shrink iteration counts (schema-valid but noisy numbers)",
    )
    bench_subparsers = bench_parser.add_subparsers(dest="bench_command")
    bench_compare = bench_subparsers.add_parser(
        "compare",
        help="diff two trajectory files and gate on perf regressions",
    )
    bench_compare.set_defaults(handler=_cmd_bench_compare)
    bench_compare.add_argument("old", help="baseline BENCH_PR<n>.json")
    bench_compare.add_argument("new", help="candidate BENCH_PR<m>.json")
    bench_compare.add_argument(
        "--max-regress", type=float, default=None, metavar="PCT",
        help="fail (exit 1) when a directional metric regresses by more "
        "than PCT percent (default: 10)",
    )
    bench_compare.add_argument(
        "--ignore", dest="ignore", action="append", default=[],
        metavar="GLOB",
        help="drop flattened metric keys matching GLOB from both sides "
        "before comparing (repeatable; e.g. 'host.*', "
        "'scenarios.*.events.*')",
    )
    bench_compare.add_argument(
        "--preset", dest="presets", action="append", default=[],
        metavar="NAME",
        help="named ignore list to apply on top of --ignore "
        "('code-metrics': host facts, config echoes and workload-shape "
        "tallies removed — code-performance rows only)",
    )
    bench_compare.add_argument(
        "--json", action="store_true",
        help="emit the comparison document as JSON instead of the table",
    )

    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        from repro.campaign.spec import spec_hash
        from repro.obs.bus import canonical_json

        entries = []
        for name in scenario_names():
            spec = get_scenario(name)
            entries.append({
                "name": name,
                "description": scenario_description(name),
                "kernel": spec.kernel,
                "workload": spec.workload,
                "duration_ms": spec.duration_ms,
                "spec_hash": spec_hash(spec),
            })
        print(canonical_json(entries))
        return 0
    rows = []
    for name in scenario_names():
        spec = get_scenario(name)
        rows.append(
            (name, spec.kernel, spec.workload, f"{spec.duration_ms:g}",
             scenario_description(name))
        )
    print(
        format_table(
            ["scenario", "kernel", "workload", "duration [ms]", "description"],
            rows,
            title="Built-in scenarios",
        )
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = _spec_from_run_args(args)
    if spec is None:
        return 2
    from repro.obs.bus import canonical_json

    print(canonical_json(describe_scenario(spec)))
    return 0


def _spec_from_run_args(args: argparse.Namespace) -> Optional[ScenarioSpec]:
    """Resolve the scenario/--spec/--set trio shared by ``run`` and
    ``describe``; prints the usage error and returns ``None`` on misuse."""
    if (args.scenario is None) == (args.spec is None):
        print("error: give exactly one of a scenario name or --spec PATH",
              file=sys.stderr)
        return None
    if args.spec is not None:
        spec = load_spec_file(args.spec)
    else:
        spec = get_scenario(args.scenario)
    if args.overrides:
        overrides = parse_overrides(args.overrides)
        _note_extra_overrides(overrides)
        spec = spec.with_overrides(overrides).validate()
    return spec


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_run_args(args)
    if spec is None:
        return 2
    store = _store_from_args(args)
    if args.events_out:
        # Events are streamed live over the observability bus while the
        # simulation runs, never materialized in memory.
        result = run_spec(spec, collect_events=False,
                          events_stream=args.events_out,
                          store=store, refresh=args.refresh)
    else:
        result = run_spec(spec, store=store, refresh=args.refresh)
    print(_run_summary_table([result.metrics]))
    timing = result.timing
    if result.cached:
        print(
            f"cache hit: replayed stored artifacts in "
            f"{timing['wall_clock_seconds']:.3f} s (no simulation)"
        )
    elif timing.get("wall_clock_seconds") is not None:
        print(
            f"wall clock R = {timing['wall_clock_seconds']:.3f} s   "
            f"R/S = {timing['r_over_s']:.3f}   S/R = {timing['s_over_r']:.2f}"
        )
    if args.events_out:
        target = "stdout" if args.events_out == "-" else args.events_out
        print(f"events  -> {target} ({result.events_streamed} events, streamed)")
    if args.metrics_out:
        result.write_metrics(args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    return 0


def _telemetry_recorder(args: argparse.Namespace):
    """A TelemetryRecorder when ``--telemetry`` was given, else ``None``."""
    if not getattr(args, "telemetry", False):
        return None
    from repro.analytics.telemetry import TelemetryRecorder

    return TelemetryRecorder()


def _finish_telemetry(recorder, out_dir: str) -> None:
    """Write the sidecar and print the per-phase summary (no-op without
    a recorder).  The sidecar sits beside the outputs, never inside them."""
    if recorder is None:
        return
    from repro.analytics.telemetry import format_telemetry_summary

    os.makedirs(out_dir, exist_ok=True)
    sidecar = os.path.join(out_dir, "telemetry.jsonl")
    recorder.write_jsonl(sidecar)
    print(format_telemetry_summary(recorder.summary()))
    print(f"telemetry -> {sidecar} ({len(recorder)} spans)")


def _cmd_batch(args: argparse.Namespace) -> int:
    telemetry = _telemetry_recorder(args)
    if telemetry is not None:
        with telemetry.span("plan"):
            specs = _selected_specs(args)
    else:
        specs = _selected_specs(args)
    store = _store_from_args(args)
    workers = 1 if args.serial else args.workers
    if workers is None:
        if args.fuse:
            from repro.campaign.fused import fused_worker_count

            workers = fused_worker_count(len(specs))
        else:
            workers = default_worker_count(len(specs))
    workers = max(1, min(workers, len(specs)))
    engine = "fused" if args.fuse else "per-process"
    print(f"batch: {len(specs)} runs on {workers} {engine} worker(s)")

    policy = _policy_from_args(args)
    batch = run_batch(specs, workers=workers,
                      collect_events=not args.no_events,
                      store=store, refresh=args.refresh,
                      telemetry=telemetry, fuse=args.fuse, policy=policy)
    manifest = batch.write_outputs(args.out, include_events=not args.no_events)
    _finish_telemetry(telemetry, args.out)

    print(_run_summary_table([result.metrics for result in batch.results]))
    aggregate = batch.aggregate
    print(
        f"\naggregate over {aggregate['runs']} runs: "
        f"{aggregate['total'].get('context_switches', 0):.0f} context switches, "
        f"{aggregate['total'].get('preemptions', 0):.0f} preemptions, "
        f"{aggregate['total'].get('energy_mj', 0.0):.4f} mJ"
    )
    if store is not None:
        print(f"cache: {batch.cache_hits} hit(s), "
              f"{len(batch.results) - batch.cache_hits} simulated")
    print(f"metrics -> {manifest['metrics']}")
    if not args.no_events:
        print(f"events  -> {len(manifest['events'])} JSONL files in {args.out}")
    if batch.failures or args.failures_out:
        failures_path = (args.failures_out
                         or os.path.join(args.out, "failures.jsonl"))
        written = write_failures(failures_path, batch.failures)
        print(f"failures -> {failures_path} ({written} record(s))")
    quarantined = batch.quarantined
    if quarantined:
        print(f"{len(quarantined)} of {len(specs)} run(s) quarantined:",
              file=sys.stderr)
        for record in quarantined:
            print(f"  {record.summary()}", file=sys.stderr)
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    from repro.grid.shard import plan_shard

    specs = _selected_specs(args)
    plan = plan_shard(specs, args.shards, args.index)
    if args.json:
        for global_index, spec in plan.runs:
            print(json.dumps(
                {"index": global_index, "spec": spec.to_dict()}, sort_keys=True
            ))
        return 0
    rows = [
        (global_index, spec.name, spec.kernel, spec.workload, spec.seed,
         f"{spec.duration_ms:g}")
        for global_index, spec in plan.runs
    ]
    print(
        format_table(
            ["#", "scenario", "kernel", "workload", "seed", "duration [ms]"],
            rows,
            title=f"Shard {plan.index}/{plan.shards}: "
            f"{len(plan)} of {plan.total} runs",
        )
    )
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    from repro.grid.executor import run_shard
    from repro.grid.shard import plan_shard

    telemetry = _telemetry_recorder(args)
    if telemetry is not None:
        with telemetry.span("plan"):
            specs = _selected_specs(args)
            plan = plan_shard(specs, args.shards, args.index)
    else:
        specs = _selected_specs(args)
        plan = plan_shard(specs, args.shards, args.index)
    out_dir = args.out or f"shard_{plan.index}_of_{plan.shards}"
    store = _store_from_args(args)
    print(f"shard {plan.index}/{plan.shards}: {len(plan)} of {plan.total} runs "
          f"-> {out_dir}" + ("" if store is None else f"  (cache: {store.root})"))
    policy = _policy_from_args(args)
    document = run_shard(plan, out_dir, store=store, refresh=args.refresh,
                         telemetry=telemetry, fuse=args.fuse, policy=policy)
    _finish_telemetry(telemetry, out_dir)
    print(_run_summary_table(
        [entry["run"]["metrics"] for entry in document["runs"]]
    ))
    print(f"shard complete: {document['executed']} simulated, "
          f"{document['cached']} from cache; metrics -> "
          f"{os.path.join(out_dir, 'shard.json')}")
    if document.get("failed"):
        sidecar = os.path.join(out_dir, "failures.jsonl")
        if args.failures_out and args.failures_out != sidecar:
            import shutil

            shutil.copyfile(sidecar, args.failures_out)
            sidecar = args.failures_out
        print(f"{document['failed']} run(s) quarantined; "
              f"failures -> {sidecar}", file=sys.stderr)
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    from repro.grid.executor import merge_shards

    telemetry = _telemetry_recorder(args)
    manifest = merge_shards(
        args.shard_dirs, args.out, include_events=not args.no_events,
        telemetry=telemetry, allow_partial=args.allow_partial,
    )
    _finish_telemetry(telemetry, args.out)
    print(f"merged {manifest['merged']} runs from {manifest['shards']} shard(s)")
    print(f"metrics   -> {manifest['metrics']}")
    print(f"aggregate -> {manifest['aggregate']}")
    if not args.no_events:
        print(f"events    -> {len(manifest['events'])} JSONL files in {args.out}")
    if manifest["missing"]:
        print(f"partial merge: {manifest['merged']} of {manifest['runs']} "
              f"runs; missing indices {manifest['missing']}; "
              f"coverage -> {manifest['coverage']}", file=sys.stderr)
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _store_from_args(args, required=True)
    stats = store.stats()
    print(f"store {stats['root']}")
    print(f"  entries : {stats['entries']} "
          f"({stats['valid']} valid, {stats['stale']} stale, "
          f"{stats['corrupt']} corrupt)")
    print(f"  size    : {stats['bytes']:,} bytes, "
          f"{stats['events_lines']:,} stored events")
    if stats["scenarios"]:
        rows = sorted(stats["scenarios"].items())
        print(format_table(["scenario", "entries"], rows, title="By scenario"))
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _store_from_args(args, required=True)
    swept = store.gc()
    print(f"gc: removed {swept['removed']} unusable entr(y/ies), "
          f"kept {swept['kept']}, cleared {swept['staging_removed']} staging file(s)")
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _store_from_args(args, required=True)
    removed = store.clear()
    print(f"clear: removed {removed} entr(y/ies) from {store.root}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    store = _store_from_args(args, required=True)
    report = store.verify(repair=args.repair)
    print(f"verify: {report['checked']} entr(y/ies) checked, "
          f"{len(report['bad'])} failing")
    for item in report["bad"]:
        scenario = f" ({item['scenario']})" if item["scenario"] else ""
        print(f"  {item['key'][:16]}{scenario}: {'; '.join(item['problems'])}")
    if args.repair and report["quarantined"]:
        print(f"repair: moved {report['quarantined']} entr(y/ies) to "
              f"{store.quarantine_dir()}")
    if report["bad"] and not args.repair:
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.analytics.corpus import build_index

    store = _store_from_args(args, required=True)
    stats = build_index(store)
    print(f"index built: {stats['runs']} run(s), {stats['columns']} column(s)")
    print(f"index   -> {stats['path']}")
    print(f"corpus  -> {stats['corpus_fingerprint']}")
    return 0


def _cmd_index_status(args: argparse.Namespace) -> int:
    from repro.analytics.corpus import index_status

    store = _store_from_args(args, required=True)
    status = index_status(store)
    print(f"index {status['path']}")
    if not status["present"]:
        print("  present : no  (run 'repro index build')")
        return 0
    print(f"  present : yes  (schema {status['schema']})")
    print(f"  fresh   : {'yes' if status['fresh'] else 'no  (rebuild needed)'}")
    print(f"  runs    : {status['runs']}, columns: {status['columns']}")
    print(f"  recorded: {status['recorded_fingerprint']}")
    print(f"  store   : {status['corpus_fingerprint']}")
    return 0


def _open_corpus(args: argparse.Namespace, auto_build: bool = True):
    """The report/query handlers' shared store + open-index prologue."""
    from repro.analytics.corpus import open_index

    store = _store_from_args(args, required=True)
    index = open_index(store, auto_build=auto_build)
    if index.rebuilt:
        print(f"note: corpus index rebuilt ({index.path})", file=sys.stderr)
    return store, index


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.obs.bus import canonical_json

    _, index = _open_corpus(args, auto_build=not args.no_build)
    with index:
        headers, rows = index.query(
            select=args.select or None,
            where=args.where,
            group_by=args.group_by,
            aggregate=args.agg,
            limit=args.limit,
        )
        documents = index.documents(headers, rows)
    if args.json:
        print(canonical_json(documents))
        return 0
    rendered = [
        tuple("" if value is None else value for value in row) for row in rows
    ]
    print(format_table(list(headers), rendered,
                       title=f"Corpus query ({len(rows)} row(s))"))
    return 0


def _report_documents(args: argparse.Namespace, documents, headers, title) -> int:
    """Render one report as canonical JSON (``--json``) or a table."""
    from repro.obs.bus import canonical_json

    if args.json:
        print(canonical_json(documents))
        return 0
    rows = [
        tuple("" if doc.get(h) is None else doc.get(h) for h in headers)
        for doc in documents
    ]
    print(format_table(list(headers), rows, title=title))
    return 0


def _cmd_report_audit(args: argparse.Namespace) -> int:
    from repro.analytics.reports import schedulability_audit

    _, index = _open_corpus(args)
    with index:
        audit = schedulability_audit(index, where=args.where)
    return _report_documents(
        args, audit,
        ["key", "name", "kernel", "periodic_tasks", "requested_utilization",
         "rm_bound", "measured_utilization", "verdict"],
        "Schedulability audit",
    )


def _cmd_report_deadlines(args: argparse.Namespace) -> int:
    from repro.analytics.reports import deadline_report

    store, index = _open_corpus(args)
    with index:
        report = deadline_report(index, store, where=args.where)
    return _report_documents(
        args, report,
        ["key", "name", "kernel", "jobs", "misses", "miss_ratio",
         "response_p50_ms", "response_p99_ms"],
        "Deadline report (generated periodic task sets)",
    )


def _cmd_report_latency(args: argparse.Namespace) -> int:
    from repro.analytics.reports import latency_report
    from repro.obs.bus import canonical_json

    store, index = _open_corpus(args)
    with index:
        report = latency_report(index, store, where=args.where)
    if args.json:
        print(canonical_json(report))
        return 0
    headers = ["key", "name", "kernel", "slices", "p50_us", "p90_us",
               "p99_us", "max_us"]
    rows = [tuple(doc.get(h, "") for h in headers) for doc in report["runs"]]
    aggregate = report["aggregate"]
    rows.append(tuple(
        ["(aggregate)", "", ""] + [aggregate[h] for h in headers[3:]]
    ))
    print(format_table(headers, rows, title="Execution-slice latency"))
    return 0


def _cmd_report_family(args: argparse.Namespace) -> int:
    from repro.analytics.reports import FAMILY_METRICS, family_report

    _, index = _open_corpus(args)
    metrics = tuple(args.metrics) if args.metrics else FAMILY_METRICS
    with index:
        report = family_report(
            index, where=args.where, metrics=metrics, baseline=args.baseline,
        )
    headers: List[str] = ["family", "runs"]
    for document in report:
        for column in document:
            if column not in headers:
                headers.append(column)
    rendered = []
    for document in report:
        rendered.append(tuple(
            "" if document.get(h) is None else document.get(h) for h in headers
        ))
    if args.json:
        from repro.obs.bus import canonical_json

        print(canonical_json(report))
        return 0
    print(format_table(headers, rendered, title="Per-family metrics"))
    return 0


def _cmd_report_telemetry(args: argparse.Namespace) -> int:
    from repro.analytics.telemetry import (
        format_telemetry_summary,
        load_telemetry,
        summarize_spans,
    )
    from repro.obs.bus import canonical_json

    spans = load_telemetry(args.telemetry_path)
    summary = summarize_spans(spans)
    if args.json:
        print(canonical_json(summary))
        return 0
    print(format_telemetry_summary(
        summary, title=f"Telemetry ({len(spans)} span(s))"
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    left = _load_comparable(args.left)
    right = _load_comparable(args.right)
    rows = compare_metrics(left, right)
    print(
        format_table(
            ["metric", args.left, args.right, "delta"],
            rows,
            title="Metrics comparison",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        default_report_path,
        render_report,
        run_benchmarks,
        validate_report,
        write_report,
    )

    if args.quick and args.out is None:
        # Quick-mode numbers are noisy by design; never let them silently
        # replace the committed trajectory file.
        print(
            "error: --quick requires an explicit --out (quick numbers must "
            "not overwrite the committed trajectory file)",
            file=sys.stderr,
        )
        return 2
    document = run_benchmarks(
        quick=args.quick, scenarios=args.scenarios or None
    )
    problems = validate_report(document)
    if problems:  # pragma: no cover - a bug in the bench itself
        for problem in problems:
            print(f"error: invalid bench report: {problem}", file=sys.stderr)
        return 1
    if args.out == "-":
        # Keep stdout pure JSON so '-' mode is pipeable; summary to stderr.
        print(render_report(document), file=sys.stderr)
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(render_report(document))
    out_path = args.out or default_report_path()
    write_report(document, out_path)
    print(f"report  -> {out_path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.perf.compare import (
        DEFAULT_MAX_REGRESS_PCT,
        ReportError,
        compare_reports,
        format_compare,
        load_report,
        resolve_ignore,
    )

    threshold = (
        DEFAULT_MAX_REGRESS_PCT if args.max_regress is None else args.max_regress
    )
    try:
        ignore = resolve_ignore(args.ignore, args.presets)
        old = load_report(args.old)
        new = load_report(args.new)
    except ReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    document = compare_reports(old, new, max_regress_pct=threshold,
                               ignore=ignore)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(format_compare(document))
    return 1 if document["verdict"] == "regression" else 0


def _note_extra_overrides(overrides: Dict[str, Any]) -> None:
    """Warn when a ``--set`` key is not a spec field (it becomes a workload
    knob, which is legitimate but also what a typo'd field name looks like)."""
    fields = set(ScenarioSpec.__dataclass_fields__) - {"extra"}
    for key in overrides:
        if key not in fields:
            print(f"note: {key!r} is not a spec field; passing it through "
                  "as a workload knob", file=sys.stderr)


def _load_comparable(path: str) -> Dict[str, Any]:
    """Reduce a metrics file (single run or batch aggregate) to one dict.

    Missing files surface as ``OSError`` and malformed JSON as
    ``JSONDecodeError`` (both turned into one-line errors by ``main``); a
    JSON document that is not a metrics-shaped object raises
    :class:`GridError` instead of tracebacking downstream.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise GridError(
            f"{path!r} is not a metrics document (expected a JSON object, "
            f"got {type(document).__name__})"
        )
    if "aggregate" in document:
        return {"aggregate": document["aggregate"]}
    if "metrics" in document:
        metrics = document["metrics"]
        if not isinstance(metrics, dict):
            raise GridError(
                f"{path!r} is not a metrics document ('metrics' is not an object)"
            )
        return metrics
    return document


def _run_summary_table(metrics_list: List[Dict[str, Any]]) -> str:
    rows = []
    for metrics in metrics_list:
        rows.append(
            (
                metrics["scenario"],
                metrics["kernel"],
                metrics["seed"],
                f"{metrics['simulated_ms']:g}",
                metrics["context_switches"],
                metrics["preemptions"],
                metrics["interrupts"],
                metrics["syscall_total"],
                f"{metrics['cpu_utilization']:.3f}",
                f"{metrics['energy_mj']:.4f}",
            )
        )
    return format_table(
        ["scenario", "kernel", "seed", "S [ms]", "ctx sw", "preempt",
         "irq", "syscalls", "CPU util", "CEE [mJ]"],
        rows,
        title="Run metrics",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ResilienceAbort as error:
        print(f"error: fail-fast abort: {error}", file=sys.stderr)
        return EXIT_UNUSABLE
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_UNUSABLE
    except GridError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_UNUSABLE
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_UNUSABLE
    except json.JSONDecodeError as error:
        print(f"error: not a metrics JSON file: {error}", file=sys.stderr)
        return EXIT_UNUSABLE


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
