"""Declarative scenario specifications and parameter-matrix expansion.

A :class:`ScenarioSpec` is everything the campaign runner needs to execute
one simulation run: which kernel model (RTK-Spec TRON, I or II), which
workload (the paper's video-game co-simulation, the sync-primitives tour,
the energy profile, the scheduler comparison, or seeded synthetic task
sets), and the knobs of that run (duration, task count, periods, BFM access
period, GUI on/off, seed, ...).

Specs are plain data: they round-trip through ``to_dict``/``from_dict`` so
the CLI, the batch engine and the multiprocessing workers can all pass them
around as JSON.  :func:`expand_matrix` turns one base spec plus a parameter
matrix into the full cross product of runs, each with a deterministic
per-run seed derived from the base seed and the run's position.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.bus import canonical_json

#: Kernel models a scenario can run on.
KERNELS = ("tkernel", "rtkspec1", "rtkspec2")

#: Built-in workload families (see :mod:`repro.workload.builtins`).
WORKLOADS = (
    "quickstart",
    "sync_tour",
    "videogame",
    "energy_profile",
    "scheduler_comparison",
    "synthetic",
    "generated",
)

#: Workloads that are wired to RTK-Spec TRON object services and therefore
#: cannot run on the minimal RTK-Spec I/II task API.
TKERNEL_ONLY_WORKLOADS = ("quickstart", "sync_tour", "videogame", "energy_profile")


class SpecError(ValueError):
    """Raised when a scenario spec is inconsistent."""


@dataclass
class ScenarioSpec:
    """Declarative description of one simulation run."""

    #: Scenario name (registry key for built-ins; free-form otherwise).
    name: str
    #: Kernel model: ``tkernel`` | ``rtkspec1`` | ``rtkspec2``.
    kernel: str = "tkernel"
    #: Workload family, one of :data:`WORKLOADS`.
    workload: str = "quickstart"
    #: Simulated duration of the run in milliseconds.
    duration_ms: float = 100.0
    #: Number of application tasks (synthetic / scheduler workloads).
    task_count: int = 4
    #: Base task period in milliseconds (workload-specific meaning).
    period_ms: float = 10.0
    #: Explicit task priorities; empty means the workload derives them.
    priorities: List[int] = field(default_factory=list)
    #: BFM access period driving the LCD widget (the Table 2 knob).
    bfm_access_period_ms: int = 10
    #: Whether GUI widgets (and their host callback cost) are enabled.
    gui_enabled: bool = False
    #: System tick in milliseconds.
    tick_ms: float = 1.0
    #: Random seed for workloads that draw task sets.
    seed: int = 0
    #: Round-robin time slice in ticks (rtkspec1 only).
    time_slice_ticks: int = 4
    #: Free-form workload-specific knobs.
    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Check internal consistency; returns self so calls can chain."""
        problems: List[str] = []
        for field_name in ("duration_ms", "period_ms", "tick_ms"):
            value = getattr(self, field_name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"invalid scenario {self.name!r}: {field_name} must be a "
                    f"number, got {value!r}"
                )
        for field_name in ("task_count", "bfm_access_period_ms", "seed",
                           "time_slice_ticks"):
            value = getattr(self, field_name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"invalid scenario {self.name!r}: {field_name} must be an "
                    f"integer, got {value!r}"
                )
        if not isinstance(self.priorities, (list, tuple)) or any(
            isinstance(p, bool) or not isinstance(p, int) for p in self.priorities
        ):
            raise SpecError(
                f"invalid scenario {self.name!r}: priorities must be a list "
                f"of integers, got {self.priorities!r}"
            )
        if not isinstance(self.name, str):
            raise SpecError(
                f"invalid scenario: name must be a string, got {self.name!r}"
            )
        if not isinstance(self.gui_enabled, bool):
            raise SpecError(
                f"invalid scenario {self.name!r}: gui_enabled must be a "
                f"boolean, got {self.gui_enabled!r}"
            )
        if not isinstance(self.extra, Mapping) or any(
            not isinstance(key, str) for key in self.extra
        ):
            raise SpecError(
                f"invalid scenario {self.name!r}: extra must be a mapping "
                f"with string keys, got {self.extra!r}"
            )
        if not self.name:
            problems.append("name must not be empty")
        if self.kernel not in KERNELS:
            problems.append(f"unknown kernel {self.kernel!r} (choose from {KERNELS})")
        if self.workload not in WORKLOADS:
            problems.append(
                f"unknown workload {self.workload!r} (choose from {WORKLOADS})"
            )
        elif self.workload in TKERNEL_ONLY_WORKLOADS and self.kernel != "tkernel":
            problems.append(
                f"workload {self.workload!r} requires kernel 'tkernel', "
                f"not {self.kernel!r}"
            )
        elif self.workload == "scheduler_comparison" and self.kernel == "tkernel":
            problems.append(
                "workload 'scheduler_comparison' exercises the minimal "
                "RTK-Spec task API; choose kernel 'rtkspec1' or 'rtkspec2'"
            )
        if self.duration_ms <= 0:
            problems.append("duration_ms must be positive")
        if self.task_count < 1:
            problems.append("task_count must be at least 1")
        if self.period_ms <= 0:
            problems.append("period_ms must be positive")
        if self.bfm_access_period_ms < 1:
            problems.append("bfm_access_period_ms must be at least 1 ms")
        if self.tick_ms <= 0:
            problems.append("tick_ms must be positive")
        if self.time_slice_ticks < 1:
            problems.append("time_slice_ticks must be at least 1")
        if self.priorities and len(self.priorities) != self.task_count:
            problems.append(
                f"priorities has {len(self.priorities)} entries for "
                f"{self.task_count} tasks"
            )
        if any(p < 1 for p in self.priorities):
            problems.append("priorities must be positive")
        if problems:
            raise SpecError(
                f"invalid scenario {self.name!r}: " + "; ".join(problems)
            )
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe plain-dict view of the spec."""
        return {
            "name": self.name,
            "kernel": self.kernel,
            "workload": self.workload,
            "duration_ms": self.duration_ms,
            "task_count": self.task_count,
            "period_ms": self.period_ms,
            "priorities": list(self.priorities),
            "bfm_access_period_ms": self.bfm_access_period_ms,
            "gui_enabled": self.gui_enabled,
            "tick_ms": self.tick_ms,
            "seed": self.seed,
            "time_slice_ticks": self.time_slice_ticks,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec fields: {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("spec needs a 'name'")
        return cls(**dict(data))

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy with *overrides* applied (unknown keys go into ``extra``)."""
        known = set(self.__dataclass_fields__) - {"extra"}
        direct = {k: v for k, v in overrides.items() if k in known}
        extra = {k: v for k, v in overrides.items() if k not in known}
        spec = replace(self, **direct)
        if extra:
            spec.extra = {**self.extra, **extra}
        return spec


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def spec_hash_from_document(document: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON of a spec document.

    This is the grid result store's cache key: two specs hash identically
    exactly when their ``to_dict`` forms are equal, on every host and in
    every process.  The canonical encoder (sorted keys, tight separators) is
    the same one behind the metrics/event files, so the key contract cannot
    drift from the artifact contract.
    """
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def spec_hash(spec: "ScenarioSpec") -> str:
    """SHA-256 cache key of a scenario spec (see :func:`spec_hash_from_document`)."""
    return spec_hash_from_document(spec.to_dict())


# ----------------------------------------------------------------------
# Spec documents on disk
# ----------------------------------------------------------------------
def load_spec_file(path: str) -> ScenarioSpec:
    """Load and validate one ``ScenarioSpec`` JSON document from *path*.

    The file holds the ``to_dict`` form of a spec (a batch metrics file's
    ``spec`` section works verbatim).  Anything that is not a valid spec —
    unreadable file, malformed JSON, a non-object document, unknown fields,
    inconsistent knobs — raises :class:`SpecError` with a one-line message.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise SpecError(f"cannot read spec file {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise SpecError(f"spec file {path!r} is not valid JSON: {error}") from None
    if not isinstance(document, Mapping):
        raise SpecError(
            f"spec file {path!r} must hold a JSON object, got "
            f"{type(document).__name__}"
        )
    try:
        return ScenarioSpec.from_dict(document).validate()
    except SpecError as error:
        raise SpecError(f"spec file {path!r}: {error}") from None


def load_spec_dir(directory: str) -> List[ScenarioSpec]:
    """Load every ``*.json`` spec document under *directory*, sorted by name.

    Sorting makes the resulting run order (and therefore derived seeds and
    shard assignments) independent of filesystem enumeration order.
    """
    try:
        names = sorted(
            name for name in os.listdir(directory) if name.endswith(".json")
        )
    except OSError as error:
        raise SpecError(f"cannot read spec directory {directory!r}: {error}") from None
    if not names:
        raise SpecError(f"spec directory {directory!r} has no *.json documents")
    return [load_spec_file(os.path.join(directory, name)) for name in names]


# ----------------------------------------------------------------------
# Deterministic per-run seeds
# ----------------------------------------------------------------------
def derive_seed(base_seed: int, index: int, name: str = "") -> int:
    """A stable per-run seed from the base seed and the run's identity.

    Uses CRC32 over a canonical string so the same (seed, index, name)
    always maps to the same value on every platform and process.
    """
    return zlib.crc32(f"{base_seed}:{index}:{name}".encode("utf-8")) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# Matrix expansion
# ----------------------------------------------------------------------
def expand_matrix(
    base: ScenarioSpec,
    matrix: Optional[Mapping[str, Sequence[Any]]] = None,
    derive_seeds: bool = True,
) -> List[ScenarioSpec]:
    """Expand *base* × *matrix* into the full list of runs.

    The matrix maps spec field names (or ``extra`` knob names) to the list
    of values to sweep.  Expansion order is the cross product with the
    matrix's key order as the significance order (first key varies
    slowest), so the run list is deterministic.  Each run is validated and,
    when *derive_seeds* is true, given a per-run seed derived from the base
    spec's seed and the run index — unless the matrix itself sweeps
    ``seed``, which then wins.
    """
    matrix = dict(matrix or {})
    for key, values in matrix.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(f"matrix axis {key!r} must be a non-empty sequence")
    axes = list(matrix.items())
    specs: List[ScenarioSpec] = []
    for index, combo in enumerate(
        itertools.product(*(values for _, values in axes)) if axes else [()]
    ):
        overrides: Dict[str, Any] = {key: value for (key, _), value in zip(axes, combo)}
        spec = base.with_overrides(overrides)
        if derive_seeds and "seed" not in matrix:
            spec.seed = derive_seed(base.seed, index, spec.name)
        suffix = "-".join(f"{key}={value}" for key, value in overrides.items())
        if suffix:
            spec.name = f"{spec.name}[{suffix}]"
        specs.append(spec.validate())
    return specs


def expansion_count(matrix: Optional[Mapping[str, Sequence[Any]]]) -> int:
    """Number of runs :func:`expand_matrix` would produce."""
    count = 1
    for values in (matrix or {}).values():
        count *= max(len(values), 1)
    return count


def parse_matrix_axis(text: str) -> Tuple[str, List[Any]]:
    """Parse a CLI ``key=v1,v2,...`` matrix axis with literal value coercion."""
    if "=" not in text:
        raise SpecError(f"matrix axis {text!r} is not of the form key=v1,v2,...")
    key, _, values_text = text.partition("=")
    key = key.strip()
    if not key:
        raise SpecError(f"matrix axis {text!r} has an empty key")
    values = [coerce_value(v) for v in values_text.split(",") if v != ""]
    if not values:
        raise SpecError(f"matrix axis {key!r} has no values")
    return key, values


def coerce_value(text: str) -> Any:
    """Coerce a CLI string to bool/int/float when it looks like one."""
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text.strip()


def parse_overrides(pairs: Iterable[str]) -> Dict[str, Any]:
    """Parse CLI ``--set key=value`` pairs into an overrides dict.

    A comma-separated value becomes a list of coerced items, so list fields
    are settable from the shell: ``--set priorities=5,10,15``.
    """
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SpecError(f"override {pair!r} is not of the form key=value")
        key, _, value = pair.partition("=")
        key = key.strip()
        if not key:
            raise SpecError(f"override {pair!r} has an empty key")
        if "," in value:
            overrides[key] = [coerce_value(v) for v in value.split(",")]
        else:
            overrides[key] = coerce_value(value)
    return overrides
