"""Fused multi-run execution: amortize per-run setup across a sweep.

A sweep run the pre-fused way pays, for every member, the full
build-from-scratch path: one composition resolution, one IPC round trip
per run (spec out, metrics *and* the whole event list back — even when the
caller is going to discard it), plus the process fan-out itself.  For the
short runs that dominate batch/family sweeps those fixed costs rival the
simulation time.

This module is the fused engine the batch and shard planes share:

* :class:`CompositionCache` — ``compose(spec)`` memoized per spec hash.
  Caching is safe because a :class:`~repro.workload.components.Composition`
  is a frozen dataclass of frozen parts whose workload component is a
  stateless registry singleton; per-run state only appears at
  ``Composition.build`` time.  Distinct specs can never collide: the key is
  the content hash of the canonical spec document.
* :class:`FusedRunContext` — the per-process reusable plumbing: the
  composition cache plus a pooled event collector the runner clears and
  re-subscribes instead of allocating a fresh ``ListSink`` per run.
* :func:`run_group` / :func:`_execute_group` — run a *group* of specs
  inside one process (the worker entry point of the fused parallel batch):
  one IPC round trip carries many runs, events are shipped back only when
  the coordinator actually needs them (caller collects, or the run is
  bound for the result store), and each run's cacheability rides along so
  the coordinator never re-composes just to decide ``put_result``.
* :func:`fused_worker_count` / :func:`compute_chunksize` — the fused
  engine's parallelism policy.  Unlike the pre-fused default there is no
  ≥2-worker floor: on a single-core host a pool cannot beat the in-process
  loop, so the fused path runs serially there — that *is* the fast path.

Determinism is untouched: the fused engine reorders no runs, derives no
seeds and adds nothing to any deterministic artifact — serial, parallel,
fused and sharded-merged aggregates stay byte-identical (pinned by
``tests/campaign/test_fused.py``).
"""

from __future__ import annotations

import contextlib
import gc
import os
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.campaign.spec import ScenarioSpec, spec_hash
from repro.obs.sinks import ListSink

#: Upper bound on memoized compositions per process (a sweep with more
#: distinct specs than this recycles the oldest entries FIFO).
COMPOSITION_CACHE_LIMIT = 4096

#: Upper bound on specs per fused worker payload: groups stay small enough
#: that results keep streaming back for incremental store fills / resume.
MAX_GROUP_SIZE = 32

#: Target payloads per worker when grouping a sweep — enough slack that an
#: unlucky worker with slow runs doesn't straggle the whole pool.
_GROUPS_PER_WORKER = 4

#: Runs between explicit collections while the cyclic collector is paused —
#: bounds the garbage backlog of an arbitrarily long fused sweep.
_COLLECT_EVERY = 64


@contextlib.contextmanager
def paused_gc() -> Iterator[None]:
    """Pause the cyclic collector across a fused run loop.

    Every run churns generator/thread cycles fast enough that the
    collector's periodic scans land *inside* measured simulation time; the
    fused loops run with collection paused and reap explicitly every
    :data:`_COLLECT_EVERY` runs instead (:meth:`FusedRunContext.reap`).
    No-op when the caller already disabled the collector — their policy
    wins, including on exit.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


class CompositionCache:
    """``compose(spec)`` memoized per spec hash, with hit/miss counters."""

    def __init__(self, limit: int = COMPOSITION_CACHE_LIMIT):
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self._compositions: Dict[str, Any] = {}

    def composition_for(self, spec: ScenarioSpec, key: Optional[str] = None):
        """The (possibly cached) composition of *spec*.

        *key* lets a caller that already computed the spec hash skip the
        recomputation.
        """
        if key is None:
            key = spec_hash(spec)
        composition = self._compositions.get(key)
        if composition is not None:
            self.hits += 1
            return composition
        from repro.workload.components import compose

        composition = compose(spec)
        self.misses += 1
        if len(self._compositions) >= self.limit:
            self._compositions.pop(next(iter(self._compositions)))
        self._compositions[key] = composition
        return composition

    def clear(self) -> None:
        self._compositions.clear()
        self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self._compositions)


#: The process-wide cache: the coordinator's cacheability checks, fused
#: serial loops and (via fork inheritance) fresh pool workers all share it.
_PROCESS_CACHE = CompositionCache()


def cached_composition(spec: ScenarioSpec, key: Optional[str] = None):
    """Resolve *spec* through the process-wide composition cache."""
    return _PROCESS_CACHE.composition_for(spec, key)


def process_composition_cache() -> CompositionCache:
    """The process-wide cache itself (tests clear/inspect it)."""
    return _PROCESS_CACHE


class FusedRunContext:
    """Reusable per-process run plumbing for many ``run_spec`` calls.

    Holds the composition cache and one pooled event collector; the runner
    resolves the spec's composition through the cache (skipping the compose
    phase on every repeat) and checks the collector out per run instead of
    allocating a sink each time.  One context must only drive one run at a
    time — exactly the fused engine's serial-within-a-process discipline.
    """

    def __init__(self, compositions: Optional[CompositionCache] = None):
        self.compositions = (
            _PROCESS_CACHE if compositions is None else compositions
        )
        self.collector = ListSink()
        self.runs = 0

    def checkout_collector(self, topics: Sequence[str]) -> ListSink:
        """The pooled collector, retargeted to *topics* and emptied."""
        self.collector.topics = tuple(topics)
        self.collector.clear()
        return self.collector

    def reap(self) -> None:
        """Count one finished run; collect when the paused-GC backlog is due."""
        self.runs += 1
        if self.runs % _COLLECT_EVERY == 0 and not gc.isenabled():
            gc.collect()


def fused_worker_count(run_count: int) -> int:
    """Default parallelism of the fused engine for *run_count* runs.

    One worker per actual core and never more workers than runs — with no
    ≥2 floor: on a single-core host the process pool only adds fork and
    IPC cost on top of the same serial execution, so the fused default is
    the in-process loop there.
    """
    cores = os.cpu_count() or 1
    return max(1, min(cores, run_count))


def compute_chunksize(pending: int, workers: int) -> int:
    """Specs per worker payload for a sweep of *pending* runs.

    Large enough to amortize the per-round-trip IPC cost, small enough
    that results stream back for incremental store fills and that the pool
    load-balances (about :data:`_GROUPS_PER_WORKER` payloads per worker),
    capped at :data:`MAX_GROUP_SIZE`.
    """
    if pending <= 0:
        return 1
    if workers <= 1:
        return pending
    per_worker = -(-pending // (workers * _GROUPS_PER_WORKER))
    return max(1, min(MAX_GROUP_SIZE, per_worker))


def run_group(
    indexed_specs: Sequence[Tuple[int, ScenarioSpec]],
    collect_events: bool = True,
    need_store_events: bool = False,
    telemetry: bool = False,
    context: Optional[FusedRunContext] = None,
) -> List[Dict[str, Any]]:
    """Run ``(global_index, spec)`` pairs in this process, fused.

    Returns one raw result dict per run — the coordinator-facing shape:
    spec/metrics/timing/events plus the run's global ``index``, its
    ``cacheable`` flag (probes == sched-only, the stored-artifact
    contract) and the worker-local telemetry spans.  Events are collected
    only when the caller wants them (*collect_events*) or the run is bound
    for the result store (*need_store_events* and cacheable) — nothing is
    built just to be discarded after the IPC round trip.
    """
    from repro.campaign.runner import run_spec

    if context is None:
        context = FusedRunContext()
    raws: List[Dict[str, Any]] = []
    with paused_gc():
        for index, spec in indexed_specs:
            composition = context.compositions.composition_for(spec)
            cacheable = composition.probes.topics == ("sched",)
            run_events = collect_events or (need_store_events and cacheable)
            recorder = None
            if telemetry:
                from repro.analytics.telemetry import TelemetryRecorder

                recorder = TelemetryRecorder()
            result = run_spec(
                spec, collect_events=run_events, telemetry=recorder,
                fused=context,
            )
            context.reap()
            raws.append({
                "index": index,
                "spec": result.spec,
                "metrics": result.metrics,
                "timing": result.timing,
                "events": result.events,
                "cacheable": cacheable,
                "telemetry": recorder.spans if recorder is not None else [],
            })
    return raws


#: The pool worker's long-lived context: a worker that receives several
#: groups over its lifetime keeps its composition cache warm across them.
_WORKER_CONTEXT: Optional[FusedRunContext] = None


def _execute_group(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Pool worker entry point: run one serialized group (stays picklable)."""
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None:
        _WORKER_CONTEXT = FusedRunContext()
    indexed = [
        (index, ScenarioSpec.from_dict(document))
        for index, document in payload["specs"]
    ]
    return run_group(
        indexed,
        collect_events=payload["collect_events"],
        need_store_events=payload["need_store_events"],
        telemetry=payload["telemetry"],
        context=_WORKER_CONTEXT,
    )
