"""Built-in scenarios and the workload builders behind them.

Every experiment the ``examples/`` scripts hand-wire is available here as a
named :class:`~repro.campaign.spec.ScenarioSpec` plus a *builder* that
assembles the simulator, kernel model and application for one run:

==========================  ====================================================
Scenario                    Covers
==========================  ====================================================
``quickstart``              examples/quickstart.py (producer/consumer + cyclic)
``sync-tour``               examples/sync_primitives_tour.py (all sync objects)
``videogame``               examples/videogame_cosim.py (full Fig. 5 framework)
``cosim-speed``             examples/cosim_speed_sweep.py (Table 2 speed knob)
``energy-profile``          examples/energy_profiling.py (Fig. 7 distribution)
``rtk-round-robin``         examples/rtkspec_scheduler_comparison.py (RTK-Spec I)
``rtk-priority``            examples/rtkspec_scheduler_comparison.py (RTK-Spec II)
``synthetic-tkernel``       seeded synthetic periodic task set on RTK-Spec TRON
``synthetic-rtk``           seeded synthetic periodic task set on RTK-Spec II
==========================  ====================================================

Builders return a :class:`ScenarioBuild`: the simulator to run plus the
callables the runner uses to collect kernel statistics and
workload-specific metrics afterwards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.campaign.spec import ScenarioSpec, SpecError
from repro.core.events import ExecutionContext
from repro.core.simapi import SimApi
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime


@dataclass
class ScenarioBuild:
    """A fully-wired scenario, ready for the runner to execute."""

    simulator: Simulator
    api: SimApi
    kernel_statistics: Callable[[], Dict[str, Any]]
    workload_metrics: Callable[[], Dict[str, Any]]


#: name -> (description, spec factory)
_BUILTINS: Dict[str, Tuple[str, Callable[[], ScenarioSpec]]] = {}


def register_scenario(
    name: str, description: str, factory: Callable[[], ScenarioSpec]
) -> None:
    """Register a named scenario (overwrites an existing registration)."""
    _BUILTINS[name] = (description, factory)


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_BUILTINS)


def scenario_description(name: str) -> str:
    """One-line description of a registered scenario."""
    return _require(name)[0]


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh validated spec for a registered scenario."""
    return _require(name)[1]().validate()


def _require(name: str) -> Tuple[str, Callable[[], ScenarioSpec]]:
    try:
        return _BUILTINS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise SpecError(f"unknown scenario {name!r} (known: {known})") from None


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------
def build_scenario(spec: ScenarioSpec) -> ScenarioBuild:
    """Assemble the simulator and workload described by *spec*."""
    spec.validate()
    try:
        builder = _WORKLOAD_BUILDERS[spec.workload]
    except KeyError:
        raise SpecError(f"no builder for workload {spec.workload!r}") from None
    return builder(spec)


def _build_quickstart(spec: ScenarioSpec) -> ScenarioBuild:
    """Producer/consumer pairs over semaphores plus a cyclic heartbeat."""
    from repro.tkernel import TKernelOS

    items = int(spec.extra.get("items", 5))
    heartbeat_ms = int(spec.extra.get("heartbeat_ms", 10))
    pairs = max(1, spec.task_count // 2)
    counters = {"produced": 0, "consumed": 0, "heartbeats": 0}

    def user_main(kernel):
        api = kernel.api
        for pair in range(pairs):
            semid = yield from kernel.tk_cre_sem(
                isemcnt=0, maxsem=items, name=f"items{pair}"
            )

            def producer(stacd, exinf, semid=semid):
                for _ in range(items):
                    yield from api.sim_wait(
                        duration=SimTime.ms(spec.period_ms), label="produce"
                    )
                    yield from kernel.tk_sig_sem(semid)
                    counters["produced"] += 1

            def consumer(stacd, exinf, semid=semid):
                for _ in range(items):
                    yield from kernel.tk_wai_sem(semid)
                    yield from api.sim_wait(
                        duration=SimTime.ms(max(spec.period_ms / 3.0, 0.5)),
                        label="consume",
                    )
                    counters["consumed"] += 1

            producer_id = yield from kernel.tk_cre_tsk(
                producer, itskpri=10 + pair, name=f"producer{pair}"
            )
            consumer_id = yield from kernel.tk_cre_tsk(
                consumer, itskpri=5 + pair, name=f"consumer{pair}"
            )
            yield from kernel.tk_sta_tsk(producer_id)
            yield from kernel.tk_sta_tsk(consumer_id)

        def heartbeat(exinf):
            yield from api.sim_wait(
                duration=SimTime.us(200), context=ExecutionContext.HANDLER
            )
            counters["heartbeats"] += 1

        cycid = yield from kernel.tk_cre_cyc(
            heartbeat, cyctim=heartbeat_ms, name="heartbeat"
        )
        yield from kernel.tk_sta_cyc(cycid)

    simulator = Simulator(spec.name)
    kernel = TKernelOS(
        simulator, user_main=user_main, system_tick=SimTime.ms(spec.tick_ms)
    )
    return ScenarioBuild(
        simulator=simulator,
        api=kernel.api,
        kernel_statistics=kernel.statistics,
        workload_metrics=lambda: dict(counters),
    )


def _build_sync_tour(spec: ScenarioSpec) -> ScenarioBuild:
    """The sync-primitives tour: flags, mutexes, mailboxes, buffers, pools."""
    from repro.tkernel import TA_INHERIT, TA_WMUL, TKernelOS, TWF_ANDW

    samples = int(spec.extra.get("samples", 4))
    sample_ms = float(spec.extra.get("sample_ms", 2.0))
    counters = {"samples_sent": 0, "samples_processed": 0, "supervised": 0}

    def user_main(kernel):
        api = kernel.api
        flag_id = yield from kernel.tk_cre_flg(iflgptn=0, flgatr=TA_WMUL, name="phases")
        mutex_id = yield from kernel.tk_cre_mtx(mtxatr=TA_INHERIT, name="shared")
        mailbox_id = yield from kernel.tk_cre_mbx(name="commands")
        buffer_id = yield from kernel.tk_cre_mbf(bufsz=64, maxmsz=16, name="samples")
        pool_id = yield from kernel.tk_cre_mpf(mpfcnt=3, blfsz=32, name="pool")

        def sensor(stacd, exinf):
            for sample in range(samples):
                yield from api.sim_wait(duration=SimTime.ms(sample_ms), label="sample")
                yield from kernel.tk_snd_mbf(buffer_id, ("sample", sample), size=4)
                yield from kernel.tk_set_flg(flag_id, 0b01)
                counters["samples_sent"] += 1
            yield from kernel.tk_snd_mbx(mailbox_id, "shutdown")
            yield from kernel.tk_set_flg(flag_id, 0b10)

        def processor(stacd, exinf):
            while True:
                ercd, payload, size = yield from kernel.tk_rcv_mbf(buffer_id, tmout=50)
                if ercd != 0:
                    return
                yield from kernel.tk_loc_mtx(mutex_id)
                yield from api.sim_wait(duration=SimTime.ms(1), label="process")
                yield from kernel.tk_unl_mtx(mutex_id)
                ercd, block = yield from kernel.tk_get_mpf(pool_id)
                counters["samples_processed"] += 1
                yield from kernel.tk_rel_mpf(pool_id, block)

        def supervisor(stacd, exinf):
            yield from kernel.tk_wai_flg(flag_id, 0b11, TWF_ANDW)
            yield from kernel.tk_rcv_mbx(mailbox_id)
            counters["supervised"] += 1

        for name, fn, pri in [("sensor", sensor, 10), ("processor", processor, 8),
                              ("supervisor", supervisor, 5)]:
            task_id = yield from kernel.tk_cre_tsk(fn, itskpri=pri, name=name)
            yield from kernel.tk_sta_tsk(task_id)

    simulator = Simulator(spec.name)
    kernel = TKernelOS(
        simulator, user_main=user_main, system_tick=SimTime.ms(spec.tick_ms)
    )
    return ScenarioBuild(
        simulator=simulator,
        api=kernel.api,
        kernel_statistics=kernel.statistics,
        workload_metrics=lambda: dict(counters),
    )


def _build_framework(spec: ScenarioSpec, render_cycles=None) -> ScenarioBuild:
    """The full Fig. 5 co-simulation framework (video game + BFM + widgets)."""
    from repro.app.framework import CoSimulationFramework, FrameworkConfig

    config = FrameworkConfig.from_knobs(
        duration_ms=spec.duration_ms,
        gui_enabled=spec.gui_enabled,
        lcd_update_period_ms=spec.bfm_access_period_ms,
        key_period_ms=int(spec.extra.get("key_period_ms", 80)),
        render_cycles=render_cycles,
    )
    framework = CoSimulationFramework(config, name=spec.name)

    def workload_metrics() -> Dict[str, Any]:
        application = framework.application.summary()
        bfm = framework.bfm.access_statistics()
        framework.widgets.battery.update()
        return {
            "frames_rendered": application["frames_rendered"],
            "keys_handled": application["keys_handled"],
            "score": application["score"],
            "bus_accesses": bfm["bus_accesses"],
            "interrupts_raised": bfm["interrupts_raised"],
            "gui_callbacks": framework.widgets.callback_count(),
            "battery_remaining_fraction": framework.widgets.battery.remaining_fraction,
        }

    return ScenarioBuild(
        simulator=framework.simulator,
        api=framework.api,
        kernel_statistics=framework.kernel.statistics,
        workload_metrics=workload_metrics,
    )


def _build_videogame(spec: ScenarioSpec) -> ScenarioBuild:
    return _build_framework(spec)


def _build_energy_profile(spec: ScenarioSpec) -> ScenarioBuild:
    render_cycles = int(spec.extra.get("render_cycles", 400))
    return _build_framework(spec, render_cycles=render_cycles)


def _make_rtk_kernel(spec: ScenarioSpec, simulator: Simulator):
    from repro.rtkspec import RTKSpec1, RTKSpec2

    if spec.kernel == "rtkspec1":
        return RTKSpec1(
            simulator,
            system_tick=SimTime.ms(spec.tick_ms),
            time_slice_ticks=spec.time_slice_ticks,
        )
    return RTKSpec2(simulator, system_tick=SimTime.ms(spec.tick_ms))


def _scheduler_comparison_task_set(spec: ScenarioSpec) -> List[Tuple[str, int, float]]:
    """The fixed four-task workload of the scheduler-comparison example,
    extended deterministically when the spec asks for more tasks."""
    base = [
        ("logger", 30, 12.0),
        ("control", 5, 6.0),
        ("comms", 15, 9.0),
        ("background", 40, 15.0),
    ]
    tasks = base[: spec.task_count]
    rng = random.Random(spec.seed)
    while len(tasks) < spec.task_count:
        index = len(tasks)
        tasks.append(
            (f"extra{index}", rng.randrange(5, 45), float(rng.randrange(4, 16)))
        )
    if spec.priorities:
        tasks = [
            (name, priority, execution_ms)
            for (name, _, execution_ms), priority in zip(tasks, spec.priorities)
        ]
    return tasks


def _build_scheduler_comparison(spec: ScenarioSpec) -> ScenarioBuild:
    """An identical one-shot task set run under the chosen RTK-Spec kernel."""
    simulator = Simulator(spec.name)
    kernel = _make_rtk_kernel(spec, simulator)
    completions: Dict[str, float] = {}

    def make_body(name: str, execution_ms: float):
        def body():
            yield from kernel.api.sim_wait(
                duration=SimTime.ms(execution_ms), label=name
            )
            completions[name] = simulator.now.to_ms()

        return body

    for name, priority, execution_ms in _scheduler_comparison_task_set(spec):
        task = kernel.create_task(
            make_body(name, execution_ms), priority=priority, name=name
        )
        kernel.start_task(task)

    def workload_metrics() -> Dict[str, Any]:
        return {
            "completions": len(completions),
            "completion_times_ms": {
                name: completions[name] for name in sorted(completions)
            },
            "makespan_ms": max(completions.values()) if completions else None,
        }

    return ScenarioBuild(
        simulator=simulator,
        api=kernel.api,
        kernel_statistics=kernel.statistics,
        workload_metrics=workload_metrics,
    )


def _synthetic_task_set(spec: ScenarioSpec) -> List[Tuple[str, int, float, float]]:
    """Draw a periodic task set (name, priority, period_ms, execution_ms)
    from the spec's seed.  Same seed, same set — on every host."""
    rng = random.Random(spec.seed)
    tasks = []
    for index in range(spec.task_count):
        period = spec.period_ms * rng.choice((1, 2, 4))
        execution = max(0.5, round(period * rng.uniform(0.1, 0.4), 3))
        if spec.priorities:
            priority = spec.priorities[index]
        else:
            priority = 5 + rng.randrange(0, 40)
        tasks.append((f"syn{index}", priority, period, execution))
    return tasks


def _build_synthetic(spec: ScenarioSpec) -> ScenarioBuild:
    """A seeded synthetic periodic task set on any kernel model."""
    jobs = int(spec.extra.get("jobs", 3))
    tasks = _synthetic_task_set(spec)
    counters = {"jobs_completed": 0}

    if spec.kernel == "tkernel":
        from repro.tkernel import TKernelOS

        def user_main(kernel):
            api = kernel.api

            def make_body(period_ms: float, execution_ms: float):
                def body(stacd, exinf):
                    for _ in range(jobs):
                        yield from api.sim_wait(
                            duration=SimTime.ms(execution_ms), label="job"
                        )
                        counters["jobs_completed"] += 1
                        yield from kernel.tk_dly_tsk(int(period_ms))

                return body

            for name, priority, period_ms, execution_ms in tasks:
                task_id = yield from kernel.tk_cre_tsk(
                    make_body(period_ms, execution_ms),
                    itskpri=min(priority, 140),
                    name=name,
                )
                yield from kernel.tk_sta_tsk(task_id)

        simulator = Simulator(spec.name)
        kernel = TKernelOS(
            simulator, user_main=user_main, system_tick=SimTime.ms(spec.tick_ms)
        )
        return ScenarioBuild(
            simulator=simulator,
            api=kernel.api,
            kernel_statistics=kernel.statistics,
            workload_metrics=lambda: dict(counters),
        )

    simulator = Simulator(spec.name)
    kernel = _make_rtk_kernel(spec, simulator)

    def make_body(period_ms: float, execution_ms: float):
        def body():
            for _ in range(jobs):
                yield from kernel.api.sim_wait(
                    duration=SimTime.ms(execution_ms), label="job"
                )
                counters["jobs_completed"] += 1
                yield from kernel.delay(SimTime.ms(period_ms))

        return body

    for name, priority, period_ms, execution_ms in tasks:
        task = kernel.create_task(
            make_body(period_ms, execution_ms), priority=priority, name=name
        )
        kernel.start_task(task)

    return ScenarioBuild(
        simulator=simulator,
        api=kernel.api,
        kernel_statistics=kernel.statistics,
        workload_metrics=lambda: dict(counters),
    )


_WORKLOAD_BUILDERS: Dict[str, Callable[[ScenarioSpec], ScenarioBuild]] = {
    "quickstart": _build_quickstart,
    "sync_tour": _build_sync_tour,
    "videogame": _build_videogame,
    "energy_profile": _build_energy_profile,
    "scheduler_comparison": _build_scheduler_comparison,
    "synthetic": _build_synthetic,
}


# ----------------------------------------------------------------------
# Built-in scenario registrations
# ----------------------------------------------------------------------
register_scenario(
    "quickstart",
    "Producer/consumer over a semaphore plus a cyclic heartbeat (quickstart example)",
    lambda: ScenarioSpec(
        name="quickstart", kernel="tkernel", workload="quickstart",
        duration_ms=50.0, task_count=2, period_ms=3.0,
    ),
)
register_scenario(
    "sync-tour",
    "Every T-Kernel sync/communication object in one scenario (sync tour example)",
    lambda: ScenarioSpec(
        name="sync-tour", kernel="tkernel", workload="sync_tour",
        duration_ms=120.0, task_count=3,
    ),
)
register_scenario(
    "videogame",
    "Full Fig. 5 co-simulation: video game + i8051 BFM + GUI widgets",
    lambda: ScenarioSpec(
        name="videogame", kernel="tkernel", workload="videogame",
        duration_ms=300.0, gui_enabled=True, bfm_access_period_ms=10,
    ),
)
register_scenario(
    "cosim-speed",
    "Table 2 speed configuration: video game with the BFM access period knob",
    lambda: ScenarioSpec(
        name="cosim-speed", kernel="tkernel", workload="videogame",
        duration_ms=200.0, gui_enabled=True, bfm_access_period_ms=10,
    ),
)
register_scenario(
    "energy-profile",
    "Fig. 7 energy distribution: headless video game with a render budget knob",
    lambda: ScenarioSpec(
        name="energy-profile", kernel="tkernel", workload="energy_profile",
        duration_ms=400.0, gui_enabled=False,
        extra={"render_cycles": 400},
    ),
)
register_scenario(
    "rtk-round-robin",
    "Scheduler-comparison task set on RTK-Spec I (round robin)",
    lambda: ScenarioSpec(
        name="rtk-round-robin", kernel="rtkspec1", workload="scheduler_comparison",
        duration_ms=200.0, task_count=4, time_slice_ticks=4,
    ),
)
register_scenario(
    "rtk-priority",
    "Scheduler-comparison task set on RTK-Spec II (priority preemptive)",
    lambda: ScenarioSpec(
        name="rtk-priority", kernel="rtkspec2", workload="scheduler_comparison",
        duration_ms=200.0, task_count=4,
    ),
)
register_scenario(
    "synthetic-tkernel",
    "Seeded synthetic periodic task set on RTK-Spec TRON",
    lambda: ScenarioSpec(
        name="synthetic-tkernel", kernel="tkernel", workload="synthetic",
        duration_ms=150.0, task_count=4, period_ms=10.0, seed=7,
    ),
)
register_scenario(
    "synthetic-rtk",
    "Seeded synthetic periodic task set on RTK-Spec II",
    lambda: ScenarioSpec(
        name="synthetic-rtk", kernel="rtkspec2", workload="synthetic",
        duration_ms=150.0, task_count=6, period_ms=10.0, seed=11,
    ),
)
