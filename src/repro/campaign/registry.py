"""The named-scenario registry, built on the composable workload plane.

Every experiment the ``examples/`` scripts hand-wire is available here as a
named :class:`~repro.campaign.spec.ScenarioSpec`:

==========================  ====================================================
Scenario                    Covers
==========================  ====================================================
``quickstart``              examples/quickstart.py (producer/consumer + cyclic)
``sync-tour``               examples/sync_primitives_tour.py (all sync objects)
``videogame``               examples/videogame_cosim.py (full Fig. 5 framework)
``cosim-speed``             examples/cosim_speed_sweep.py (Table 2 speed knob)
``energy-profile``          examples/energy_profiling.py (Fig. 7 distribution)
``rtk-round-robin``         examples/rtkspec_scheduler_comparison.py (RTK-Spec I)
``rtk-priority``            examples/rtkspec_scheduler_comparison.py (RTK-Spec II)
``synthetic-tkernel``       seeded synthetic periodic task set on RTK-Spec TRON
``synthetic-rtk``           seeded synthetic periodic task set on RTK-Spec II
==========================  ====================================================

Construction goes through :mod:`repro.workload`: a spec resolves to a
Platform × KernelProfile × Workload × Probes :class:`Composition`
(``repro describe`` prints it), and :func:`build_scenario` asks the
composition to assemble the runnable :class:`ScenarioBuild` — the
simulator plus the callables the runner uses to collect kernel statistics
and workload-specific metrics afterwards.  The old monolithic builder
functions are gone; their event streams are pinned byte-identical through
this layer by ``tests/campaign/test_golden_streams.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.campaign.spec import ScenarioSpec, SpecError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.workload.components import ScenarioBuild

#: name -> (description, spec factory)
_BUILTINS: Dict[str, Tuple[str, Callable[[], ScenarioSpec]]] = {}


def register_scenario(
    name: str, description: str, factory: Callable[[], ScenarioSpec]
) -> None:
    """Register a named scenario (overwrites an existing registration)."""
    _BUILTINS[name] = (description, factory)


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_BUILTINS)


def scenario_description(name: str) -> str:
    """One-line description of a registered scenario."""
    return _require(name)[0]


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh validated spec for a registered scenario."""
    return _require(name)[1]().validate()


def _require(name: str) -> Tuple[str, Callable[[], ScenarioSpec]]:
    try:
        return _BUILTINS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise SpecError(f"unknown scenario {name!r} (known: {known})") from None


# ----------------------------------------------------------------------
# Construction through the workload plane
# ----------------------------------------------------------------------
# repro.workload modules import repro.campaign.spec (whose parent package
# import lands here), so the workload plane must only be imported lazily —
# at build/describe time — never at registry import time.
def build_scenario(spec: ScenarioSpec, telemetry=None, composition=None) -> "ScenarioBuild":
    """Assemble the simulator and workload described by *spec*.

    With a :class:`~repro.analytics.telemetry.TelemetryRecorder` attached
    via *telemetry*, the ``compose`` and ``build`` phases are timed as
    separate spans; the default path stays span-free and allocation-free.

    *composition* is a precomposed
    :class:`~repro.workload.components.Composition` for this very spec —
    usually out of a fused run context's cache — and skips the compose
    phase entirely (so no ``compose`` span is recorded for such runs).
    """
    if composition is None:
        from repro.workload.components import compose

        if telemetry is None:
            return compose(spec).build(spec)
        with telemetry.span("compose", scenario=spec.name):
            composition = compose(spec)
    if telemetry is None:
        return composition.build(spec)
    with telemetry.span("build", scenario=spec.name):
        return composition.build(spec)


def describe_scenario(spec: ScenarioSpec) -> Dict[str, object]:
    """The composed parts of *spec* with every parameter resolved."""
    from repro.campaign.spec import spec_hash
    from repro.workload.components import compose

    composition = compose(spec)
    return {
        "scenario": spec.name,
        "spec": spec.to_dict(),
        "spec_hash": spec_hash(spec),
        "composition": composition.describe(spec),
    }


def __getattr__(name: str):
    """Back-compat lazy re-exports from the workload plane.

    ``ScenarioBuild`` (and the composition types) moved to
    :mod:`repro.workload.components`; importing them from here keeps
    working without creating an import cycle at package-init time.
    """
    if name in ("ScenarioBuild", "Composition", "compose"):
        from repro.workload import components

        return getattr(components, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# Built-in scenario registrations
# ----------------------------------------------------------------------
register_scenario(
    "quickstart",
    "Producer/consumer over a semaphore plus a cyclic heartbeat (quickstart example)",
    lambda: ScenarioSpec(
        name="quickstart", kernel="tkernel", workload="quickstart",
        duration_ms=50.0, task_count=2, period_ms=3.0,
    ),
)
register_scenario(
    "sync-tour",
    "Every T-Kernel sync/communication object in one scenario (sync tour example)",
    lambda: ScenarioSpec(
        name="sync-tour", kernel="tkernel", workload="sync_tour",
        duration_ms=120.0, task_count=3,
    ),
)
register_scenario(
    "videogame",
    "Full Fig. 5 co-simulation: video game + i8051 BFM + GUI widgets",
    lambda: ScenarioSpec(
        name="videogame", kernel="tkernel", workload="videogame",
        duration_ms=300.0, gui_enabled=True, bfm_access_period_ms=10,
    ),
)
register_scenario(
    "cosim-speed",
    "Table 2 speed configuration: video game with the BFM access period knob",
    lambda: ScenarioSpec(
        name="cosim-speed", kernel="tkernel", workload="videogame",
        duration_ms=200.0, gui_enabled=True, bfm_access_period_ms=10,
    ),
)
register_scenario(
    "energy-profile",
    "Fig. 7 energy distribution: headless video game with a render budget knob",
    lambda: ScenarioSpec(
        name="energy-profile", kernel="tkernel", workload="energy_profile",
        duration_ms=400.0, gui_enabled=False,
        extra={"render_cycles": 400},
    ),
)
register_scenario(
    "rtk-round-robin",
    "Scheduler-comparison task set on RTK-Spec I (round robin)",
    lambda: ScenarioSpec(
        name="rtk-round-robin", kernel="rtkspec1", workload="scheduler_comparison",
        duration_ms=200.0, task_count=4, time_slice_ticks=4,
    ),
)
register_scenario(
    "rtk-priority",
    "Scheduler-comparison task set on RTK-Spec II (priority preemptive)",
    lambda: ScenarioSpec(
        name="rtk-priority", kernel="rtkspec2", workload="scheduler_comparison",
        duration_ms=200.0, task_count=4,
    ),
)
register_scenario(
    "synthetic-tkernel",
    "Seeded synthetic periodic task set on RTK-Spec TRON",
    lambda: ScenarioSpec(
        name="synthetic-tkernel", kernel="tkernel", workload="synthetic",
        duration_ms=150.0, task_count=4, period_ms=10.0, seed=7,
    ),
)
register_scenario(
    "synthetic-rtk",
    "Seeded synthetic periodic task set on RTK-Spec II",
    lambda: ScenarioSpec(
        name="synthetic-rtk", kernel="rtkspec2", workload="synthetic",
        duration_ms=150.0, task_count=6, period_ms=10.0, seed=11,
    ),
)
