"""The parallel batch engine: expand a matrix, fan out, aggregate.

A batch is a list of scenario specs (usually one or more registry scenarios
crossed with a parameter matrix).  The engine executes them either serially
or across a pool of ``multiprocessing`` workers — one worker process per
host core by default, because a simulation run is pure CPU-bound Python —
and guarantees that the *deterministic* part of the output is identical
either way: runs keep their expansion order, each run's seed is derived
from the batch's base seed and the run index, and host wall-clock numbers
live in a separate ``timing`` section that aggregation ignores.

Artifacts written by :meth:`BatchResult.write_outputs`:

* ``events_NNN_<scenario>.jsonl`` — the per-run JSONL event stream,
* ``metrics.json`` — the aggregated metrics document (per-run deterministic
  metrics, aggregate totals/means, and the non-deterministic timing block),
* ``aggregate.json`` — the deterministic document alone, in canonical JSON:
  the artifact that is byte-identical across serial, parallel, cached and
  sharded executions of the same sweep.

With a grid :class:`~repro.grid.store.ResultStore` attached, the engine
consults the cache before fanning out: verified entries replay without
simulating, only the misses go to the workers, and every fresh result is
stored afterwards — so a repeated sweep completes with zero simulations.
"""

from __future__ import annotations

import multiprocessing
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.fused import (
    FusedRunContext,
    _execute_group,
    cached_composition,
    compute_chunksize,
    fused_worker_count,
    paused_gc,
)
from repro.campaign.metrics import RunResult, aggregate_metrics, canonical_json
from repro.campaign.registry import get_scenario
from repro.campaign.runner import run_spec
from repro.campaign.spec import ScenarioSpec, SpecError, expand_matrix


def run_events_filename(index: int, scenario: str) -> str:
    """The canonical per-run events artifact name for global run *index*.

    Shared by the batch writer and the shard executor so a merged sharded
    sweep reproduces a single-host batch's artifact names exactly.
    """
    return f"events_{index:03d}_{_slugify(scenario)}.jsonl"


def default_worker_count(run_count: int) -> int:
    """The batch engine's default parallelism for *run_count* runs.

    One worker per core (simulation runs are CPU-bound pure Python), but at
    least two so the parallel path is exercised even on small hosts, and
    never more workers than runs.
    """
    cores = os.cpu_count() or 2
    return max(1, min(max(2, cores), run_count))


def plan_batch(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    matrix: Optional[Mapping[str, Sequence[Any]]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    derive_seeds: bool = True,
) -> List[ScenarioSpec]:
    """Expand scenario names/specs × overrides × matrix into the run list.

    ``derive_seeds=False`` keeps every run's stated seed instead of deriving
    per-run seeds from the expansion index — the right mode for explicit
    spec documents loaded from files.
    """
    specs: List[ScenarioSpec] = []
    for scenario in scenarios:
        base = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if overrides:
            base = base.with_overrides(overrides)
        specs.extend(expand_matrix(base, matrix, derive_seeds=derive_seeds))
    return specs


def _execute_spec_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one serialized spec (must stay picklable).

    Honouring ``collect_events`` here matters: with events disabled the
    worker never flattens the Gantt recording nor ships it back over IPC.
    With ``telemetry`` requested, the worker collects its own phase spans
    locally and ships them back as plain dicts for the coordinator to
    adopt — recorders themselves never cross the process boundary.
    """
    spec = ScenarioSpec.from_dict(payload["spec"])
    recorder = None
    if payload.get("telemetry"):
        from repro.analytics.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder()
    result = run_spec(
        spec, collect_events=payload["collect_events"], telemetry=recorder
    )
    return {
        "spec": result.spec,
        "metrics": result.metrics,
        "timing": result.timing,
        "events": result.events,
        "telemetry": recorder.spans if recorder is not None else [],
    }


@dataclass
class BatchResult:
    """The outcome of one batch: ordered run results plus the aggregate.

    A resilient batch (one executed with a
    :class:`~repro.resilience.envelope.ResiliencePolicy`) may complete
    *partially*: ``results`` then holds only the successful runs,
    ``indices`` their global run indices (so artifact names keep the
    planned numbering), ``outcomes`` one summary document per requested
    run and ``failures`` the per-attempt
    :class:`~repro.resilience.envelope.FailureRecord` list bound for the
    ``failures.jsonl`` sidecar.  The aggregate is always computed over the
    successes alone — failure data never enters a deterministic artifact.
    """

    results: List[RunResult]
    workers: int
    aggregate: Dict[str, Any] = field(default_factory=dict)
    indices: Optional[List[int]] = None
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.aggregate:
            self.aggregate = aggregate_metrics(r.metrics for r in self.results)

    @property
    def cache_hits(self) -> int:
        """Runs served from the grid result store instead of simulated."""
        return sum(1 for result in self.results if result.cached)

    @property
    def quarantined(self) -> List[Any]:
        """The failure records of runs that exhausted their attempts."""
        return [record for record in self.failures
                if getattr(record, "quarantined", False)]

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def deterministic_document(self) -> Dict[str, Any]:
        """The part of the batch output that must not depend on the host,
        the worker count or the execution order."""
        return {
            "campaign": {
                "runs": len(self.results),
                "scenarios": [result.metrics["scenario"] for result in self.results],
            },
            "runs": [result.metrics_document() for result in self.results],
            "aggregate": self.aggregate,
        }

    def document(self) -> Dict[str, Any]:
        """The full aggregated metrics document (adds the timing section)."""
        document = self.deterministic_document()
        document["timing"] = {
            "workers": self.workers,
            "wall_clock_seconds_total": sum(
                result.timing.get("wall_clock_seconds", 0.0)
                for result in self.results
            ),
            "per_run": [result.timing for result in self.results],
        }
        return document

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def write_outputs(self, out_dir: str, include_events: bool = True) -> Dict[str, Any]:
        """Write per-run JSONL event streams and the aggregate metrics JSON.

        Returns a manifest: the metrics/aggregate paths and the per-run
        event paths.  ``aggregate.json`` holds the deterministic document in
        canonical JSON — the byte-identity artifact the sharded sweep's
        merge reproduces.
        """
        os.makedirs(out_dir, exist_ok=True)
        event_paths: List[str] = []
        if include_events:
            for position, result in enumerate(self.results):
                index = (self.indices[position] if self.indices is not None
                         else position)
                events_path = os.path.join(
                    out_dir, run_events_filename(index, result.metrics["scenario"])
                )
                result.write_events(events_path)
                event_paths.append(events_path)
        metrics_path = os.path.join(out_dir, "metrics.json")
        with open(metrics_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(self.document()))
            handle.write("\n")
        aggregate_path = os.path.join(out_dir, "aggregate.json")
        with open(aggregate_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(self.deterministic_document()))
            handle.write("\n")
        return {
            "metrics": metrics_path,
            "aggregate": aggregate_path,
            "events": event_paths,
        }


def run_batch(
    specs: Sequence[ScenarioSpec],
    workers: Optional[int] = None,
    collect_events: bool = True,
    store: Optional[Any] = None,
    refresh: bool = False,
    telemetry: Optional[Any] = None,
    fuse: bool = True,
    policy: Optional[Any] = None,
) -> BatchResult:
    """Execute *specs*, serially or across a multiprocessing pool.

    Results always come back in spec order regardless of which worker
    finished first, so serial and parallel batches aggregate identically.

    With *store* (a grid :class:`~repro.grid.store.ResultStore`), every spec
    is looked up first and verified entries replay instead of executing;
    only the misses are simulated (events collected when a run is bound for
    the store, so the new cache entries are complete) and each is stored as
    soon as it finishes — an interrupted batch keeps its completed runs
    cached for the resume.  ``refresh=True`` skips the lookup and
    overwrites the entries with freshly simulated results.

    *telemetry* (a :class:`~repro.analytics.telemetry.TelemetryRecorder`)
    collects phase spans across the whole batch; parallel workers record
    spans locally and the coordinator adopts them tagged with the global
    run index.  Telemetry never changes the batch's deterministic output.

    *fuse* (default on) runs the batch through the fused engine
    (:mod:`repro.campaign.fused`): compositions are cached per distinct
    spec, worker payloads carry *groups* of runs instead of one spec per
    IPC round trip, event lists cross the process boundary only when the
    coordinator needs them, and the default worker count drops the ≥2
    floor (a single-core host runs fused batches in-process — the faster
    path there).  ``fuse=False`` is the pre-fused one-spec-per-round-trip
    engine; both produce byte-identical deterministic documents.

    *policy* (a :class:`~repro.resilience.envelope.ResiliencePolicy`)
    switches to the fault-tolerant engine
    (:func:`repro.resilience.executor.run_batch_resilient`): failures are
    enveloped instead of raised, transients retry, persistent failures
    quarantine and the sweep keeps going.  Without a policy, any failure
    raises through — the historical contract.
    """
    if policy is not None:
        from repro.resilience.executor import run_batch_resilient

        return run_batch_resilient(
            specs, workers=workers, collect_events=collect_events,
            store=store, refresh=refresh, telemetry=telemetry, fuse=fuse,
            policy=policy,
        )
    if not specs:
        raise SpecError("batch has no runs")
    for spec in specs:
        spec.validate()

    results: List[Optional[RunResult]] = [None] * len(specs)
    pending: List[Tuple[int, ScenarioSpec]] = list(enumerate(specs))
    if store is not None and not refresh:
        misses: List[Tuple[int, ScenarioSpec]] = []
        for index, spec in pending:
            if telemetry is not None:
                with telemetry.span("lookup", run=index):
                    hit = store.lookup(spec)
            else:
                hit = store.lookup(spec)
            if hit is not None:
                if telemetry is not None:
                    with telemetry.span("replay", run=index):
                        results[index] = hit.replay(
                            collect_events=collect_events
                        )
                else:
                    results[index] = hit.replay(collect_events=collect_events)
            else:
                misses.append((index, spec))
        pending = misses

    if workers is None:
        if not pending:
            workers = 1
        elif fuse:
            workers = fused_worker_count(len(pending))
        else:
            workers = default_worker_count(len(pending))
    workers = max(1, min(workers, max(len(pending), 1)))

    if pending:
        if workers == 1:
            _run_pending_serial(
                pending, results, collect_events=collect_events, store=store,
                refresh=refresh, telemetry=telemetry, fuse=fuse,
            )
        elif fuse:
            _run_pending_fused(
                pending, results, workers=workers,
                collect_events=collect_events, store=store,
                telemetry=telemetry,
            )
        else:
            _run_pending_pooled(
                pending, results, workers=workers,
                collect_events=collect_events, store=store,
                telemetry=telemetry,
            )

    return BatchResult(results=[r for r in results if r is not None],
                       workers=workers)


def _run_pending_serial(
    pending: List[Tuple[int, ScenarioSpec]],
    results: List[Optional[RunResult]],
    collect_events: bool,
    store: Optional[Any],
    refresh: bool,
    telemetry: Optional[Any],
    fuse: bool,
) -> None:
    """Run the misses in-process, one after another.

    run_spec's own store integration tees every run into the store as it
    finishes, so an interrupted batch keeps each completed run cached for
    the resume.  The fused path threads one :class:`FusedRunContext`
    through all runs (cached compositions + pooled collector); the
    pre-fused path keeps the historical behaviour of collecting events
    whenever a store is attached, even for runs the store then rejects.
    """
    run_events = collect_events or store is not None
    if not fuse:
        for index, spec in pending:
            result = run_spec(spec, collect_events=run_events, store=store,
                              refresh=refresh, telemetry=telemetry)
            if not collect_events:
                result.events = []
            results[index] = result
        return
    context = FusedRunContext()
    with paused_gc():
        for index, spec in pending:
            result = run_spec(spec, collect_events=collect_events,
                              store=store, refresh=refresh,
                              telemetry=telemetry, fused=context)
            context.reap()
            if not collect_events:
                result.events = []
            results[index] = result


def _run_pending_fused(
    pending: List[Tuple[int, ScenarioSpec]],
    results: List[Optional[RunResult]],
    workers: int,
    collect_events: bool,
    store: Optional[Any],
    telemetry: Optional[Any],
) -> None:
    """Fan grouped payloads out to the pool — the fused parallel engine.

    One IPC round trip carries a whole group of runs; each raw result
    comes back with the run's global index and its cacheability flag, so
    the coordinator stores it without re-composing the spec.  Groups keep
    expansion order, so results stream back ordered and the store fills
    incrementally — an interrupted batch keeps its completed groups.
    """
    chunk = compute_chunksize(len(pending), workers)
    groups = [pending[at:at + chunk] for at in range(0, len(pending), chunk)]
    payloads = [
        {
            "specs": [(index, spec.to_dict()) for index, spec in group],
            "collect_events": collect_events,
            "need_store_events": store is not None,
            "telemetry": telemetry is not None,
        }
        for group in groups
    ]
    context = _pool_context()
    with context.Pool(processes=workers) as pool:
        for raws in pool.imap(_execute_group, payloads):
            for raw in raws:
                index = raw["index"]
                result = RunResult(
                    spec=raw["spec"],
                    metrics=raw["metrics"],
                    timing=raw["timing"],
                    events=raw["events"],
                )
                if telemetry is not None:
                    telemetry.adopt(raw["telemetry"], run=index)
                if store is not None and raw["cacheable"]:
                    if telemetry is not None:
                        with telemetry.span("store", run=index):
                            store.put_result(result)
                    else:
                        store.put_result(result)
                if not collect_events:
                    result.events = []
                results[index] = result


def _run_pending_pooled(
    pending: List[Tuple[int, ScenarioSpec]],
    results: List[Optional[RunResult]],
    workers: int,
    collect_events: bool,
    store: Optional[Any],
    telemetry: Optional[Any],
) -> None:
    """The pre-fused pool: one spec per task, with a computed chunksize.

    Kept as the ``fuse=False`` reference engine and the fused path's
    benchmark baseline.  Two historical costs are still fixed here: tasks
    ship with a chunksize matched to the sweep instead of 1, and a worker
    only collects/ships a run's event list when the coordinator will
    actually use it (the caller wants events, or the run is cacheable and
    bound for the store).
    """
    cacheable = [
        store is not None and _spec_is_cacheable(spec)
        for _, spec in pending
    ]
    payloads = [
        {
            "spec": spec.to_dict(),
            "collect_events": collect_events or cacheable[at],
            "telemetry": telemetry is not None,
        }
        for at, (_, spec) in enumerate(pending)
    ]
    context = _pool_context()
    with context.Pool(processes=workers) as pool:
        # imap (ordered) rather than map: results stream back as their
        # runs finish, so each is cached incrementally from the
        # coordinator — no two workers ever write one entry, and an
        # interrupted batch keeps what it completed.
        for at, raw in enumerate(
            pool.imap(_execute_spec_dict, payloads,
                      chunksize=compute_chunksize(len(pending), workers))
        ):
            index = pending[at][0]
            result = RunResult(
                spec=raw["spec"],
                metrics=raw["metrics"],
                timing=raw["timing"],
                events=raw["events"],
            )
            if telemetry is not None:
                telemetry.adopt(raw.get("telemetry", []), run=index)
            if cacheable[at]:
                if telemetry is not None:
                    with telemetry.span("store", run=index):
                        store.put_result(result)
                else:
                    store.put_result(result)
            if not collect_events:
                result.events = []
            results[index] = result


def _spec_is_cacheable(spec: ScenarioSpec) -> bool:
    """Whether the grid store may hold this spec's artifacts.

    Stored entries are a sched-only contract; a workload whose probes add
    topics must never be cached (its stored stream would replay fewer
    topics than a fresh run emits).  ``run_spec`` enforces this on the
    serial path by skipping the staging fill — the parallel coordinator
    must apply the same rule before ``put_result``.  The check resolves
    through the process-wide composition cache, so a sweep composes each
    distinct spec once on the coordinator no matter how many runs share it.
    """
    return cached_composition(spec).probes.topics == ("sched",)


def _pool_context():
    """Prefer fork (inherits sys.path, cheap) and fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context()


def _slugify(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "run"
