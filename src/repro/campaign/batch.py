"""The parallel batch engine: expand a matrix, fan out, aggregate.

A batch is a list of scenario specs (usually one or more registry scenarios
crossed with a parameter matrix).  The engine executes them either serially
or across a pool of ``multiprocessing`` workers — one worker process per
host core by default, because a simulation run is pure CPU-bound Python —
and guarantees that the *deterministic* part of the output is identical
either way: runs keep their expansion order, each run's seed is derived
from the batch's base seed and the run index, and host wall-clock numbers
live in a separate ``timing`` section that aggregation ignores.

Artifacts written by :meth:`BatchResult.write_outputs`:

* ``events_NNN_<scenario>.jsonl`` — the per-run JSONL event stream,
* ``metrics.json`` — the aggregated metrics document (per-run deterministic
  metrics, aggregate totals/means, and the non-deterministic timing block).
"""

from __future__ import annotations

import multiprocessing
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.campaign.metrics import RunResult, aggregate_metrics, canonical_json
from repro.campaign.registry import get_scenario
from repro.campaign.runner import run_spec
from repro.campaign.spec import ScenarioSpec, expand_matrix

def default_worker_count(run_count: int) -> int:
    """The batch engine's default parallelism for *run_count* runs.

    One worker per core (simulation runs are CPU-bound pure Python), but at
    least two so the parallel path is exercised even on small hosts, and
    never more workers than runs.
    """
    cores = os.cpu_count() or 2
    return max(1, min(max(2, cores), run_count))


def plan_batch(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    matrix: Optional[Mapping[str, Sequence[Any]]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> List[ScenarioSpec]:
    """Expand scenario names/specs × overrides × matrix into the run list."""
    specs: List[ScenarioSpec] = []
    for scenario in scenarios:
        base = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if overrides:
            base = base.with_overrides(overrides)
        specs.extend(expand_matrix(base, matrix))
    return specs


def _execute_spec_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one serialized spec (must stay picklable).

    Honouring ``collect_events`` here matters: with events disabled the
    worker never flattens the Gantt recording nor ships it back over IPC.
    """
    spec = ScenarioSpec.from_dict(payload["spec"])
    result = run_spec(spec, collect_events=payload["collect_events"])
    return {
        "spec": result.spec,
        "metrics": result.metrics,
        "timing": result.timing,
        "events": result.events,
    }


@dataclass
class BatchResult:
    """The outcome of one batch: ordered run results plus the aggregate."""

    results: List[RunResult]
    workers: int
    aggregate: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.aggregate:
            self.aggregate = aggregate_metrics(r.metrics for r in self.results)

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def deterministic_document(self) -> Dict[str, Any]:
        """The part of the batch output that must not depend on the host,
        the worker count or the execution order."""
        return {
            "campaign": {
                "runs": len(self.results),
                "scenarios": [result.metrics["scenario"] for result in self.results],
            },
            "runs": [result.metrics_document() for result in self.results],
            "aggregate": self.aggregate,
        }

    def document(self) -> Dict[str, Any]:
        """The full aggregated metrics document (adds the timing section)."""
        document = self.deterministic_document()
        document["timing"] = {
            "workers": self.workers,
            "wall_clock_seconds_total": sum(
                result.timing.get("wall_clock_seconds", 0.0)
                for result in self.results
            ),
            "per_run": [result.timing for result in self.results],
        }
        return document

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def write_outputs(self, out_dir: str, include_events: bool = True) -> Dict[str, Any]:
        """Write per-run JSONL event streams and the aggregate metrics JSON.

        Returns a manifest: the metrics path and the per-run event paths.
        """
        os.makedirs(out_dir, exist_ok=True)
        event_paths: List[str] = []
        if include_events:
            for index, result in enumerate(self.results):
                slug = _slugify(result.metrics["scenario"])
                events_path = os.path.join(out_dir, f"events_{index:03d}_{slug}.jsonl")
                result.write_events(events_path)
                event_paths.append(events_path)
        metrics_path = os.path.join(out_dir, "metrics.json")
        with open(metrics_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(self.document()))
            handle.write("\n")
        return {"metrics": metrics_path, "events": event_paths}


def run_batch(
    specs: Sequence[ScenarioSpec],
    workers: Optional[int] = None,
    collect_events: bool = True,
) -> BatchResult:
    """Execute *specs*, serially or across a multiprocessing pool.

    Results always come back in spec order regardless of which worker
    finished first, so serial and parallel batches aggregate identically.
    """
    if not specs:
        raise ValueError("batch has no runs")
    for spec in specs:
        spec.validate()
    if workers is None:
        workers = default_worker_count(len(specs))
    workers = max(1, min(workers, len(specs)))

    if workers == 1:
        results = [run_spec(spec, collect_events=collect_events) for spec in specs]
        return BatchResult(results=results, workers=1)

    payloads = [
        {"spec": spec.to_dict(), "collect_events": collect_events}
        for spec in specs
    ]
    context = _pool_context()
    with context.Pool(processes=workers) as pool:
        raw_results = pool.map(_execute_spec_dict, payloads)
    results = [
        RunResult(
            spec=raw["spec"],
            metrics=raw["metrics"],
            timing=raw["timing"],
            events=raw["events"],
        )
        for raw in raw_results
    ]
    return BatchResult(results=results, workers=workers)


def _pool_context():
    """Prefer fork (inherits sys.path, cheap) and fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context()


def _slugify(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "run"
