"""Run results: the structured output of one campaign run.

A :class:`RunResult` separates what a run produced into three layers:

* ``metrics`` — deterministic simulation metrics (context switches,
  preemptions, syscall counts, CPU utilisation, energy, ...).  Running the
  same spec with the same seed twice yields byte-identical metrics JSON,
  which the determinism tests assert.
* ``timing`` — host-side wall-clock measurements (R, R/S, S/R — the Table 2
  speed measure).  These vary run to run and are therefore kept out of the
  deterministic section and out of aggregate comparisons.
* ``events`` — the JSONL event stream (dispatches, preemptions, interrupts
  and execution slices) extracted from the SIM_API Gantt recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.core.gantt import GanttChart
from repro.obs.bus import canonical_json  # re-exported; single encoder


@dataclass
class RunResult:
    """Everything one campaign run produced."""

    spec: Dict[str, Any]
    metrics: Dict[str, Any]
    timing: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Events written by a live JSONL stream during the run (bounded-memory
    #: mode); ``events`` stays empty in that case.
    events_streamed: int = 0
    #: Whether this result was replayed from the grid result store instead
    #: of simulated.  Never part of the deterministic document — a cached
    #: replay is byte-identical to the fresh run it stands in for.
    cached: bool = False

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def metrics_document(self) -> Dict[str, Any]:
        """The deterministic metrics document (spec + metrics)."""
        return {"spec": self.spec, "metrics": self.metrics}

    def metrics_json(self) -> str:
        """Canonical (byte-stable) JSON of the deterministic metrics."""
        return canonical_json(self.metrics_document())

    def write_metrics(self, path: str) -> None:
        """Write the metrics document, with timing as a separate section."""
        document = self.metrics_document()
        document["timing"] = self.timing
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(document))
            handle.write("\n")

    def write_events(self, path: str) -> None:
        """Write the event stream as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(canonical_json(event))
                handle.write("\n")


# ----------------------------------------------------------------------
# Event extraction
# ----------------------------------------------------------------------
def events_from_gantt(gantt: GanttChart) -> List[Dict[str, Any]]:
    """Flatten a Gantt recording into a time-ordered event list."""
    entries: List[Tuple[int, int, Dict[str, Any]]] = []
    order = 0
    for marker in gantt.markers:
        entries.append(
            (
                marker.time.to_ns(),
                order,
                {"t_ms": marker.time.to_ms(), "thread": marker.thread,
                 "kind": marker.kind},
            )
        )
        order += 1
    for segment in gantt.segments:
        entries.append(
            (
                segment.start.to_ns(),
                order,
                {
                    "t_ms": segment.start.to_ms(),
                    "thread": segment.thread,
                    "kind": "exec",
                    "dur_ms": segment.duration.to_ms(),
                    "context": segment.context.value,
                    "energy_nj": segment.energy_nj,
                    "label": segment.label,
                },
            )
        )
        order += 1
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return [event for _, _, event in entries]


# ----------------------------------------------------------------------
# Aggregation & comparison
# ----------------------------------------------------------------------
def flatten_numeric(document: Mapping[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to dotted keys, keeping numeric leaves only."""
    flat: Dict[str, float] = {}
    for key, value in document.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[dotted] = float(value)
        elif isinstance(value, Mapping):
            flat.update(flatten_numeric(value, prefix=f"{dotted}."))
    return flat


def aggregate_metrics(results: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum and average the numeric metrics over a batch of runs.

    *results* are per-run ``metrics`` dicts.  Keys missing from some runs
    contribute only to the runs that have them (means divide by occurrence
    count, not by batch size), so heterogeneous scenario mixes aggregate
    sensibly.
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    run_count = 0
    for metrics in results:
        run_count += 1
        for key, value in flatten_numeric(metrics).items():
            totals[key] = totals.get(key, 0.0) + value
            counts[key] = counts.get(key, 0) + 1
    means = {key: totals[key] / counts[key] for key in totals}
    return {
        "runs": run_count,
        "total": {key: totals[key] for key in sorted(totals)},
        "mean": {key: means[key] for key in sorted(means)},
    }


def compare_metrics(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> List[Tuple[str, Any, Any, Any]]:
    """Align two metrics documents key by key.

    Returns rows ``(key, left_value, right_value, delta)`` over the union of
    flattened numeric keys; a key missing on one side renders as an empty
    cell and an empty delta.
    """
    flat_left = flatten_numeric(left)
    flat_right = flatten_numeric(right)
    rows: List[Tuple[str, Any, Any, Any]] = []
    for key in sorted(set(flat_left) | set(flat_right)):
        left_value = flat_left.get(key)
        right_value = flat_right.get(key)
        if left_value is None or right_value is None:
            delta: Any = ""
        else:
            delta = right_value - left_value
        rows.append(
            (
                key,
                "" if left_value is None else _trim(left_value),
                "" if right_value is None else _trim(right_value),
                _trim(delta) if delta != "" else "",
            )
        )
    return rows


def _trim(value: float) -> Any:
    """Render integral floats as ints for compact tables."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, float):
        return round(value, 6)
    return value
