"""The campaign subsystem: declarative scenarios, batch runs, metrics.

This package is the orchestration backbone over everything the reproduction
models.  One :class:`~repro.campaign.spec.ScenarioSpec` declaratively
describes a run (kernel model, workload, knobs, seed); the
:mod:`~repro.campaign.registry` names built-in scenarios covering every
``examples/`` experiment; the :mod:`~repro.campaign.runner` executes one
spec in-process into a structured :class:`~repro.campaign.metrics.RunResult`
(JSONL events + deterministic metrics JSON); and the
:mod:`~repro.campaign.batch` engine expands parameter matrices across
``multiprocessing`` workers with deterministic per-run seeds and an
aggregate/compare step.  The :mod:`~repro.campaign.cli` exposes all of it as
``python -m repro run|batch|list|compare``.
"""

from repro.campaign.batch import BatchResult, plan_batch, run_batch
from repro.campaign.metrics import (
    RunResult,
    aggregate_metrics,
    compare_metrics,
    events_from_gantt,
)
from repro.campaign.registry import (
    build_scenario,
    describe_scenario,
    get_scenario,
    register_scenario,
    scenario_description,
    scenario_names,
)


def __getattr__(name: str):
    # ScenarioBuild lives in repro.workload.components, whose modules import
    # repro.campaign.spec; re-export it lazily so neither package needs the
    # other fully initialized at import time.
    if name == "ScenarioBuild":
        from repro.workload.components import ScenarioBuild

        return ScenarioBuild
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.campaign.runner import run_spec
from repro.campaign.spec import (
    ScenarioSpec,
    SpecError,
    derive_seed,
    expand_matrix,
    load_spec_dir,
    load_spec_file,
    spec_hash,
)

__all__ = [
    "BatchResult",
    "RunResult",
    "ScenarioBuild",
    "ScenarioSpec",
    "SpecError",
    "aggregate_metrics",
    "build_scenario",
    "compare_metrics",
    "derive_seed",
    "describe_scenario",
    "events_from_gantt",
    "expand_matrix",
    "get_scenario",
    "load_spec_dir",
    "load_spec_file",
    "plan_batch",
    "register_scenario",
    "spec_hash",
    "run_batch",
    "run_spec",
    "scenario_description",
    "scenario_names",
]
