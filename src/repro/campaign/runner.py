"""Execute one scenario spec in-process and collect its RunResult.

The runner is the only place that knows how to go from a declarative
:class:`~repro.campaign.spec.ScenarioSpec` to a finished
:class:`~repro.campaign.metrics.RunResult`: it builds the scenario through
the registry, runs the simulator for the spec's duration while measuring
host wall-clock time (the Table 2 R measure), then harvests deterministic
metrics (SIM_API counters, kernel statistics, energy, CPU utilisation).

Events flow over the simulator's observability bus instead of being
flattened out of an in-memory Gantt recording after the fact: the runner
detaches SIM_API's Gantt sink (its history is never needed here — the
per-event counters keep counting) and subscribes its own ``sched``-topic
sink for the duration of the run:

* ``events_stream=<path | "-" | file>`` — a streaming JSONL writer that
  emits each event *during* the run at bounded memory (nothing is retained),
* otherwise, with ``collect_events=True`` — an in-memory collector whose
  output is byte-identical to the streamed form.

Extra caller sinks (ring buffers, VCD writers, perf-trend collectors from
follow-up PRs) ride along via ``sinks=``; they are unsubscribed when the run
finishes.

Every run is bracketed by :meth:`Simulator.reset` so repeated in-process
runs — the whole point of the batch engine — cannot leak simulator state
into each other through the class-level current-simulator slot; a
simulator the *caller* owned before the run is put back afterwards.
"""

from __future__ import annotations

import time
from typing import Any, Dict, IO, Optional, Sequence, Union

from typing import TYPE_CHECKING

from repro.campaign.metrics import RunResult
from repro.campaign.registry import build_scenario
from repro.resilience.hooks import chaos_point, tag_phase

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.workload.components import ScenarioBuild
from repro.campaign.spec import ScenarioSpec
from repro.core.gantt import GanttChart
from repro.obs.bus import Event
from repro.obs.sinks import JsonlStreamSink, ListSink
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime


def _gantt_replay_events(gantt: GanttChart) -> "list[Event]":
    """Rebuild ``sched`` events from a Gantt recording, in stream order.

    Used to carry over events that scenario builders produced before the
    runner could subscribe its sinks; ordering matches the live stream
    (time-sorted, markers before slices at the same instant).
    """
    entries = []
    order = 0
    for marker in gantt.markers:
        entries.append((
            marker.time.nanoseconds, order,
            Event("sched", marker.kind, marker.time.nanoseconds,
                  {"thread": marker.thread}),
        ))
        order += 1
    for segment in gantt.segments:
        entries.append((
            segment.start.nanoseconds, order,
            Event("sched", "exec", segment.start.nanoseconds, {
                "thread": segment.thread,
                "dur_ns": segment.end.nanoseconds - segment.start.nanoseconds,
                "context": segment.context,
                "energy_nj": segment.energy_nj,
                "label": segment.label,
            }),
        ))
        order += 1
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return [event for _, _, event in entries]


def run_spec(
    spec: ScenarioSpec,
    collect_events: bool = True,
    events_stream: "Optional[Union[str, IO[str]]]" = None,
    sinks: Sequence[Any] = (),
    store: Optional[Any] = None,
    refresh: bool = False,
    telemetry: Optional[Any] = None,
    fused: Optional[Any] = None,
    budget: Optional[Any] = None,
) -> RunResult:
    """Run one scenario and return its structured result.

    With a grid :class:`~repro.grid.store.ResultStore` attached via *store*,
    the run is served from the cache when a verified entry for the spec
    exists: stored metrics and the stored JSONL stream are replayed
    byte-identically through the requested output mode and no simulation
    happens (``result.cached`` is ``True``).  On a miss — or always, with
    ``refresh=True`` — the run executes normally while a staging
    ``JsonlStreamSink`` tees the live event stream into the store, and the
    finished artifacts become the new entry.  Caller *sinks* want the live
    bus, so providing any disables the cache lookup for that call.

    A caller-owned current simulator is restored afterwards, so embedding a
    campaign run inside an interactive session is safe; with no caller
    simulator the class-level slot is left cleanly reset.

    *telemetry* (a :class:`~repro.analytics.telemetry.TelemetryRecorder`)
    collects pipeline phase spans — compose/build/run/store on the fresh
    path, lookup/replay on a cache hit.  Spans are host wall clock and never
    touch the run's deterministic artifacts: the recorder rides the bus's
    ``telemetry`` topic, which no stored stream subscribes to.

    *fused* (a :class:`~repro.campaign.fused.FusedRunContext`) reuses
    per-process plumbing across many calls: the spec's composition comes
    from the context's cache (compose is skipped on every repeat) and the
    in-memory event collector is the context's pooled sink instead of a
    fresh allocation.  Reuse never reaches a deterministic artifact — a
    fused run's result is byte-identical to a build-from-scratch run.

    *budget* (a :class:`~repro.resilience.watchdog.RunBudget`) arms a
    watchdog on the simulator's advance hooks: a run exceeding its
    simulated-ns or wall-clock ceiling is cancelled with a
    :class:`~repro.resilience.watchdog.WatchdogTimeout` — the normal
    cleanup path still closes sinks and resets the simulator, and a
    cancelled run is never stored.
    """
    spec.validate()
    if store is not None and not refresh and not sinks:
        if telemetry is not None:
            with telemetry.span("lookup", scenario=spec.name):
                hit = store.lookup(spec)
        else:
            hit = store.lookup(spec)
        if hit is not None:
            if telemetry is not None:
                with telemetry.span("replay", scenario=spec.name):
                    return hit.replay(
                        collect_events=collect_events,
                        events_stream=events_stream,
                    )
            return hit.replay(
                collect_events=collect_events, events_stream=events_stream
            )
    prior = Simulator._current
    stream_sink: Optional[JsonlStreamSink] = None
    staging_sink: Optional[JsonlStreamSink] = None
    staging_path: Optional[str] = None
    try:
        try:
            chaos_point("build", scenario=spec.name)
            if fused is not None:
                # The fused engine's reuse path: the composition comes out of
                # the context's per-process cache, so a sweep composes each
                # distinct spec once no matter how many members repeat it.
                build = build_scenario(
                    spec, telemetry=telemetry,
                    composition=fused.compositions.composition_for(spec),
                )
            elif telemetry is None:
                build = build_scenario(spec)
            else:
                build = build_scenario(spec, telemetry=telemetry)
        except Exception as error:
            tag_phase(error, "build")
            raise
        if budget is not None:
            from repro.resilience.watchdog import Watchdog

            Watchdog(budget).arm(build.simulator)
        bus = build.simulator.obs
        if telemetry is not None:
            # Simulator-side publishers may emit on the telemetry topic;
            # route them into the same recorder as the runner's own spans.
            bus.subscribe(telemetry, ("telemetry",))
        # Scenario builders may already dispatch threads while wiring the
        # workload; those events landed in the default Gantt sink before we
        # could subscribe, so carry them over, then detach the chart — the
        # runner never reads its history and long runs must not accumulate
        # unbounded segment lists.
        pre_events = _gantt_replay_events(build.api.gantt)
        build.api.detach_gantt()
        # The composition's probes decide which topics the run's sinks see;
        # the default — sched alone — is the stored-artifact contract.
        probe_topics = build.probes.topics
        collector: Optional[ListSink] = None
        if events_stream is not None:
            stream_sink = JsonlStreamSink(events_stream, topics=probe_topics)
            bus.subscribe(stream_sink, probe_topics)
        elif collect_events:
            if fused is not None:
                collector = fused.checkout_collector(probe_topics)
            else:
                collector = ListSink(topics=probe_topics)
            bus.subscribe(collector, probe_topics)
        if store is not None and probe_topics == ("sched",):
            # Tee the live stream into the store's staging area so the new
            # cache entry holds the exact bytes a streamed run would emit.
            # Stored artifacts are a sched-only contract: a workload whose
            # probes add topics is never cached (fill skipped here; nothing
            # is ever stored under its hash, so lookups miss too) — a hit
            # replaying fewer topics than the fresh run would break the
            # byte-identity invariant.
            staging_path = store.staging_events_path(store.key_of(spec))
            staging_sink = JsonlStreamSink(staging_path, topics=("sched",))
            bus.subscribe(staging_sink, ("sched",))
        for sink in sinks:
            bus.subscribe(sink)
        # Replay the pre-subscription events through the topic so every
        # sched sink — stream, collector and caller-provided — sees the
        # complete run from its very first dispatch.
        sched_topic = bus.topic("sched")
        if pre_events and sched_topic.enabled:
            for event in pre_events:
                sched_topic.emit(event.kind, event.t_ns, **event.fields)

        advances = [0]
        build.simulator.advance_hooks.append(
            lambda _sim, _when: advances.__setitem__(0, advances[0] + 1)
        )
        campaign_topic = bus.topic("campaign")
        if campaign_topic.enabled:
            campaign_topic.emit(
                "run_start", build.simulator.now.nanoseconds,
                scenario=spec.name, kernel=spec.kernel, seed=spec.seed,
            )
        chaos_point("run-start", scenario=spec.name)
        start = time.perf_counter()
        build.simulator.run(SimTime.ms(spec.duration_ms))
        wall_clock_seconds = time.perf_counter() - start
        if telemetry is not None:
            telemetry.record("run", wall_clock_seconds, scenario=spec.name)
        if campaign_topic.enabled:
            campaign_topic.emit(
                "run_end", build.simulator.now.nanoseconds,
                scenario=spec.name, seed=spec.seed,
            )
        metrics = _collect_metrics(spec, build, timed_advances=advances[0])
        timing = _collect_timing(metrics["simulated_ms"], wall_clock_seconds)
        events = collector.to_dicts() if collector is not None else []
        for sink in sinks:
            bus.unsubscribe(sink)
        if telemetry is not None:
            bus.unsubscribe(telemetry)
        if staging_sink is not None:
            staging_sink.close()
            try:
                chaos_point("store", scenario=spec.name)
                if telemetry is not None:
                    with telemetry.span("store", scenario=spec.name):
                        entry = store.put(
                            spec.to_dict(), metrics, events_path=staging_path
                        )
                else:
                    entry = store.put(
                        spec.to_dict(), metrics, events_path=staging_path
                    )
            except Exception as error:
                tag_phase(error, "store")
                raise
            staging_sink = None
            chaos_point("stored", scenario=spec.name,
                        entry_dir=entry.entry_dir)
    finally:
        if stream_sink is not None:
            stream_sink.close()
        if staging_sink is not None:  # run failed before the entry was stored
            staging_sink.close()
        Simulator.reset()
        if prior is not None:
            Simulator._current = prior
    return RunResult(
        spec=spec.to_dict(),
        metrics=metrics,
        timing=timing,
        events=events,
        events_streamed=stream_sink.lines_written if stream_sink else 0,
    )


def _collect_metrics(
    spec: ScenarioSpec, build: "ScenarioBuild", timed_advances: int = 0
) -> Dict[str, Any]:
    """Deterministic simulation metrics of a finished run."""
    api = build.api
    simulator = build.simulator
    simulated = simulator.now
    idle = api.cpu_idle_time()
    busy_fraction = 0.0
    if simulated.to_ns() > 0:
        busy_fraction = max(0.0, 1.0 - idle.to_ns() / simulated.to_ns())
    kernel_stats = build.kernel_statistics()
    return {
        "scenario": spec.name,
        "kernel": spec.kernel,
        "workload": spec.workload,
        "seed": spec.seed,
        "simulated_ms": simulated.to_ms(),
        "context_switches": api.dispatch_count,
        "preemptions": api.preemption_count,
        "interrupts": api.interrupt_count,
        "sim_waits": api.sim_wait_count,
        "syscall_total": kernel_stats.get("service_call_total", 0),
        "syscalls": kernel_stats.get("service_calls", {}),
        "cpu_utilization": round(busy_fraction, 9),
        "cpu_idle_ms": idle.to_ms(),
        "energy_mj": round(api.total_consumed_energy_mj(), 9),
        "threads": len(api.hashtb),
        "delta_cycles": simulator.stats()["delta_cycles"],
        "timed_advances": timed_advances,
        "gantt_segments": api.segment_count,
        "gantt_markers": api.marker_count,
        "kernel_stats": kernel_stats,
        "workload_metrics": build.workload_metrics(),
    }


def _collect_timing(simulated_ms: float, wall_clock_seconds: float) -> Dict[str, Any]:
    """Host-side (non-deterministic) speed measures: R, R/S and S/R."""
    simulated_seconds = simulated_ms / 1000.0
    return {
        "wall_clock_seconds": wall_clock_seconds,
        "r_over_s": (wall_clock_seconds / simulated_seconds)
        if simulated_seconds else None,
        "s_over_r": (simulated_seconds / wall_clock_seconds)
        if wall_clock_seconds else None,
    }
