"""Execute one scenario spec in-process and collect its RunResult.

The runner is the only place that knows how to go from a declarative
:class:`~repro.campaign.spec.ScenarioSpec` to a finished
:class:`~repro.campaign.metrics.RunResult`: it builds the scenario through
the registry, runs the simulator for the spec's duration while measuring
host wall-clock time (the Table 2 R measure), then harvests deterministic
metrics (SIM_API counters, kernel statistics, energy, CPU utilisation) and
the JSONL event stream from the Gantt recording.

Every run is bracketed by :meth:`Simulator.reset` so repeated in-process
runs — the whole point of the batch engine — cannot leak simulator state
into each other through the class-level current-simulator slot; a
simulator the *caller* owned before the run is put back afterwards.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.campaign.metrics import RunResult, events_from_gantt
from repro.campaign.registry import ScenarioBuild, build_scenario
from repro.campaign.spec import ScenarioSpec
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime


def run_spec(spec: ScenarioSpec, collect_events: bool = True) -> RunResult:
    """Run one scenario and return its structured result.

    A caller-owned current simulator is restored afterwards, so embedding a
    campaign run inside an interactive session is safe; with no caller
    simulator the class-level slot is left cleanly reset.
    """
    spec.validate()
    prior = Simulator._current
    try:
        build = build_scenario(spec)
        advances = [0]
        build.simulator.advance_hooks.append(
            lambda _sim, _when: advances.__setitem__(0, advances[0] + 1)
        )
        start = time.perf_counter()
        build.simulator.run(SimTime.ms(spec.duration_ms))
        wall_clock_seconds = time.perf_counter() - start
        metrics = _collect_metrics(spec, build, timed_advances=advances[0])
        timing = _collect_timing(metrics["simulated_ms"], wall_clock_seconds)
        events = events_from_gantt(build.api.gantt) if collect_events else []
    finally:
        Simulator.reset()
        if prior is not None:
            Simulator._current = prior
    return RunResult(
        spec=spec.to_dict(), metrics=metrics, timing=timing, events=events
    )


def _collect_metrics(
    spec: ScenarioSpec, build: ScenarioBuild, timed_advances: int = 0
) -> Dict[str, Any]:
    """Deterministic simulation metrics of a finished run."""
    api = build.api
    simulator = build.simulator
    simulated = simulator.now
    idle = api.cpu_idle_time()
    busy_fraction = 0.0
    if simulated.to_ns() > 0:
        busy_fraction = max(0.0, 1.0 - idle.to_ns() / simulated.to_ns())
    kernel_stats = build.kernel_statistics()
    return {
        "scenario": spec.name,
        "kernel": spec.kernel,
        "workload": spec.workload,
        "seed": spec.seed,
        "simulated_ms": simulated.to_ms(),
        "context_switches": api.dispatch_count,
        "preemptions": api.preemption_count,
        "interrupts": api.interrupt_count,
        "sim_waits": api.sim_wait_count,
        "syscall_total": kernel_stats.get("service_call_total", 0),
        "syscalls": kernel_stats.get("service_calls", {}),
        "cpu_utilization": round(busy_fraction, 9),
        "cpu_idle_ms": idle.to_ms(),
        "energy_mj": round(api.total_consumed_energy_mj(), 9),
        "threads": len(api.hashtb),
        "delta_cycles": simulator.stats()["delta_cycles"],
        "timed_advances": timed_advances,
        "gantt_segments": len(api.gantt.segments),
        "gantt_markers": len(api.gantt.markers),
        "kernel_stats": kernel_stats,
        "workload_metrics": build.workload_metrics(),
    }


def _collect_timing(simulated_ms: float, wall_clock_seconds: float) -> Dict[str, Any]:
    """Host-side (non-deterministic) speed measures: R, R/S and S/R."""
    simulated_seconds = simulated_ms / 1000.0
    return {
        "wall_clock_seconds": wall_clock_seconds,
        "r_over_s": (wall_clock_seconds / simulated_seconds)
        if simulated_seconds else None,
        "s_over_r": (simulated_seconds / wall_clock_seconds)
        if wall_clock_seconds else None,
    }
