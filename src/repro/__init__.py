"""RTK-Spec TRON reproduction: an ITRON RTOS kernel simulation model in Python.

Reproduction of "RTK-Spec TRON: A Simulation Model of an ITRON Based RTOS
Kernel in SystemC" (Hassan, Sakanushi, Takeuchi, Imai — DATE 2005).

Package layout
--------------

``repro.sysc``
    SystemC-like discrete-event simulation substrate.
``repro.core``
    The paper's contribution: T-THREAD process model and the SIM_API library.
``repro.tkernel``
    RTK-Spec TRON — the T-Kernel/OS (μ-ITRON heritage) behavioural model.
``repro.rtkspec``
    RTK-Spec I (round robin) and II (priority preemptive) validation kernels.
``repro.bfm``
    The i8051 bus functional model and peripherals.
``repro.app``
    The video-game case study, virtual-prototype widgets and the
    co-simulation framework.
``repro.analysis``
    The evaluation harnesses (Table 2, Fig. 6, Fig. 7).
"""

__version__ = "1.0.0"

__all__ = [
    "sysc",
    "core",
    "tkernel",
    "rtkspec",
    "bfm",
    "app",
    "analysis",
]
