"""RTK-Spec TRON reproduction: an ITRON RTOS kernel simulation model in Python.

Reproduction of "RTK-Spec TRON: A Simulation Model of an ITRON Based RTOS
Kernel in SystemC" (Hassan, Sakanushi, Takeuchi, Imai — DATE 2005).

Package layout
--------------

``repro.sysc``
    SystemC-like discrete-event simulation substrate.
``repro.core``
    The paper's contribution: T-THREAD process model and the SIM_API library.
``repro.tkernel``
    RTK-Spec TRON — the T-Kernel/OS (μ-ITRON heritage) behavioural model.
``repro.rtkspec``
    RTK-Spec I (round robin) and II (priority preemptive) validation kernels.
``repro.bfm``
    The i8051 bus functional model and peripherals.
``repro.app``
    The video-game case study, virtual-prototype widgets and the
    co-simulation framework.
``repro.analysis``
    The evaluation harnesses (Table 2, Fig. 6, Fig. 7).
``repro.obs``
    The observability bus: one streaming event pipeline (typed topics,
    pluggable sinks, zero cost when no sink is attached) that the kernel,
    signals, SIM_API, T-Kernel services, BFM drivers and the campaign
    runner all publish through.
``repro.campaign``
    The campaign runner (see below).
``repro.analytics``
    The trace analytics plane: a deterministic sqlite corpus index over
    the result store (``repro index``/``repro query``), warm-store audit
    reports (schedulability, deadline misses, latency distributions,
    per-family tables) that never re-simulate, and pipeline telemetry
    spans written to a ``telemetry.jsonl`` sidecar.

Campaign runner
---------------

:mod:`repro.campaign` is the orchestration backbone over all of the above:
declarative :class:`~repro.campaign.spec.ScenarioSpec` objects describe a
run (kernel model, workload, knobs, seed), a registry names built-in
scenarios covering every ``examples/`` experiment, and a batch engine
expands parameter matrices across ``multiprocessing`` workers with
deterministic per-run seeds.  Each run yields a structured
:class:`~repro.campaign.metrics.RunResult`: a JSONL event stream plus a
deterministic metrics JSON (context switches, preemptions, syscall counts,
CPU utilisation, energy) with host wall-clock speed (the paper's R/S) kept
in a separate ``timing`` section.  Everything is scriptable from the shell::

    python -m repro list                      # built-in scenarios
    python -m repro run quickstart --set duration_ms=50
    python -m repro batch --matrix seed=1,2   # parallel matrix sweep
    python -m repro compare left.json right.json
    python -m repro index build --cache DIR   # corpus index over the store
    python -m repro query --cache DIR --group-by spec.kernel --agg count
    python -m repro report audit --cache DIR  # warm-store, zero simulation
"""

__version__ = "1.2.0"

__all__ = [
    "sysc",
    "core",
    "tkernel",
    "rtkspec",
    "bfm",
    "app",
    "analysis",
    "obs",
    "campaign",
    "analytics",
]
