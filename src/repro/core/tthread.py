"""The T-THREAD controllable process model (Fig. 2).

A T-THREAD wraps an application task or a handler (cyclic, alarm, or external
interrupt) in a controllable process whose execution semantics are those of a
synchronized Petri net.  It is layered on an SC_THREAD-style process of the
:mod:`repro.sysc` substrate and runs under the supervision of the SIM_API
library (:mod:`repro.core.simapi`), which is the only component allowed to
grant it the CPU.

Lifecycle
---------

``CREATED → (dispatch) → RUNNING → { PREEMPTED | INTERRUPTED | SLEEPING }*
→ DORMANT → (re-activation) → RUNNING → ...``

Each activation instantiates a fresh *body* generator obtained from the
factory the thread was created with; the body expresses its timing through
``yield from api.sim_wait(...)`` and interacts with the kernel model through
service-call generators.  When the body returns (or raises
:class:`ThreadExit`), the activation's execution cycle is complete and the
thread returns the CPU to the SIM_API library.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, TYPE_CHECKING

from repro.core.events import ExecutionContext, RunEvent, ThreadKind, ThreadState
from repro.core.hashtb import StateChange
from repro.core.petri import PetriToken, Transition
from repro.sysc.event import SCEvent
from repro.sysc.process import WaitEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.simapi import SimApi


class ThreadExit(Exception):
    """Raised inside a body to terminate the current activation (tk_ext_tsk)."""


class ThreadTerminate(Exception):
    """Raised inside a body to forcibly terminate a task (tk_ter_tsk)."""


#: Type of a T-THREAD body factory: a zero-argument callable returning the
#: body generator for one activation.
BodyFactory = Callable[[], Generator[object, object, None]]


class TThread:
    """A controllable process wrapping one task or handler."""

    def __init__(
        self,
        api: "SimApi",
        name: str,
        factory: BodyFactory,
        priority: int = 128,
        kind: ThreadKind = ThreadKind.TASK,
        tid: Optional[int] = None,
    ):
        self.api = api
        self.name = name
        self.factory = factory
        self.priority = priority
        self.base_priority = priority
        self.kind = kind
        self.tid = tid if tid is not None else api.allocate_tid()
        self.state = ThreadState.CREATED
        self.token = PetriToken(name)
        self.run_event: SCEvent = api.simulator.create_event(f"tthread.{name}.run")
        # Reusable wait request for the CPU-grant handshake: the dispatch
        # loop yields it once per suspension, and the kernel reads it
        # without retaining it.
        self._run_wait = WaitEvent(self.run_event)
        # Per-thread transition cache: dispatch bookkeeping fires the same
        # handful of transitions (activate/resume/wakeup per RunEvent) on
        # every round; building a Transition per firing was a measurable
        # slice of the ping-pong profile (f-string + frozen-dataclass init).
        self._activate_transitions: dict = {}
        self._resume_transitions: dict = {}
        self._wakeup_transitions: dict = {}

        # CPU-grant handshake with the SIM_API dispatcher.
        self._cpu_granted = False
        self._pending_resume_event: RunEvent = RunEvent.STARTUP
        #: How the thread last suspended mid-body (PREEMPTED, INTERRUPTED or
        #: SLEEPING); None when the thread is dormant or running.
        self.suspend_kind: Optional[ThreadState] = None
        self.preempt_requested = False
        self.interrupt_requested = False

        # Statistics surfaced by the debugging widgets.
        self.activation_count = 0
        self.preemption_count = 0
        self.interrupted_count = 0
        self.exit_count = 0

        self._process = api.simulator.register_thread(f"tthread.{name}", self._run)
        # set_state journals two to three changes per dispatch; resolve the
        # api.simulator / api.hashtb chains once.
        self._simulator = api.simulator
        self._hashtb = api.hashtb
        api.hashtb.register(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_handler(self) -> bool:
        """Whether the thread wraps a handler rather than a task."""
        return self.kind.is_handler

    @property
    def consumed_execution_time(self):
        """CET of this thread (delegates to the token)."""
        return self.token.consumed_execution_time

    @property
    def consumed_execution_energy_nj(self) -> float:
        """CEE of this thread in nanojoules."""
        return self.token.consumed_execution_energy_nj

    def has_pending_suspension(self) -> bool:
        """Whether a preemption or interruption is waiting for this thread."""
        return self.preempt_requested or self.interrupt_requested

    # ------------------------------------------------------------------
    # State management (only SimApi and the kernel model should call these)
    # ------------------------------------------------------------------
    def set_state(self, new_state: ThreadState) -> None:
        """Change state and journal the change in SIM_HashTB."""
        old = self.state
        if new_state is old:
            return
        self.state = new_state
        # Inlined SimHashTB.record_state_change — this journal append runs
        # two to three times per dispatch.
        self._hashtb.journal.append(
            StateChange(self._simulator.now, self.tid, old, new_state)
        )

    def grant_cpu(self, resume_event: RunEvent) -> None:
        """Grant the CPU (called by the SIM_API dispatcher only)."""
        self._cpu_granted = True
        self._pending_resume_event = resume_event
        self.suspend_kind = None
        self.set_state(ThreadState.RUNNING)
        self.run_event.notify()

    def revoke_cpu(self) -> None:
        """Withdraw the CPU grant before the thread suspends."""
        self._cpu_granted = False

    def force_terminate(self) -> None:
        """Abort the current activation (used by ``tk_ter_tsk``).

        A :class:`ThreadTerminate` exception is raised at the body's current
        suspension point; the wrapper catches it, the activation ends and the
        thread becomes dormant again, ready for a future re-start.
        """
        if self.state is ThreadState.DORMANT or self.state is ThreadState.CREATED:
            return
        self._cpu_granted = False
        self.api.simulator.throw_into(self._process, ThreadTerminate())

    # ------------------------------------------------------------------
    # The underlying SC_THREAD
    # ------------------------------------------------------------------
    def _run(self):
        """Wrapper generator registered with the DES kernel."""
        while True:
            # Dormant: wait until the SIM_API library grants the CPU.
            while not self._cpu_granted:
                yield self._run_wait
            resume = self._pending_resume_event
            self.activation_count += 1
            context = (
                ExecutionContext.HANDLER if self.is_handler else ExecutionContext.STARTUP
                if resume is RunEvent.STARTUP
                else ExecutionContext.TASK
            )
            transition = self._activate_transitions.get(resume)
            if transition is None or transition.context is not context:
                transition = Transition(f"T_activate.{self.name}", resume, context)
                self._activate_transitions[resume] = transition
            self.token.fire(transition, self.api.simulator.now)
            body = self.factory()
            try:
                yield from body
            except ThreadExit:
                pass
            except ThreadTerminate:
                pass
            self.exit_count += 1
            self.token.complete_cycle()
            # Return the CPU to the library; it decides who runs next.
            self.api._on_thread_exit(self)

    # ------------------------------------------------------------------
    # Cooperative suspension (invoked from inside SIM_Wait)
    # ------------------------------------------------------------------
    def _suspend_until_regranted(self, suspend_state: ThreadState):
        """Generator: wait (inside the body) until the CPU is granted again.

        Returns the :class:`RunEvent` the SIM_API attached to the re-grant so
        the caller can fire the matching transition (Ex, Ei or Ew).
        """
        self.suspend_kind = suspend_state
        self.set_state(suspend_state)
        self._cpu_granted = False
        while not self._cpu_granted:
            yield self._run_wait
        return self._pending_resume_event

    def __repr__(self) -> str:
        return (
            f"TThread({self.name!r}, id={self.tid}, prio={self.priority}, "
            f"kind={self.kind.value}, state={self.state.value})"
        )
