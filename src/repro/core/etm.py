"""Execution time and energy models (ETM / EEM).

The paper annotates every firing sequence of a T-THREAD with an execution
time model ``ETM(S | T-THREAD) = f(CE, E_CE, cycle)`` and an execution energy
model ``EEM(S | T-THREAD) = f(E, M, E_clock)``.  In practice (section 5) the
annotations are *estimated* per basic block, OS service and BFM access.  This
module provides:

* :class:`TimingAnnotation` — one annotation: a cycle budget plus an energy
  budget,
* :class:`TimingModel` — converts cycle budgets to simulated time for a given
  CPU clock frequency (the paper's target is an 8051-class MCU),
* :class:`EnergyModel` — converts cycle budgets to energy for a given
  per-cycle energy plus per-access overheads,
* :class:`AnnotationTable` — a keyed table of annotations with sensible
  defaults, used by the kernel model (service-call costs), the application
  tasks (basic-block costs) and the BFM (per-access cycle budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.sysc.time import SimTime


@dataclass(frozen=True)
class TimingAnnotation:
    """A single ETM/EEM annotation.

    ``cycles`` is the CPU cycle budget of the annotated block; ``energy_nj``
    is the energy consumed by the block in nanojoules.  When ``energy_nj`` is
    None the energy model derives it from the cycle count.
    """

    cycles: int
    energy_nj: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycle budget cannot be negative")
        if self.energy_nj is not None and self.energy_nj < 0:
            raise ValueError("energy budget cannot be negative")

    def scaled(self, factor: float) -> "TimingAnnotation":
        """Return a copy scaled by *factor* (used for parameter sweeps)."""
        energy = None if self.energy_nj is None else self.energy_nj * factor
        return TimingAnnotation(int(round(self.cycles * factor)), energy)


class TimingModel:
    """Converts cycle budgets into simulated time.

    The default frequency of 12 MHz with 12 clocks per machine cycle matches
    the classic i8051 that the paper's BFM approximates; one machine cycle is
    then exactly 1 microsecond, which keeps annotated times easy to reason
    about in tests.
    """

    def __init__(self, clock_hz: float = 12_000_000.0, clocks_per_cycle: int = 12):
        if clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        if clocks_per_cycle <= 0:
            raise ValueError("clocks_per_cycle must be positive")
        self.clock_hz = clock_hz
        self.clocks_per_cycle = clocks_per_cycle

    @property
    def cycle_time(self) -> SimTime:
        """Duration of one machine cycle."""
        return SimTime.ns(self.clocks_per_cycle * 1e9 / self.clock_hz)

    def time_of(self, cycles: int) -> SimTime:
        """Simulated time consumed by *cycles* machine cycles."""
        if cycles < 0:
            raise ValueError("cycle count cannot be negative")
        nanoseconds = cycles * self.clocks_per_cycle * 1e9 / self.clock_hz
        return SimTime.ns(nanoseconds)

    def cycles_of(self, duration: "SimTime | int") -> int:
        """Number of whole machine cycles in *duration*."""
        duration = SimTime.coerce(duration)
        return int(duration.to_ns() * self.clock_hz / (self.clocks_per_cycle * 1e9))

    def __repr__(self) -> str:
        return f"TimingModel({self.clock_hz / 1e6:.1f} MHz, {self.clocks_per_cycle} clk/cycle)"


class EnergyModel:
    """Converts cycle budgets into consumed energy.

    ``energy_per_cycle_nj`` models the dynamic power of the core;
    ``idle_power_mw`` models the background power drawn even when the CPU is
    idle (used by the battery widget to account for wall-clock duration).
    """

    def __init__(self, energy_per_cycle_nj: float = 2.0, idle_power_mw: float = 1.0):
        if energy_per_cycle_nj < 0 or idle_power_mw < 0:
            raise ValueError("energy parameters cannot be negative")
        self.energy_per_cycle_nj = energy_per_cycle_nj
        self.idle_power_mw = idle_power_mw

    def energy_of(self, annotation: TimingAnnotation) -> float:
        """Energy (nJ) consumed by executing *annotation*."""
        if annotation.energy_nj is not None:
            return annotation.energy_nj
        return annotation.cycles * self.energy_per_cycle_nj

    def idle_energy(self, duration: "SimTime | int") -> float:
        """Energy (nJ) drawn by the idle platform over *duration*."""
        duration = SimTime.coerce(duration)
        # idle_power_mw [mJ/s] * seconds -> mJ -> nJ
        return self.idle_power_mw * duration.to_sec() * 1e6

    def __repr__(self) -> str:
        return (
            f"EnergyModel({self.energy_per_cycle_nj} nJ/cycle, "
            f"idle {self.idle_power_mw} mW)"
        )


#: Default cycle/energy budgets used when a key has no explicit annotation.
DEFAULT_ANNOTATION = TimingAnnotation(cycles=50)


class AnnotationTable:
    """A keyed table of :class:`TimingAnnotation` entries.

    Keys are free-form strings; by convention the kernel uses ``svc:<name>``
    for service calls, the application uses ``task:<task>:<block>`` for basic
    blocks and the BFM uses ``bfm:<call>`` for bus accesses.
    """

    def __init__(
        self,
        entries: Optional[Dict[str, TimingAnnotation]] = None,
        default: TimingAnnotation = DEFAULT_ANNOTATION,
    ):
        self._entries: Dict[str, TimingAnnotation] = dict(entries or {})
        self.default = default
        self.lookups: Dict[str, int] = {}

    def annotate(self, key: str, cycles: int, energy_nj: Optional[float] = None) -> None:
        """Set the annotation of *key*."""
        self._entries[key] = TimingAnnotation(cycles, energy_nj)

    def lookup(self, key: str) -> TimingAnnotation:
        """Return the annotation of *key* (the default if unknown)."""
        self.lookups[key] = self.lookups.get(key, 0) + 1
        return self._entries.get(key, self.default)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[str]:
        """All explicitly annotated keys."""
        return self._entries.keys()

    def items(self) -> Iterable[Tuple[str, TimingAnnotation]]:
        """All (key, annotation) pairs."""
        return self._entries.items()

    def merged_with(self, other: "AnnotationTable") -> "AnnotationTable":
        """Return a new table with *other*'s entries overriding this one's."""
        merged = dict(self._entries)
        merged.update(other._entries)
        return AnnotationTable(merged, default=other.default)

    def __repr__(self) -> str:
        return f"AnnotationTable({len(self._entries)} entries)"


def default_service_call_annotations() -> AnnotationTable:
    """Estimated cycle budgets for T-Kernel/OS service calls.

    The paper estimates its annotations rather than calibrating them
    (section 5, last paragraph); these values are in the range reported for
    small ITRON kernels on 8-bit targets and give service calls a visible but
    small cost relative to the 1 ms system tick.
    """
    table = AnnotationTable()
    budgets = {
        "svc:tk_cre_tsk": 220,
        "svc:tk_sta_tsk": 180,
        "svc:tk_ext_tsk": 160,
        "svc:tk_ter_tsk": 200,
        "svc:tk_slp_tsk": 140,
        "svc:tk_wup_tsk": 120,
        "svc:tk_dly_tsk": 140,
        "svc:tk_chg_pri": 110,
        "svc:tk_rel_wai": 130,
        "svc:tk_cre_sem": 150,
        "svc:tk_sig_sem": 100,
        "svc:tk_wai_sem": 120,
        "svc:tk_cre_flg": 150,
        "svc:tk_set_flg": 110,
        "svc:tk_clr_flg": 90,
        "svc:tk_wai_flg": 130,
        "svc:tk_cre_mtx": 150,
        "svc:tk_loc_mtx": 130,
        "svc:tk_unl_mtx": 120,
        "svc:tk_cre_mbx": 150,
        "svc:tk_snd_mbx": 110,
        "svc:tk_rcv_mbx": 120,
        "svc:tk_cre_mbf": 160,
        "svc:tk_snd_mbf": 140,
        "svc:tk_rcv_mbf": 140,
        "svc:tk_cre_mpf": 170,
        "svc:tk_get_mpf": 120,
        "svc:tk_rel_mpf": 110,
        "svc:tk_cre_mpl": 180,
        "svc:tk_get_mpl": 140,
        "svc:tk_rel_mpl": 130,
        "svc:tk_cre_cyc": 160,
        "svc:tk_sta_cyc": 100,
        "svc:tk_stp_cyc": 100,
        "svc:tk_cre_alm": 160,
        "svc:tk_sta_alm": 100,
        "svc:tk_stp_alm": 100,
        "svc:tk_set_tim": 90,
        "svc:tk_get_tim": 80,
        "svc:tk_ref_tsk": 90,
        "svc:tk_ref_sys": 90,
        "svc:timer_handler": 80,
        "svc:dispatch": 150,
        "svc:interrupt_entry": 120,
        "svc:interrupt_return": 100,
        "svc:boot": 400,
    }
    for key, cycles in budgets.items():
        table.annotate(key, cycles)
    return table
