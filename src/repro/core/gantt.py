"""Gantt chart recording and rendering.

The SIM_API library "has a debugging option for displaying time GANTT chart,
and energy statistics for all registered T-THREADs" (section 4).  The Fig. 6
widget additionally distinguishes the execution context of every slice
(BFM access, basic block, OS service, handler).  :class:`GanttChart` records
the slices; rendering is plain text so it works headless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.events import ExecutionContext
from repro.sysc.time import SimTime

#: One display character per execution context ("different contexts of
#: execution are assigned different patterns" — Fig. 6).
CONTEXT_PATTERNS: Dict[ExecutionContext, str] = {
    ExecutionContext.STARTUP: "S",
    ExecutionContext.SERVICE_CALL: "o",
    ExecutionContext.TASK: "#",
    ExecutionContext.HANDLER: "H",
    ExecutionContext.BFM_ACCESS: "B",
    ExecutionContext.IDLE: ".",
}


@dataclass(frozen=True)
class GanttSegment:
    """One contiguous execution slice of a T-THREAD."""

    thread: str
    start: SimTime
    end: SimTime
    context: ExecutionContext
    energy_nj: float = 0.0
    label: str = ""

    @property
    def duration(self) -> SimTime:
        """Length of the slice."""
        return self.end - self.start


@dataclass(frozen=True)
class GanttMarker:
    """A point event on the chart (dispatch, preemption, interrupt)."""

    time: SimTime
    thread: str
    kind: str


class GanttChart:
    """Accumulates execution slices and point markers.

    The chart is an observability-bus *sink*: subscribed to the ``sched``
    topic it rebuilds the classic recording from the stream — ``exec``
    events become segments, everything else becomes a marker.  SIM_API
    subscribes its chart by default; detaching it (``SimApi.detach_gantt``)
    turns scheduling history off without touching any publisher.
    """

    topics = ("sched",)
    #: The chart copies what it needs out of each event inside ``handle``,
    #: so the bus may reuse a pooled event across publishes.
    retains_events = False

    def __init__(self, name: str = "gantt"):
        self.name = name
        self.segments: List[GanttSegment] = []
        self.markers: List[GanttMarker] = []

    # -- recording -------------------------------------------------------------
    def add_segment(self, segment: GanttSegment) -> None:
        """Record an execution slice."""
        if segment.end < segment.start:
            raise ValueError("segment ends before it starts")
        self.segments.append(segment)

    def add_marker(self, time: SimTime, thread: str, kind: str) -> None:
        """Record a point event such as ``dispatch`` or ``preempt``."""
        self.markers.append(GanttMarker(time, thread, kind))

    def handle(self, event) -> None:
        """Bus-sink entry point for ``sched``-topic events."""
        fields = event.fields
        if event.kind == "exec":
            start = SimTime(event.t_ns)
            self.segments.append(
                GanttSegment(
                    fields["thread"],
                    start,
                    start + SimTime(fields["dur_ns"]),
                    fields["context"],
                    fields["energy_nj"],
                    fields["label"],
                )
            )
        else:
            self.markers.append(
                GanttMarker(SimTime(event.t_ns), fields["thread"], event.kind)
            )

    @classmethod
    def from_events(cls, events: "Iterable[object]", name: str = "gantt") -> "GanttChart":
        """Rebuild a chart from ``sched`` events (e.g. a ring-buffer sink)."""
        chart = cls(name)
        for event in events:
            if getattr(event, "topic", "sched") == "sched":
                chart.handle(event)
        return chart

    # -- queries ------------------------------------------------------------------
    def threads(self) -> List[str]:
        """Thread names appearing on the chart, in order of first appearance."""
        seen: List[str] = []
        for segment in self.segments:
            if segment.thread not in seen:
                seen.append(segment.thread)
        for marker in self.markers:
            if marker.thread not in seen:
                seen.append(marker.thread)
        return seen

    def segments_of(self, thread: str) -> List[GanttSegment]:
        """All slices of one thread."""
        return [s for s in self.segments if s.thread == thread]

    def markers_of(self, thread: str, kind: Optional[str] = None) -> List[GanttMarker]:
        """All markers of one thread, optionally filtered by kind."""
        return [
            m for m in self.markers
            if m.thread == thread and (kind is None or m.kind == kind)
        ]

    def busy_time_of(self, thread: str) -> SimTime:
        """Total execution time recorded for *thread*."""
        total = SimTime(0)
        for segment in self.segments_of(thread):
            total = total + segment.duration
        return total

    def energy_of(self, thread: str) -> float:
        """Total energy (nJ) recorded for *thread*."""
        return sum(s.energy_nj for s in self.segments_of(thread))

    def end_time(self) -> SimTime:
        """Time of the last recorded activity."""
        latest = SimTime(0)
        for segment in self.segments:
            if segment.end > latest:
                latest = segment.end
        for marker in self.markers:
            if marker.time > latest:
                latest = marker.time
        return latest

    def overlapping_segments(self) -> List[tuple]:
        """Pairs of segments that overlap in time.

        On a single CPU no two execution slices may overlap; tests use this
        to assert the single-CPU invariant of the SIM_API dispatcher.
        """
        ordered = sorted(self.segments, key=lambda s: (s.start.to_ns(), s.end.to_ns()))
        overlaps = []
        for first, second in zip(ordered, ordered[1:]):
            if second.start < first.end:
                overlaps.append((first, second))
        return overlaps

    # -- rendering --------------------------------------------------------------
    def render(
        self,
        start: "SimTime | int" = 0,
        stop: "SimTime | int | None" = None,
        columns: int = 72,
        threads: Optional[Sequence[str]] = None,
    ) -> str:
        """Render a text Gantt chart sampled over [start, stop)."""
        start = SimTime.coerce(start)
        stop = SimTime.coerce(stop) if stop is not None else self.end_time()
        if stop <= start:
            stop = start + SimTime.ms(1)
        span_ns = stop.to_ns() - start.to_ns()
        names = list(threads) if threads is not None else self.threads()
        width = max((len(n) for n in names), default=10)
        lines = [f"GANTT {self.name}  [{start.format()} .. {stop.format()}]"]
        for name in names:
            cells = ["."] * columns
            for segment in self.segments_of(name):
                if segment.end <= start or segment.start >= stop:
                    continue
                first = max(0, (segment.start.to_ns() - start.to_ns()) * columns // span_ns)
                last = min(
                    columns - 1,
                    max(first, (segment.end.to_ns() - 1 - start.to_ns()) * columns // span_ns),
                )
                pattern = CONTEXT_PATTERNS.get(segment.context, "#")
                for col in range(int(first), int(last) + 1):
                    cells[col] = pattern
            lines.append(f"{name:<{width}} |{''.join(cells)}|")
        legend = "  ".join(
            f"{pattern}={context.value}" for context, pattern in CONTEXT_PATTERNS.items()
        )
        lines.append(f"legend: {legend}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"GanttChart({self.name!r}, segments={len(self.segments)}, markers={len(self.markers)})"
