"""SIM_HashTB — the thread hash table of the SIM_API library.

Section 4 of the paper: *"The library contains a Thread hash table
(SIM_HashTB) that keeps a record on every T-THREAD created upon startup and
gets updated whenever a T-THREAD changes its state."*

The table maps thread identifiers to their records and keeps a state-change
journal that the debugging widgets (Gantt chart, Fig. 8 listing) read back.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.core.events import ThreadKind, ThreadState
from repro.sysc.time import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tthread import TThread


class StateChange:
    """One recorded T-THREAD state change.

    Hand-slotted rather than a frozen dataclass: every dispatch journals
    two to three state changes, so the constructor sits on the hot path and
    the frozen ``object.__setattr__`` init cost is measurable there.
    """

    __slots__ = ("time", "thread_id", "old_state", "new_state")

    def __init__(
        self, time: SimTime, thread_id: int,
        old_state: ThreadState, new_state: ThreadState,
    ):
        self.time = time
        self.thread_id = thread_id
        self.old_state = old_state
        self.new_state = new_state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateChange):
            return NotImplemented
        return (
            self.time == other.time
            and self.thread_id == other.thread_id
            and self.old_state is other.old_state
            and self.new_state is other.new_state
        )

    def __repr__(self) -> str:
        return (
            f"StateChange(time={self.time!r}, thread_id={self.thread_id!r}, "
            f"old_state={self.old_state!r}, new_state={self.new_state!r})"
        )


class SimHashTB:
    """Registry of every T-THREAD known to the SIM_API library."""

    def __init__(self):
        self._by_id: "Dict[int, TThread]" = {}
        self._by_name: "Dict[str, TThread]" = {}
        self.journal: List[StateChange] = []

    # -- registration ----------------------------------------------------
    def register(self, thread: "TThread") -> None:
        """Record a newly created T-THREAD."""
        if thread.tid in self._by_id:
            raise KeyError(f"thread id {thread.tid} already registered")
        if thread.name in self._by_name:
            raise KeyError(f"thread name {thread.name!r} already registered")
        self._by_id[thread.tid] = thread
        self._by_name[thread.name] = thread

    def unregister(self, thread: "TThread") -> None:
        """Remove a T-THREAD (used when a task is deleted)."""
        self._by_id.pop(thread.tid, None)
        self._by_name.pop(thread.name, None)

    # -- lookup -----------------------------------------------------------
    def get(self, tid: int) -> "TThread":
        """Look up a thread by identifier."""
        try:
            return self._by_id[tid]
        except KeyError:
            raise KeyError(f"no T-THREAD with id {tid}") from None

    def get_by_name(self, name: str) -> "TThread":
        """Look up a thread by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no T-THREAD named {name!r}") from None

    def __contains__(self, tid: int) -> bool:
        return tid in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> "Iterator[TThread]":
        return iter(list(self._by_id.values()))

    def all_threads(self) -> "List[TThread]":
        """All registered threads, ordered by identifier."""
        return [self._by_id[tid] for tid in sorted(self._by_id)]

    def threads_in_state(self, state: ThreadState) -> "List[TThread]":
        """All threads currently in *state*."""
        return [t for t in self.all_threads() if t.state is state]

    def threads_of_kind(self, kind: ThreadKind) -> "List[TThread]":
        """All threads of the given kind."""
        return [t for t in self.all_threads() if t.kind is kind]

    # -- state tracking -----------------------------------------------------
    def record_state_change(
        self, thread: "TThread", old: ThreadState, new: ThreadState, now: SimTime
    ) -> None:
        """Append a state change to the journal."""
        self.journal.append(StateChange(now, thread.tid, old, new))

    def state_changes_of(self, tid: int) -> List[StateChange]:
        """All journaled state changes of one thread."""
        return [change for change in self.journal if change.thread_id == tid]

    def running_thread(self) -> "Optional[TThread]":
        """The unique RUNNING thread, if any."""
        running = self.threads_in_state(ThreadState.RUNNING)
        if not running:
            return None
        if len(running) > 1:
            raise RuntimeError(
                "invariant violated: more than one T-THREAD is RUNNING: "
                + ", ".join(t.name for t in running)
            )
        return running[0]

    def __repr__(self) -> str:
        return f"SimHashTB({len(self._by_id)} threads, {len(self.journal)} state changes)"
