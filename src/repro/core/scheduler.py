"""External schedulers for the SIM_API library.

Section 4: the library *"interacts directly with external schedulers to
schedule the next T-THREAD to run"*.  The scheduler only manages the pool of
*ready* threads — the running thread is held by :class:`~repro.core.simapi.SimApi`
and is re-inserted into the pool when it is preempted or yields.

Two reference schedulers are provided, matching the two user-defined kernels
the paper built to validate SIM_API coverage:

* :class:`RoundRobinScheduler` — RTK-Spec I,
* :class:`PriorityScheduler` — RTK-Spec II and RTK-Spec TRON
  (priority-based preemptive, FIFO within a priority level, which is the
  μ-ITRON/T-Kernel rule).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tthread import TThread


class Scheduler(abc.ABC):
    """Interface the SIM_API library expects from an external scheduler."""

    @abc.abstractmethod
    def add_ready(self, thread: "TThread") -> None:
        """Insert *thread* into the ready pool."""

    @abc.abstractmethod
    def remove(self, thread: "TThread") -> None:
        """Remove *thread* from the ready pool if present."""

    @abc.abstractmethod
    def select_next(self) -> "Optional[TThread]":
        """Return the thread that should run next without removing it."""

    @abc.abstractmethod
    def pop_next(self) -> "Optional[TThread]":
        """Remove and return the thread that should run next."""

    @abc.abstractmethod
    def ready_threads(self) -> "List[TThread]":
        """All ready threads in scheduling order."""

    def should_preempt(self, current: "Optional[TThread]", candidate: "TThread") -> bool:
        """Whether *candidate* becoming ready should preempt *current*."""
        return current is None

    def __contains__(self, thread: "TThread") -> bool:
        return thread in self.ready_threads()

    def __len__(self) -> int:
        return len(self.ready_threads())


class RoundRobinScheduler(Scheduler):
    """FIFO scheduler with explicit rotation (RTK-Spec I).

    Threads never preempt each other on readiness; the kernel rotates the
    queue on every time slice by re-inserting the running thread at the tail
    and popping the head.
    """

    def __init__(self):
        self._queue: "Deque[TThread]" = deque()

    def add_ready(self, thread: "TThread") -> None:
        if thread not in self._queue:
            self._queue.append(thread)

    def remove(self, thread: "TThread") -> None:
        try:
            self._queue.remove(thread)
        except ValueError:
            pass

    def select_next(self) -> "Optional[TThread]":
        return self._queue[0] if self._queue else None

    def pop_next(self) -> "Optional[TThread]":
        return self._queue.popleft() if self._queue else None

    def ready_threads(self) -> "List[TThread]":
        return list(self._queue)

    def should_preempt(self, current: "Optional[TThread]", candidate: "TThread") -> bool:
        # Round robin never preempts on readiness; only the time slice rotates.
        return current is None

    def __repr__(self) -> str:
        return f"RoundRobinScheduler(ready={len(self._queue)})"


class PriorityScheduler(Scheduler):
    """Priority-based preemptive scheduler (RTK-Spec II / RTK-Spec TRON).

    Lower numeric priority means higher urgency (μ-ITRON convention, priority
    1 is the highest).  Threads of equal priority are served FIFO.
    """

    def __init__(self, priority_levels: int = 256):
        if priority_levels <= 0:
            raise ValueError("priority_levels must be positive")
        self.priority_levels = priority_levels
        self._queues: "Dict[int, Deque[TThread]]" = {}

    def _queue_for(self, priority: int) -> "Deque[TThread]":
        if not 0 <= priority < self.priority_levels:
            raise ValueError(
                f"priority {priority} outside the supported range "
                f"[0, {self.priority_levels})"
            )
        return self._queues.setdefault(priority, deque())

    def add_ready(self, thread: "TThread") -> None:
        queue = self._queue_for(thread.priority)
        if thread not in queue:
            queue.append(thread)

    def add_ready_first(self, thread: "TThread") -> None:
        """Insert at the head of its priority level.

        Used when a preempted task must keep its position at the head of the
        ready queue of its priority (μ-ITRON dispatching rule).
        """
        queue = self._queue_for(thread.priority)
        if thread not in queue:
            queue.appendleft(thread)

    def remove(self, thread: "TThread") -> None:
        for queue in self._queues.values():
            try:
                queue.remove(thread)
                return
            except ValueError:
                continue

    def select_next(self) -> "Optional[TThread]":
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            if queue:
                return queue[0]
        return None

    def pop_next(self) -> "Optional[TThread]":
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            if queue:
                return queue.popleft()
        return None

    def ready_threads(self) -> "List[TThread]":
        threads: "List[TThread]" = []
        for priority in sorted(self._queues):
            threads.extend(self._queues[priority])
        return threads

    def should_preempt(self, current: "Optional[TThread]", candidate: "TThread") -> bool:
        if current is None:
            return True
        return candidate.priority < current.priority

    def requeue_for_priority_change(self, thread: "TThread", new_priority: int) -> None:
        """Move a ready thread to the tail of a new priority level."""
        self.remove(thread)
        previous = thread.priority
        thread.priority = new_priority
        try:
            self.add_ready(thread)
        except ValueError:
            thread.priority = previous
            self.add_ready(thread)
            raise

    def __repr__(self) -> str:
        ready = sum(len(q) for q in self._queues.values())
        return f"PriorityScheduler(ready={ready})"
