"""External schedulers for the SIM_API library.

Section 4: the library *"interacts directly with external schedulers to
schedule the next T-THREAD to run"*.  The scheduler only manages the pool of
*ready* threads — the running thread is held by :class:`~repro.core.simapi.SimApi`
and is re-inserted into the pool when it is preempted or yields.

Two reference schedulers are provided, matching the two user-defined kernels
the paper built to validate SIM_API coverage:

* :class:`RoundRobinScheduler` — RTK-Spec I,
* :class:`PriorityScheduler` — RTK-Spec II and RTK-Spec TRON
  (priority-based preemptive, FIFO within a priority level, which is the
  μ-ITRON/T-Kernel rule).

Fast-core contract (PR 3)
-------------------------

:class:`PriorityScheduler` is the dispatch hot path of every kernel model,
so it follows the classic ITRON ready-queue design instead of scanning a
sorted priority map:

* a **ready bitmap** — bit *p* is set exactly while priority level *p* has
  at least one ready thread; the most urgent level (lowest numeric priority)
  is the lowest set bit, found in O(1) with ``(bitmap & -bitmap).bit_length()``,
* **per-level deques** preserving FIFO order within a level (appendleft
  implements the μ-ITRON "preempted task keeps the head" rule),
* a **thread → level map** making ``remove``/``__contains__``/``__len__``
  O(1) — ``remove`` no longer walks every queue, and the map also remembers
  *which* level a thread was enqueued at, so a priority change between
  enqueue and removal cannot strand it.

The observable contract (FIFO fairness within a level, head insertion,
priority-ascending pop order, idempotent ``add_ready``) is pinned by
``tests/core/test_scheduler_invariants.py``, written against the original
implementation.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Dict, List, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tthread import TThread


class Scheduler(abc.ABC):
    """Interface the SIM_API library expects from an external scheduler."""

    @abc.abstractmethod
    def add_ready(self, thread: "TThread") -> None:
        """Insert *thread* into the ready pool."""

    @abc.abstractmethod
    def remove(self, thread: "TThread") -> None:
        """Remove *thread* from the ready pool if present."""

    @abc.abstractmethod
    def select_next(self) -> "Optional[TThread]":
        """Return the thread that should run next without removing it."""

    @abc.abstractmethod
    def pop_next(self) -> "Optional[TThread]":
        """Remove and return the thread that should run next."""

    @abc.abstractmethod
    def ready_threads(self) -> "List[TThread]":
        """All ready threads in scheduling order."""

    def should_preempt(self, current: "Optional[TThread]", candidate: "TThread") -> bool:
        """Whether *candidate* becoming ready should preempt *current*."""
        return current is None

    def __contains__(self, thread: "TThread") -> bool:
        return thread in self.ready_threads()

    def __len__(self) -> int:
        return len(self.ready_threads())


class RoundRobinScheduler(Scheduler):
    """FIFO scheduler with explicit rotation (RTK-Spec I).

    Threads never preempt each other on readiness; the kernel rotates the
    queue on every time slice by re-inserting the running thread at the tail
    and popping the head.  A membership set backs ``add_ready``'s dedup and
    ``__contains__`` so neither scans the queue.
    """

    def __init__(self):
        self._queue: "Deque[TThread]" = deque()
        self._members: "Set[TThread]" = set()

    def add_ready(self, thread: "TThread") -> None:
        if thread not in self._members:
            self._members.add(thread)
            self._queue.append(thread)

    def remove(self, thread: "TThread") -> None:
        if thread in self._members:
            self._members.discard(thread)
            self._queue.remove(thread)

    def select_next(self) -> "Optional[TThread]":
        return self._queue[0] if self._queue else None

    def pop_next(self) -> "Optional[TThread]":
        if not self._queue:
            return None
        thread = self._queue.popleft()
        self._members.discard(thread)
        return thread

    def ready_threads(self) -> "List[TThread]":
        return list(self._queue)

    def should_preempt(self, current: "Optional[TThread]", candidate: "TThread") -> bool:
        # Round robin never preempts on readiness; only the time slice rotates.
        return current is None

    def __contains__(self, thread: "TThread") -> bool:
        return thread in self._members

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"RoundRobinScheduler(ready={len(self._queue)})"


class PriorityScheduler(Scheduler):
    """Priority-based preemptive scheduler (RTK-Spec II / RTK-Spec TRON).

    Lower numeric priority means higher urgency (μ-ITRON convention, priority
    1 is the highest).  Threads of equal priority are served FIFO.  See the
    module docstring for the O(1) bitmap/deque/level-map layout.
    """

    def __init__(self, priority_levels: int = 256):
        if priority_levels <= 0:
            raise ValueError("priority_levels must be positive")
        self.priority_levels = priority_levels
        # Bit p set <=> level p non-empty.  Level deques are created lazily
        # and kept for reuse (a kernel touches a handful of levels).
        self._ready_bitmap = 0
        self._queues: "Dict[int, Deque[TThread]]" = {}
        self._level_of: "Dict[TThread, int]" = {}

    def _queue_for(self, priority: int) -> "Deque[TThread]":
        if not 0 <= priority < self.priority_levels:
            raise ValueError(
                f"priority {priority} outside the supported range "
                f"[0, {self.priority_levels})"
            )
        queue = self._queues.get(priority)
        if queue is None:
            self._queues[priority] = queue = deque()
        return queue

    def add_ready(self, thread: "TThread") -> None:
        if thread in self._level_of:
            return
        priority = thread.priority
        self._queue_for(priority).append(thread)
        self._level_of[thread] = priority
        self._ready_bitmap |= 1 << priority

    def add_ready_first(self, thread: "TThread") -> None:
        """Insert at the head of its priority level.

        Used when a preempted task must keep its position at the head of the
        ready queue of its priority (μ-ITRON dispatching rule).
        """
        if thread in self._level_of:
            return
        priority = thread.priority
        self._queue_for(priority).appendleft(thread)
        self._level_of[thread] = priority
        self._ready_bitmap |= 1 << priority

    def remove(self, thread: "TThread") -> None:
        level = self._level_of.pop(thread, None)
        if level is None:
            return
        queue = self._queues[level]
        queue.remove(thread)
        if not queue:
            self._ready_bitmap &= ~(1 << level)

    def select_next(self) -> "Optional[TThread]":
        bitmap = self._ready_bitmap
        if not bitmap:
            return None
        # Lowest set bit == most urgent non-empty level.
        return self._queues[(bitmap & -bitmap).bit_length() - 1][0]

    def pop_next(self) -> "Optional[TThread]":
        bitmap = self._ready_bitmap
        if not bitmap:
            return None
        level = (bitmap & -bitmap).bit_length() - 1
        queue = self._queues[level]
        thread = queue.popleft()
        del self._level_of[thread]
        if not queue:
            self._ready_bitmap = bitmap & ~(1 << level)
        return thread

    def ready_threads(self) -> "List[TThread]":
        threads: "List[TThread]" = []
        bitmap = self._ready_bitmap
        while bitmap:
            level_bit = bitmap & -bitmap
            threads.extend(self._queues[level_bit.bit_length() - 1])
            bitmap ^= level_bit
        return threads

    def should_preempt(self, current: "Optional[TThread]", candidate: "TThread") -> bool:
        if current is None:
            return True
        return candidate.priority < current.priority

    def requeue_for_priority_change(self, thread: "TThread", new_priority: int) -> None:
        """Move a ready thread to the tail of a new priority level."""
        if not 0 <= new_priority < self.priority_levels:
            raise ValueError(
                f"priority {new_priority} outside the supported range "
                f"[0, {self.priority_levels})"
            )
        self.remove(thread)
        thread.priority = new_priority
        self.add_ready(thread)

    def __contains__(self, thread: "TThread") -> bool:
        return thread in self._level_of

    def __len__(self) -> int:
        return len(self._level_of)

    def __repr__(self) -> str:
        return f"PriorityScheduler(ready={len(self._level_of)})"
