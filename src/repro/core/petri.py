"""Synchronized Petri-net bookkeeping for the T-THREAD model.

Fig. 2 of the paper describes a T-THREAD as *"a cyclic object of atomic
transitions T with a single token K marking the state of the T-THREAD"*.
Transitions fire on kernel events, a firing sequence ``S`` carries an
execution-time and execution-energy model, and a characteristic vector
``S̄`` counts how often each transition fired.  Consumed execution time (CET)
and energy (CEE) are the accumulation of ETM/EEM over the simulation cycles.

This module keeps that accounting explicit and testable:

* :class:`Transition` — a named transition with the run event that fires it
  and the execution context it belongs to,
* :class:`FiringRecord` — one firing (time stamp, transition, duration,
  energy),
* :class:`FiringSequence` — an ordered list of firings with its
  characteristic vector and ETM/EEM sums,
* :class:`PetriToken` — the single token of a T-THREAD: its current place,
  the firing history and the CET/CEE accumulators.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.events import ExecutionContext, RunEvent
from repro.sysc.time import SimTime, ZERO_TIME


@dataclass(frozen=True)
class Transition:
    """An atomic transition of the T-THREAD Petri net."""

    name: str
    event: RunEvent
    context: ExecutionContext

    def __str__(self) -> str:
        return f"{self.name}({self.event.symbol}|{self.context.value})"


#: The source transition ``To`` associated with the startup event ``Es``.
SOURCE_TRANSITION = Transition("To", RunEvent.STARTUP, ExecutionContext.STARTUP)


class FiringRecord:
    """One transition firing with its ETM/EEM contribution.

    A hand-slotted record rather than a frozen dataclass: one is built per
    transition firing, which puts its constructor on the dispatch hot path,
    and the frozen-dataclass ``object.__setattr__`` init showed up in
    ping-pong profiles.
    """

    __slots__ = ("time", "transition", "duration", "energy_nj", "place")

    def __init__(
        self,
        time: SimTime,
        transition: Transition,
        duration: SimTime,
        energy_nj: float,
        place: int,
    ):
        self.time = time
        self.transition = transition
        self.duration = duration
        self.energy_nj = energy_nj
        self.place = place

    @property
    def event(self) -> RunEvent:
        """The run event that fired the transition."""
        return self.transition.event

    @property
    def context(self) -> ExecutionContext:
        """The execution context of the transition."""
        return self.transition.context

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiringRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.transition == other.transition
            and self.duration == other.duration
            and self.energy_nj == other.energy_nj
            and self.place == other.place
        )

    def __repr__(self) -> str:
        return (
            f"FiringRecord(time={self.time!r}, transition={self.transition!r}, "
            f"duration={self.duration!r}, energy_nj={self.energy_nj!r}, "
            f"place={self.place!r})"
        )


class FiringSequence:
    """An ordered sequence of transition firings.

    The paper's ``S`` with its characteristic vector ``S̄`` (how many times
    each transition fired) and the associated ETM/EEM sums.
    """

    def __init__(self, records: Optional[List[FiringRecord]] = None):
        self._records: List[FiringRecord] = list(records or [])

    def append(self, record: FiringRecord) -> None:
        """Add a firing to the sequence."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FiringRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> FiringRecord:
        return self._records[index]

    @property
    def characteristic_vector(self) -> Dict[str, int]:
        """Number of firings per transition name (the paper's S̄)."""
        return dict(Counter(record.transition.name for record in self._records))

    @property
    def event_vector(self) -> Dict[str, int]:
        """Number of firings per run-event symbol."""
        return dict(Counter(record.event.symbol for record in self._records))

    @property
    def context_vector(self) -> Dict[str, int]:
        """Number of firings per execution context."""
        return dict(Counter(record.context.value for record in self._records))

    def execution_time(self) -> SimTime:
        """ETM(S): total execution time carried by the sequence."""
        total = SimTime(0)
        for record in self._records:
            total = total + record.duration
        return total

    def execution_energy(self) -> float:
        """EEM(S): total execution energy (nJ) carried by the sequence."""
        return sum(record.energy_nj for record in self._records)

    def restricted_to(self, context: ExecutionContext) -> "FiringSequence":
        """The sub-sequence of firings that executed in *context*."""
        return FiringSequence([r for r in self._records if r.context is context])

    def between(self, start: "SimTime | int", stop: "SimTime | int") -> "FiringSequence":
        """The sub-sequence of firings in the half-open window [start, stop)."""
        start = SimTime.coerce(start)
        stop = SimTime.coerce(stop)
        return FiringSequence([r for r in self._records if start <= r.time < stop])

    def __repr__(self) -> str:
        return f"FiringSequence({len(self._records)} firings)"


class PetriToken:
    """The single token ``K`` marking a T-THREAD's state.

    The token moves from place to place as transitions fire; it gathers
    execution time/energy statistics as it propagates (paper, section 4:
    "a token gathers execution time/energy statistics as it propagates
    through different T-THREADs").
    """

    def __init__(self, owner_name: str):
        self.owner_name = owner_name
        self.place = 0
        self.firing_sequence = FiringSequence()
        self._cet = ZERO_TIME
        self._cee_nj = 0.0
        self._cet_by_context: Dict[ExecutionContext, SimTime] = {}
        self._cee_by_context: Dict[ExecutionContext, float] = {}
        self.cycle_count = 0
        # Bound once: fire() appends a record per dispatch, and the
        # FiringSequence.append indirection is measurable there.
        self._append_record = self.firing_sequence._records.append

    # -- firing ------------------------------------------------------------
    def fire(
        self,
        transition: Transition,
        now: SimTime,
        duration: "SimTime | int" = ZERO_TIME,
        energy_nj: float = 0.0,
    ) -> FiringRecord:
        """Fire *transition*, move the token and accumulate ETM/EEM."""
        place = self.place + 1
        self.place = place
        context = transition.context
        cet_by_context = self._cet_by_context
        if duration is ZERO_TIME and energy_nj == 0.0:
            # Zero-cost firing (the dispatch bookkeeping common case): the
            # accumulators are unchanged, only the context entries must
            # exist.  Skips SimTime coercion and three SimTime additions.
            record = FiringRecord(now, transition, ZERO_TIME, 0.0, place)
            self._append_record(record)
            if context not in cet_by_context:
                cet_by_context[context] = ZERO_TIME
                self._cee_by_context[context] = 0.0
            return record
        duration = SimTime.coerce(duration)
        record = FiringRecord(now, transition, duration, energy_nj, place)
        self._append_record(record)
        self._cet = self._cet + duration
        self._cee_nj += energy_nj
        cet_by_context[context] = (
            cet_by_context.get(context, ZERO_TIME) + duration
        )
        self._cee_by_context[context] = self._cee_by_context.get(context, 0.0) + energy_nj
        return record

    def complete_cycle(self) -> None:
        """Mark the completion of one cyclic execution of the T-THREAD."""
        self.cycle_count += 1

    # -- accumulated statistics ----------------------------------------------
    @property
    def consumed_execution_time(self) -> SimTime:
        """CET(S | T-THREAD): accumulated execution time."""
        return self._cet

    @property
    def consumed_execution_energy_nj(self) -> float:
        """CEE(S | T-THREAD): accumulated execution energy in nanojoules."""
        return self._cee_nj

    @property
    def consumed_execution_energy_mj(self) -> float:
        """CEE in millijoules (the unit used by the battery widget)."""
        return self._cee_nj * 1e-6

    def cet_by_context(self) -> Dict[ExecutionContext, SimTime]:
        """CET broken down per execution context."""
        return dict(self._cet_by_context)

    def cee_by_context(self) -> Dict[ExecutionContext, float]:
        """CEE (nJ) broken down per execution context."""
        return dict(self._cee_by_context)

    def marking(self) -> int:
        """The current marking (place index reached by the token)."""
        return self.place

    def __repr__(self) -> str:
        return (
            f"PetriToken({self.owner_name!r}, place={self.place}, "
            f"CET={self._cet.format()}, CEE={self._cee_nj:.1f} nJ)"
        )
