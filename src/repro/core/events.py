"""Run events, execution contexts and thread states of the T-THREAD model.

Fig. 2 of the paper defines the set of kernel-specific events that can fire a
T-THREAD transition::

    E = {Es, Ec, Ex, Ei, Ew}

* ``Es`` — startup event after kernel initialization (source transition),
* ``Ec`` — continue-run event (normal SC_THREAD-like progress),
* ``Ex`` — return from preemption,
* ``Ei`` — return from interrupt,
* ``Ew`` — arrival of a sleep event the thread voluntarily waited for.

Transitions are mapped to events based on the *context* in which the
T-THREAD is executing: at startup, within a service call, an application
task, a handler, or a hardware (BFM) access.  :class:`ExecutionContext`
enumerates those contexts; they are also the categories used by the Fig. 6
trace widget ("different contexts of execution are assigned different
patterns").
"""

from __future__ import annotations

import enum


class RunEvent(enum.Enum):
    """Kernel-specific events that fire T-THREAD transitions (Fig. 2)."""

    STARTUP = "Es"
    CONTINUE = "Ec"
    RETURN_FROM_PREEMPTION = "Ex"
    RETURN_FROM_INTERRUPT = "Ei"
    SLEEP_ARRIVAL = "Ew"

    @property
    def symbol(self) -> str:
        """The paper's symbol for the event (``Es`` ... ``Ew``)."""
        return self.value


class ExecutionContext(enum.Enum):
    """Context in which a T-THREAD transition executes."""

    STARTUP = "startup"
    SERVICE_CALL = "service_call"
    TASK = "task"
    HANDLER = "handler"
    BFM_ACCESS = "bfm_access"
    IDLE = "idle"


class ThreadKind(enum.Enum):
    """What a T-THREAD wraps: an application task or a handler."""

    TASK = "task"
    CYCLIC_HANDLER = "cyclic_handler"
    ALARM_HANDLER = "alarm_handler"
    INTERRUPT_HANDLER = "interrupt_handler"
    INITIAL_TASK = "initial_task"

    @property
    def is_handler(self) -> bool:
        """Whether this kind is any sort of handler."""
        return self is not ThreadKind.TASK and self is not ThreadKind.INITIAL_TASK


class ThreadState(enum.Enum):
    """State of a T-THREAD as recorded in ``SIM_HashTB``.

    These are the simulation-library states (the kernel model on top keeps
    its own μ-ITRON task states such as ``TTS_RDY``/``TTS_WAI``).
    """

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    PREEMPTED = "preempted"
    INTERRUPTED = "interrupted"
    SLEEPING = "sleeping"
    DORMANT = "dormant"
    FINISHED = "finished"

    @property
    def occupies_cpu(self) -> bool:
        """Whether a thread in this state is the one consuming CPU time."""
        return self is ThreadState.RUNNING
