"""SIM_Stack — the nested-interrupt stack of the SIM_API library.

Section 4 of the paper: *"... a stack (SIM_Stack) data structure to model
nested interrupts."*  Every time an interrupt (or a nested interrupt)
preempts the current context, a frame describing the suspended context is
pushed; returning from the handler pops it.  The stack depth therefore equals
the current interrupt nesting level, which is what the *delayed dispatching*
rule consults: a preemption decided while the stack is non-empty is deferred
until the stack drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, TypeVar

from repro.sysc.time import SimTime

T = TypeVar("T")


@dataclass(frozen=True)
class StackFrame(Generic[T]):
    """One suspended context (the interrupted T-THREAD, or None for idle)."""

    interrupted: Optional[T]
    handler: T
    time: SimTime
    level: int


class SimStack(Generic[T]):
    """A stack of interrupted contexts modelling interrupt nesting."""

    def __init__(self, max_depth: Optional[int] = None):
        self._frames: List[StackFrame[T]] = []
        self.max_depth = max_depth
        self.max_observed_depth = 0
        self.push_count = 0

    # -- stack operations -----------------------------------------------------
    def push(self, interrupted: Optional[T], handler: T, now: SimTime) -> StackFrame[T]:
        """Push the context suspended by *handler*."""
        if self.max_depth is not None and len(self._frames) >= self.max_depth:
            raise OverflowError(
                f"interrupt nesting exceeds the maximum depth of {self.max_depth}"
            )
        frame = StackFrame(interrupted, handler, now, len(self._frames) + 1)
        self._frames.append(frame)
        self.push_count += 1
        self.max_observed_depth = max(self.max_observed_depth, len(self._frames))
        return frame

    def pop(self) -> StackFrame[T]:
        """Pop the most recent frame (return from the current handler)."""
        if not self._frames:
            raise IndexError("SIM_Stack underflow: no interrupt context to return from")
        return self._frames.pop()

    def peek(self) -> StackFrame[T]:
        """The top frame without popping it."""
        if not self._frames:
            raise IndexError("SIM_Stack is empty")
        return self._frames[-1]

    # -- queries ----------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current interrupt nesting level."""
        return len(self._frames)

    def is_empty(self) -> bool:
        """Whether no interrupt is being serviced."""
        return not self._frames

    def in_interrupt(self) -> bool:
        """Whether at least one interrupt handler is active."""
        return bool(self._frames)

    def current_handler(self) -> Optional[T]:
        """The handler currently executing, if any."""
        return self._frames[-1].handler if self._frames else None

    def frames(self) -> List[StackFrame[T]]:
        """A copy of the frames from outermost to innermost."""
        return list(self._frames)

    def __len__(self) -> int:
        return len(self._frames)

    def __bool__(self) -> bool:
        return bool(self._frames)

    def __repr__(self) -> str:
        return f"SimStack(depth={len(self._frames)}, max_observed={self.max_observed_depth})"
