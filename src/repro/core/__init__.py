"""The paper's primary contribution: T-THREAD processes and the SIM_API library.

The modules here re-create, on top of :mod:`repro.sysc`, the RTOS modeling
constructs of the DATE'05 paper:

* :mod:`repro.core.events` — the kernel-specific run events
  ``{Es, Ec, Ex, Ei, Ew}`` and execution contexts of Fig. 2,
* :mod:`repro.core.etm` — execution-time (ETM) and execution-energy (EEM)
  models and annotation tables,
* :mod:`repro.core.petri` — the synchronized-Petri-net bookkeeping (token,
  transitions, firing sequences, characteristic vectors),
* :mod:`repro.core.tthread` — the T-THREAD controllable process model,
* :mod:`repro.core.hashtb` / :mod:`repro.core.stack` — ``SIM_HashTB`` and
  ``SIM_Stack``,
* :mod:`repro.core.simapi` — the SIM_API library itself (Table 1),
* :mod:`repro.core.gantt` — the time/energy Gantt chart debugging output,
* :mod:`repro.core.scheduler` — the external-scheduler interface plus the
  round-robin and priority-preemptive reference schedulers used by
  RTK-Spec I and II.
"""

from repro.core.events import ExecutionContext, RunEvent, ThreadKind, ThreadState
from repro.core.etm import (
    AnnotationTable,
    EnergyModel,
    TimingAnnotation,
    TimingModel,
)
from repro.core.petri import FiringRecord, FiringSequence, PetriToken, Transition
from repro.core.tthread import TThread
from repro.core.hashtb import SimHashTB
from repro.core.stack import SimStack
from repro.core.simapi import SimApi, SimApiError
from repro.core.gantt import GanttChart, GanttSegment
from repro.core.scheduler import (
    PriorityScheduler,
    RoundRobinScheduler,
    Scheduler,
)

__all__ = [
    "ExecutionContext",
    "RunEvent",
    "ThreadKind",
    "ThreadState",
    "AnnotationTable",
    "EnergyModel",
    "TimingAnnotation",
    "TimingModel",
    "FiringRecord",
    "FiringSequence",
    "PetriToken",
    "Transition",
    "TThread",
    "SimHashTB",
    "SimStack",
    "SimApi",
    "SimApiError",
    "GanttChart",
    "GanttSegment",
    "Scheduler",
    "RoundRobinScheduler",
    "PriorityScheduler",
]
