"""SIM_API — the RTOS modeling library (Table 1, Fig. 3).

The SIM_API library supervises every T-THREAD.  It owns the single simulated
CPU: exactly one T-THREAD holds the CPU at any simulated instant, all others
are suspended on their run events.  Kernel simulation models (RTK-Spec TRON,
RTK-Spec I/II) use the library's programming constructs to express their
dynamics:

===============================  =================================================
Construct                        Purpose
===============================  =================================================
``create_thread``                create a T-THREAD for a task or handler
``start_thread``                 make a task ready and dispatch if appropriate
``sim_wait``                     annotated execution time/energy with preemption
                                 points at system-clock granularity (SIM_Wait)
``sim_wait_key``                 like ``sim_wait`` but takes an annotation key
``preemption_point``             an explicit zero-cost preemption point
``block_current``                the running thread sleeps waiting for an event
``wakeup``                       make a sleeping thread ready again and reschedule
``make_ready`` / ``make_unready``  ready-pool management for the external scheduler
``request_dispatch``             evaluate the scheduler; preempt if required
``preempt_current``              force a rotation (round-robin time slice)
``notify_interrupt``             an external interrupt requests its handler
``activate_handler``             a cyclic/alarm handler is activated by the timer
``dispatch_disable`` / ``dispatch_enable``  service-call atomicity & delayed dispatch
``energy_statistics``            per-thread CET/CEE summary
``gantt``                        the recorded time/energy Gantt chart
``hashtb``                       the SIM_HashTB thread registry
``stack``                        the SIM_Stack interrupt-nesting stack
===============================  =================================================

Dispatching rules implemented here (section 4 of the paper):

* **Preemption with system-clock granularity** — a preemption or interruption
  decision marks the running T-THREAD; the thread suspends at its next
  preemption point inside ``sim_wait``.
* **Delayed dispatching** — a preemption that takes place within an interrupt
  handler (or nested handler) is postponed until the handler returns.
* **Service-call atomicity** — while dispatching is disabled (service call in
  progress) preemption points do not suspend the thread.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Generator, List, Optional

from repro.core.etm import (
    AnnotationTable,
    EnergyModel,
    TimingAnnotation,
    TimingModel,
    default_service_call_annotations,
)
from repro.core.events import ExecutionContext, RunEvent, ThreadKind, ThreadState
from repro.core.gantt import GanttChart
from repro.core.hashtb import SimHashTB
from repro.core.petri import Transition
from repro.core.scheduler import PriorityScheduler, Scheduler
from repro.core.stack import SimStack
from repro.core.tthread import BodyFactory, TThread
from repro.sysc.process import Wait
from repro.sysc.time import SimTime

if TYPE_CHECKING:
    # Annotation-only: a runtime import here closes the kernel → obs →
    # core → simapi → kernel cycle and makes `import repro.sysc.kernel`
    # order-dependent.
    from repro.sysc.kernel import Simulator


class SimApiError(RuntimeError):
    """Raised when the SIM_API library is used inconsistently."""


#: Field names of the ``sched``/``exec`` publish site, paired positionally
#: with the values tuple handed to ``Topic.emit_fields``.
_EXEC_FIELDS = ("thread", "dur_ns", "context", "energy_nj", "label")


class SimApi:
    """The SIM_API simulation library instance for one simulated platform."""

    def __init__(
        self,
        simulator: Simulator,
        scheduler: Optional[Scheduler] = None,
        system_tick: "SimTime | int" = SimTime.ms(1),
        timing_model: Optional[TimingModel] = None,
        energy_model: Optional[EnergyModel] = None,
        annotations: Optional[AnnotationTable] = None,
        max_interrupt_nesting: Optional[int] = 16,
        record_gantt: bool = True,
    ):
        self.simulator = simulator
        # Note: schedulers and annotation tables define __len__, so an empty
        # one is falsy; compare against None explicitly.
        self.scheduler: Scheduler = scheduler if scheduler is not None else PriorityScheduler()
        # The scheduler is fixed for the library's lifetime, so head-insert
        # support is resolved once here instead of via hasattr per make_ready.
        self._add_ready_first = getattr(self.scheduler, "add_ready_first", None)
        self.system_tick = SimTime.coerce(system_tick)
        if self.system_tick.nanoseconds <= 0:
            raise SimApiError("system tick must be positive")
        # Int-ns tick plus a reusable full-tick Wait: the SIM_Wait chunk loop
        # allocates nothing for the (dominant) whole-tick chunks.
        self._system_tick_ns = self.system_tick.nanoseconds
        self._tick_wait = Wait(self.system_tick)
        # Shared frozen Transition per (label, context): sim_wait fires one
        # per chunk and the instances are value-identical, so cache them.
        self._transition_cache: Dict[object, Transition] = {}
        self.timing_model = timing_model if timing_model is not None else TimingModel()
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.annotations = (
            annotations if annotations is not None else default_service_call_annotations()
        )

        self.hashtb = SimHashTB()
        self.stack: SimStack[TThread] = SimStack(max_depth=max_interrupt_nesting)

        # Scheduling history flows over the observability bus; the Gantt
        # chart is just the default sink on the `sched` topic.  Detach it
        # (detach_gantt) for bounded-memory runs — the integer counters
        # below keep counting either way, without per-event records.
        self.obs = simulator.obs
        self._obs_sched = self.obs.topic("sched")
        self._obs_irq = self.obs.topic("irq")
        self.gantt = GanttChart()
        if record_gantt:
            self.obs.subscribe(self.gantt, ("sched",))
        self.marker_count = 0
        self.segment_count = 0

        #: The T-THREAD currently holding the CPU (task or handler).
        self.running: Optional[TThread] = None
        self._pending_handlers: Deque[TThread] = deque()
        self._dispatch_disable_count = 0
        self._deferred_dispatch = False
        self._next_tid = 1

        # Idle-time accounting for the energy distribution widget
        # (integer nanoseconds; SimTime only at the cpu_idle_time boundary).
        self._idle_since_ns: Optional[int] = 0
        self._idle_total_ns = 0

        # Statistics counters surfaced by the benchmarks.
        self.dispatch_count = 0
        self.preemption_count = 0
        self.interrupt_count = 0
        self.sim_wait_count = 0

        # Observers notified on every dispatch (used by debugging widgets).
        self.dispatch_observers: List[Callable[[TThread], None]] = []

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def detach_gantt(self) -> None:
        """Stop accumulating Gantt history (bounded-memory campaign runs).

        Scheduling events still flow to any other ``sched`` sinks, and the
        ``marker_count``/``segment_count`` totals keep counting for free.
        """
        self.obs.unsubscribe(self.gantt)

    def _emit_marker(self, kind: str, thread_name: str) -> None:
        """Count a scheduling point event and publish it if anyone listens."""
        self.marker_count += 1
        topic = self._obs_sched
        if topic.enabled:
            topic.emit1(kind, self.simulator._now_ns, "thread", thread_name)

    # ------------------------------------------------------------------
    # Thread creation & identifiers
    # ------------------------------------------------------------------
    def allocate_tid(self) -> int:
        """Allocate a fresh T-THREAD identifier."""
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def create_thread(
        self,
        name: str,
        factory: BodyFactory,
        priority: int = 128,
        kind: ThreadKind = ThreadKind.TASK,
    ) -> TThread:
        """Create and register a T-THREAD (it starts dormant)."""
        thread = TThread(self, name, factory, priority=priority, kind=kind)
        thread.set_state(ThreadState.DORMANT)
        return thread

    def remove_thread(self, thread: TThread) -> None:
        """Forget a T-THREAD (task deletion)."""
        self.scheduler.remove(thread)
        self.hashtb.unregister(thread)

    # ------------------------------------------------------------------
    # Ready-pool management
    # ------------------------------------------------------------------
    def make_ready(self, thread: TThread, at_head: bool = False) -> None:
        """Insert a task T-THREAD into the scheduler's ready pool."""
        if thread.is_handler:
            raise SimApiError("handlers are activated, not made ready")
        if at_head and self._add_ready_first is not None:
            self._add_ready_first(thread)
        else:
            self.scheduler.add_ready(thread)
        if thread.state is not ThreadState.RUNNING:
            thread.set_state(ThreadState.READY)

    def make_unready(self, thread: TThread) -> None:
        """Remove a task from the ready pool (it is waiting or dormant)."""
        self.scheduler.remove(thread)

    def start_thread(self, thread: TThread) -> None:
        """Start a task T-THREAD: make it ready and reschedule."""
        self.make_ready(thread)
        self.request_dispatch()

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def dispatch_disable(self) -> None:
        """Disable dispatching (service-call atomicity)."""
        self._dispatch_disable_count += 1

    def dispatch_enable(self) -> None:
        """Re-enable dispatching; apply any deferred dispatch decision."""
        if self._dispatch_disable_count == 0:
            raise SimApiError("dispatch_enable without matching dispatch_disable")
        self._dispatch_disable_count -= 1
        if self._dispatch_disable_count == 0:
            self._apply_deferred_dispatch()

    @property
    def dispatch_enabled(self) -> bool:
        """Whether dispatching is currently allowed."""
        return self._dispatch_disable_count == 0

    def in_interrupt(self) -> bool:
        """Whether an interrupt/handler context is active or pending."""
        return self.stack.in_interrupt() or bool(self._pending_handlers)

    def request_dispatch(self) -> None:
        """Evaluate the scheduler and dispatch/preempt as required.

        Honours delayed dispatching and service-call atomicity: the decision
        is deferred while a handler is active or dispatching is disabled.
        """
        if self._dispatch_disable_count or self.in_interrupt():
            self._deferred_dispatch = True
            return
        scheduler = self.scheduler
        running = self.running
        if running is None:
            # Idle CPU: a single pop both selects and claims the winner —
            # the select_next + pop_next double scan was pure overhead here.
            chosen = scheduler.pop_next()
            if chosen is not None:
                self._grant(chosen)
            return
        candidate = scheduler.select_next()
        if candidate is not None and scheduler.should_preempt(running, candidate):
            running.preempt_requested = True

    def preempt_current(self) -> None:
        """Force the running task to be preempted at its next preemption point.

        Used by round-robin kernels to rotate the time slice and by
        priority kernels when the running task's priority is lowered.
        """
        if self.running is None:
            self.request_dispatch()
            return
        if self.scheduler.select_next() is None:
            return
        self.running.preempt_requested = True

    def _apply_deferred_dispatch(self) -> None:
        if not self._deferred_dispatch:
            return
        if not self.dispatch_enabled or self.in_interrupt():
            return
        self._deferred_dispatch = False
        self.request_dispatch()

    def _grant(self, thread: TThread) -> None:
        """Give the CPU to *thread* (the only way a T-THREAD gets to run)."""
        resume_event = self._resume_event_for(thread)
        if self.running is not None and self.running is not thread:
            # The previous owner must already have suspended or exited;
            # the grant just records the new owner.
            pass
        self._account_idle_end()
        self.running = thread
        self.dispatch_count += 1
        self._emit_marker("dispatch", thread.name)
        for observer in self.dispatch_observers:
            observer(thread)
        thread.grant_cpu(resume_event)

    @staticmethod
    def _resume_event_for(thread: TThread) -> RunEvent:
        # A thread suspended mid-body remembers *how* it suspended; its
        # current SIM_HashTB state may already have moved on (e.g. a sleeping
        # task that was made READY by a wakeup before being dispatched).
        suspend_kind = thread.suspend_kind
        if suspend_kind is ThreadState.PREEMPTED:
            return RunEvent.RETURN_FROM_PREEMPTION
        if suspend_kind is ThreadState.INTERRUPTED:
            return RunEvent.RETURN_FROM_INTERRUPT
        if suspend_kind is ThreadState.SLEEPING:
            return RunEvent.SLEEP_ARRIVAL
        if thread.activation_count == 0:
            return RunEvent.STARTUP
        return RunEvent.CONTINUE

    def _release_cpu(self) -> None:
        """Mark the CPU as free and start idle accounting."""
        self.running = None
        self._account_idle_start()

    def _account_idle_start(self) -> None:
        if self._idle_since_ns is None:
            self._idle_since_ns = self.simulator._now_ns

    def _account_idle_end(self) -> None:
        since_ns = self._idle_since_ns
        if since_ns is not None:
            self._idle_total_ns += self.simulator._now_ns - since_ns
            self._idle_since_ns = None

    def cpu_idle_time(self) -> SimTime:
        """Total simulated time during which no T-THREAD held the CPU."""
        total_ns = self._idle_total_ns
        if self._idle_since_ns is not None:
            total_ns += self.simulator._now_ns - self._idle_since_ns
        return SimTime(total_ns)  # simtime-boundary

    # ------------------------------------------------------------------
    # SIM_Wait and preemption points
    # ------------------------------------------------------------------
    def sim_wait(
        self,
        cycles: Optional[int] = None,
        duration: "SimTime | int | None" = None,
        energy_nj: Optional[float] = None,
        context: ExecutionContext = ExecutionContext.TASK,
        label: str = "",
    ) -> Generator[object, object, None]:
        """Consume annotated execution time and energy (SIM_Wait).

        Exactly one of *cycles* or *duration* must be given.  The wait is
        split into chunks of at most one system tick; pending preemptions or
        interruptions suspend the thread at chunk boundaries ("the next
        preemption point").  Energy accrues proportionally to the time
        actually consumed.
        """
        thread = self._require_running_caller()
        if (cycles is None) == (duration is None):
            raise SimApiError("sim_wait needs exactly one of cycles= or duration=")
        if cycles is not None:
            total = self.timing_model.time_of(cycles)
            if energy_nj is None:
                energy_nj = self.energy_model.energy_of(TimingAnnotation(cycles))
        else:
            total = SimTime.coerce(duration)
            if energy_nj is None:
                estimated_cycles = self.timing_model.cycles_of(total)
                energy_nj = self.energy_model.energy_of(TimingAnnotation(estimated_cycles))
        if total.nanoseconds < 0:
            raise SimApiError("sim_wait duration cannot be negative")
        self.sim_wait_count += 1
        if total.nanoseconds == 0:
            yield from self.preemption_point()
            return

        # The chunk loop runs on the int-ns plane: whole-tick chunks reuse
        # one Wait object and one cached Transition, so steady-state
        # execution annotates time without per-chunk boilerplate objects.
        total_ns = total.nanoseconds
        energy_rate = energy_nj / total_ns
        tick_ns = self._system_tick_ns
        simulator = self.simulator
        transition = self._run_transition(label, context)
        remaining_ns = total_ns
        while remaining_ns > 0:
            yield from self._maybe_suspend(thread)
            if remaining_ns < tick_ns:
                chunk_ns = remaining_ns
                chunk = SimTime(chunk_ns)  # simtime-boundary
                wait = Wait(chunk)
            else:
                chunk_ns = tick_ns
                chunk = self.system_tick
                wait = self._tick_wait
            start_ns = simulator._now_ns
            yield wait
            end_ns = simulator._now_ns
            chunk_energy = energy_rate * chunk_ns
            thread.token.fire(transition, simulator.now, chunk, chunk_energy)
            self.segment_count += 1
            topic = self._obs_sched
            if topic.enabled:
                topic.emit_fields(
                    "exec", start_ns, _EXEC_FIELDS,
                    (thread.name, end_ns - start_ns, context, chunk_energy, label),
                )
            remaining_ns -= chunk_ns
        yield from self._maybe_suspend(thread)

    def _run_transition(self, label: str, context: ExecutionContext) -> Transition:
        """The shared ``T_run`` transition for a (label, context) pair.

        Bounded: *label* is caller-supplied and may be dynamic (per-frame
        labels in a long soak run), so past the cap fresh transitions are
        constructed per call instead of cached forever.
        """
        key = (label, context)
        transition = self._transition_cache.get(key)
        if transition is None:
            transition = Transition(
                label or f"T_run.{context.value}", RunEvent.CONTINUE, context
            )
            if len(self._transition_cache) < 1024:
                self._transition_cache[key] = transition
        return transition

    def sim_wait_key(
        self,
        key: str,
        context: ExecutionContext = ExecutionContext.TASK,
        scale: float = 1.0,
    ) -> Generator[object, object, None]:
        """SIM_Wait using a named annotation from the annotation table."""
        annotation = self.annotations.lookup(key)
        if scale != 1.0:
            annotation = annotation.scaled(scale)
        yield from self.sim_wait(
            cycles=annotation.cycles,
            energy_nj=self.energy_model.energy_of(annotation),
            context=context,
            label=key,
        )

    def preemption_point(self) -> Generator[object, object, None]:
        """An explicit zero-cost preemption point."""
        thread = self._require_running_caller()
        yield from self._maybe_suspend(thread)

    def _maybe_suspend(self, thread: TThread) -> Generator[object, object, None]:
        """Suspend *thread* if a preemption or interruption is pending."""
        while True:
            if thread.interrupt_requested and self._pending_handlers:
                yield from self._suspend_for_interrupt(thread)
                continue
            if thread.preempt_requested and self.dispatch_enabled and not self.in_interrupt():
                yield from self._suspend_for_preemption(thread)
                continue
            # Clear a stale preemption request that can no longer be honoured
            # (e.g. the candidate vanished while dispatching was disabled).
            if thread.preempt_requested and self.dispatch_enabled \
                    and not self.in_interrupt() and self.scheduler.select_next() is None:
                thread.preempt_requested = False
            return

    def _suspend_for_preemption(self, thread: TThread) -> Generator[object, object, None]:
        thread.preempt_requested = False
        candidate = self.scheduler.select_next()
        if candidate is None or candidate is thread:
            return
        thread.preemption_count += 1
        self.preemption_count += 1
        self._emit_marker("preempt", thread.name)
        # The preempted task keeps the head position of its priority level.
        self.make_ready(thread, at_head=True)
        chosen = self.scheduler.pop_next()
        assert chosen is not None
        if chosen is thread:
            # We are still the best choice: nothing to do.
            thread.set_state(ThreadState.RUNNING)
            return
        self.running = None
        self._grant(chosen)
        resume = yield from thread._suspend_until_regranted(ThreadState.PREEMPTED)
        thread.token.fire(self._resume_transition(thread, resume), self.simulator.now)

    @staticmethod
    def _resume_transition(thread: TThread, resume: RunEvent) -> Transition:
        """The per-thread cached ``T_resume`` transition for *resume*."""
        transition = thread._resume_transitions.get(resume)
        if transition is None:
            transition = Transition(f"T_resume.{thread.name}", resume, ExecutionContext.TASK)
            thread._resume_transitions[resume] = transition
        return transition

    def _suspend_for_interrupt(self, thread: TThread) -> Generator[object, object, None]:
        thread.interrupt_requested = False
        if not self._pending_handlers:
            return
        handler = self._pending_handlers.popleft()
        thread.interrupted_count += 1
        self._emit_marker("interrupted", thread.name)
        self.stack.push(thread, handler, self.simulator.now)
        if self._pending_handlers:
            # Another interrupt is already pending: let it nest inside the
            # handler we are about to run.
            handler.interrupt_requested = True
        self.running = None
        self._grant(handler)
        resume = yield from thread._suspend_until_regranted(ThreadState.INTERRUPTED)
        thread.token.fire(self._resume_transition(thread, resume), self.simulator.now)

    def _require_running_caller(self) -> TThread:
        process = self.simulator.running_process
        running = self.running
        if running is None or process is None:
            raise SimApiError("sim_wait called while no T-THREAD holds the CPU")
        # Identity against the thread's own SC_THREAD handle — the previous
        # name comparison built an f-string per service call.
        if process is not running._process:
            raise SimApiError(
                f"sim_wait called from {process.name!r} but the CPU belongs to "
                f"{running.name!r}"
            )
        return running

    # ------------------------------------------------------------------
    # Blocking & wakeup
    # ------------------------------------------------------------------
    def block_current(
        self, suspend_state: ThreadState = ThreadState.SLEEPING
    ) -> Generator[object, object, None]:
        """The running thread voluntarily gives up the CPU and sleeps.

        Used by kernel wait services such as ``tk_slp_tsk`` / ``tk_wai_sem``:
        the kernel puts the task into its wait queue, then delegates to this
        generator.  The thread resumes when :meth:`wakeup` (or a kernel
        dispatch) grants it the CPU again, firing the ``Ew`` transition.
        """
        thread = self._require_running_caller()
        thread.preempt_requested = False
        # A blocked thread no longer owns the dispatch-disable state.
        saved_disable = self._dispatch_disable_count
        self._dispatch_disable_count = 0
        self._emit_marker("sleep", thread.name)
        self._release_cpu()
        self._dispatch_after_release()
        resume = yield from thread._suspend_until_regranted(suspend_state)
        self._dispatch_disable_count = saved_disable
        transition = thread._wakeup_transitions.get(resume)
        if transition is None:
            transition = Transition(
                f"T_wakeup.{thread.name}", resume, ExecutionContext.SERVICE_CALL
            )
            thread._wakeup_transitions[resume] = transition
        thread.token.fire(transition, self.simulator.now)

    def wakeup(self, thread: TThread) -> None:
        """Make a sleeping task ready again and reschedule."""
        if thread.state not in (ThreadState.SLEEPING, ThreadState.DORMANT,
                                ThreadState.READY, ThreadState.PREEMPTED):
            # Waking an already running/interrupted thread is a no-op here;
            # the kernel layer tracks wakeup requests counting separately.
            return
        if thread.state is ThreadState.SLEEPING:
            self.make_ready(thread)
        self.request_dispatch()

    def _dispatch_after_release(self) -> None:
        """After the CPU was freed, hand it to pending handlers or tasks."""
        if self._pending_handlers:
            handler = self._pending_handlers.popleft()
            self.stack.push(None, handler, self.simulator.now)
            if self._pending_handlers:
                handler.interrupt_requested = True
            self._grant(handler)
            return
        if not self.dispatch_enabled:
            self._deferred_dispatch = True
            return
        candidate = self.scheduler.pop_next()
        if candidate is not None:
            self._grant(candidate)

    # ------------------------------------------------------------------
    # Interrupts and handlers
    # ------------------------------------------------------------------
    def notify_interrupt(self, handler: TThread) -> None:
        """An external interrupt requests *handler* (SIM_NotifyInterrupt).

        If the CPU is idle the handler starts immediately; otherwise the
        running thread is marked and will suspend at its next preemption
        point, after which the handler runs on top of the SIM_Stack.
        """
        if not handler.is_handler:
            raise SimApiError(f"{handler.name!r} is not a handler T-THREAD")
        self.interrupt_count += 1
        topic = self._obs_irq
        if topic.enabled:
            topic.emit(
                "raise", self.simulator.now.nanoseconds,
                handler=handler.name, deferred=self.running is not None,
            )
        if self.running is None:
            self.stack.push(None, handler, self.simulator.now)
            self._grant(handler)
            return
        self._pending_handlers.append(handler)
        self.running.interrupt_requested = True

    def activate_handler(self, handler: TThread) -> None:
        """Activate a cyclic/alarm handler (timer-driven, task-independent)."""
        self.notify_interrupt(handler)

    def pending_handler_count(self) -> int:
        """Number of handlers waiting to start."""
        return len(self._pending_handlers)

    # ------------------------------------------------------------------
    # Thread exit (called by TThread wrapper)
    # ------------------------------------------------------------------
    def _on_thread_exit(self, thread: TThread) -> None:
        thread.revoke_cpu()
        thread.preempt_requested = False
        thread.interrupt_requested = False
        if self.stack.in_interrupt() and self.stack.current_handler() is thread:
            self._on_handler_return(thread)
            return
        thread.set_state(ThreadState.DORMANT)
        if self.running is thread:
            self._release_cpu()
        if self.running is None:
            self._dispatch_after_release()

    def _on_handler_return(self, handler: TThread) -> None:
        frame = self.stack.pop()
        handler.set_state(ThreadState.DORMANT)
        if self.running is handler:
            self._release_cpu()
        self._emit_marker("handler_return", handler.name)

        if self._pending_handlers:
            # Service the next pending interrupt before resuming anything.
            next_handler = self._pending_handlers.popleft()
            self.stack.push(frame.interrupted, next_handler, self.simulator.now)
            if self._pending_handlers:
                next_handler.interrupt_requested = True
            self._grant(next_handler)
            return

        interrupted = frame.interrupted
        if self.stack.in_interrupt():
            # Returning from a nested interrupt: resume the outer handler.
            if interrupted is not None:
                self._grant(interrupted)
            return

        # Outermost return: apply delayed dispatching.
        self._deferred_dispatch = False
        candidate = self.scheduler.select_next()
        if interrupted is None:
            if candidate is not None and self.dispatch_enabled:
                chosen = self.scheduler.pop_next()
                assert chosen is not None
                self._grant(chosen)
            return
        if (
            candidate is not None
            and self.dispatch_enabled
            and self.scheduler.should_preempt(interrupted, candidate)
        ):
            # Delayed dispatching: a higher-priority task became ready while
            # the handler ran; it wins over the interrupted task.
            interrupted.preemption_count += 1
            self.preemption_count += 1
            self.make_ready(interrupted, at_head=True)
            chosen = self.scheduler.pop_next()
            assert chosen is not None
            self._emit_marker("delayed_preempt", interrupted.name)
            self._grant(chosen)
            return
        self._grant(interrupted)

    # ------------------------------------------------------------------
    # Statistics & debugging output
    # ------------------------------------------------------------------
    def energy_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-thread CET/CEE summary (the SIM_API energy statistics option)."""
        stats: Dict[str, Dict[str, float]] = {}
        for thread in self.hashtb.all_threads():
            stats[thread.name] = {
                "cet_ms": thread.consumed_execution_time.to_ms(),
                "cee_mj": thread.token.consumed_execution_energy_mj,
                "activations": float(thread.activation_count),
                "preemptions": float(thread.preemption_count),
                "interruptions": float(thread.interrupted_count),
            }
        return stats

    def total_consumed_energy_mj(self, include_idle: bool = True) -> float:
        """Total CEE over all threads, optionally including idle power."""
        total = sum(
            thread.token.consumed_execution_energy_mj
            for thread in self.hashtb.all_threads()
        )
        if include_idle:
            total += self.energy_model.idle_energy(self.cpu_idle_time()) * 1e-6
        return total

    def __repr__(self) -> str:
        running = self.running.name if self.running else None
        return (
            f"SimApi(threads={len(self.hashtb)}, running={running!r}, "
            f"tick={self.system_tick.format()})"
        )
