"""Resilient sweep execution: retry, quarantine, crashed-worker bisection.

This is the fault-tolerant twin of :func:`repro.campaign.batch.run_batch`
(which delegates here whenever a :class:`ResiliencePolicy` is attached).
The deterministic contract is unchanged — a resilient sweep whose runs all
succeed (including after transient-failure retries, which re-run the same
spec with the same derived seed) produces byte-identical artifacts to a
plain sweep — but failures stop being sweep-fatal:

* every run finishes in a structured outcome (``ok`` / ``failed`` /
  ``timed-out`` / ``crashed``) with per-attempt :class:`FailureRecord`\\ s
  destined for the ``failures.jsonl`` sidecar;
* transient failures (worker crash, host I/O, injected transients) retry
  up to ``policy.max_attempts``; persistent ones quarantine immediately;
  watchdog timeouts never retry (a deterministic ceiling repeats);
* a pool worker dying mid-group triggers *bisection*: the group's members
  are re-dispatched individually, each in its own single-worker pool, so
  the poison spec is isolated precisely and the innocents complete —
  fused batching no longer widens one bad member's blast radius.

The pooled path runs on :class:`concurrent.futures.ProcessPoolExecutor`
rather than ``multiprocessing.Pool`` because only the former surfaces a
SIGKILL-ed worker as :class:`BrokenProcessPool` instead of hanging.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.fused import (
    FusedRunContext,
    cached_composition,
    compute_chunksize,
    fused_worker_count,
    paused_gc,
)
from repro.campaign.metrics import RunResult
from repro.campaign.spec import ScenarioSpec, SpecError
from repro.resilience.envelope import (
    OUTCOME_OK,
    FailureRecord,
    ResilienceAbort,
    ResiliencePolicy,
    WorkerCrash,
    is_transient,
)
from repro.resilience.hooks import (
    chaos_point,
    clear_run_index,
    set_run_index,
    tag_phase,
)
from repro.resilience.watchdog import WatchdogTimeout

Group = List[Tuple[int, ScenarioSpec]]


def execute_with_retries(
    run_once: Callable[[int], Any],
    spec: Any,
    index: Optional[int],
    policy: ResiliencePolicy,
) -> Tuple[Optional[Any], Dict[str, Any], List[FailureRecord]]:
    """Drive one run through the policy's attempt loop.

    *run_once* is called with the attempt number (1-based) and either
    returns the run's result or raises.  Returns ``(result, outcome_doc,
    records)``: ``result`` is ``None`` when every attempt failed, the
    outcome doc summarises the run for the batch report, and ``records``
    holds one :class:`FailureRecord` per failed attempt (the last one
    ``quarantined`` when the run never succeeded).  Retries re-invoke the
    identical deterministic run, so a retried success changes no artifact.
    """
    records: List[FailureRecord] = []
    result = None
    attempt = 0
    while True:
        attempt += 1
        set_run_index(index)
        try:
            result = run_once(attempt)
            break
        except WatchdogTimeout as error:
            # The ceiling is part of the run's deterministic definition —
            # a retry would cancel at the same advance, so don't bother.
            records.append(FailureRecord.from_exception(
                error, spec, attempt=attempt, index=index))
            break
        except Exception as error:
            record = FailureRecord.from_exception(
                error, spec, attempt=attempt, index=index)
            records.append(record)
            if record.transient and attempt < policy.max_attempts:
                continue
            break
        finally:
            clear_run_index()
    if result is None and records:
        records[-1].quarantined = True
    outcome = {
        "index": index,
        "scenario": _scenario_name(spec),
        "outcome": OUTCOME_OK if result is not None else records[-1].outcome,
        "attempts": attempt,
    }
    return result, outcome, records


def _scenario_name(spec: Any) -> str:
    if isinstance(spec, dict):
        return spec.get("name", "") or ""
    return getattr(spec, "name", "") or ""


def run_batch_resilient(
    specs: Sequence[ScenarioSpec],
    workers: Optional[int] = None,
    collect_events: bool = True,
    store: Optional[Any] = None,
    refresh: bool = False,
    telemetry: Optional[Any] = None,
    fuse: bool = True,
    policy: Optional[ResiliencePolicy] = None,
):
    """:func:`run_batch` with failure envelopes instead of raise-through.

    Same signature plus *policy*; returns a
    :class:`~repro.campaign.batch.BatchResult` whose ``results`` hold the
    successful runs (aggregate computed over exactly those), ``indices``
    their global run indices, ``outcomes`` one summary per requested run
    and ``failures`` the per-attempt records bound for the sidecar.

    With ``policy.keep_going`` unset, the first non-ok outcome raises
    :class:`ResilienceAbort` instead (fail-fast — no partial output).
    """
    from repro.campaign.batch import BatchResult, default_worker_count

    if policy is None:
        policy = ResiliencePolicy()
    if not specs:
        raise SpecError("batch has no runs")

    slots: List[Optional[RunResult]] = [None] * len(specs)
    outcome_docs: Dict[int, Dict[str, Any]] = {}
    failures: List[FailureRecord] = []
    pending: Group = []
    for index, spec in enumerate(specs):
        try:
            spec.validate()
        except Exception as error:
            # A spec that cannot validate is persistent by definition.
            tag_phase(error, "validate")
            record = FailureRecord.from_exception(
                error, spec, attempt=1, index=index)
            record.quarantined = True
            failures.append(record)
            outcome_docs[index] = {
                "index": index, "scenario": _scenario_name(spec),
                "outcome": record.outcome, "attempts": 1,
            }
            if not policy.keep_going:
                raise ResilienceAbort(record)
        else:
            pending.append((index, spec))

    if store is not None and not refresh:
        misses: Group = []
        for index, spec in pending:
            # A store problem during lookup/replay is never fatal: the
            # entry reads as a miss and the run simply re-simulates.
            try:
                if telemetry is not None:
                    with telemetry.span("lookup", run=index):
                        hit = store.lookup(spec)
                else:
                    hit = store.lookup(spec)
            except Exception:
                hit = None
            if hit is None:
                misses.append((index, spec))
                continue
            try:
                if telemetry is not None:
                    with telemetry.span("replay", run=index):
                        replayed = hit.replay(collect_events=collect_events)
                else:
                    replayed = hit.replay(collect_events=collect_events)
            except Exception:
                misses.append((index, spec))
                continue
            slots[index] = replayed
            outcome_docs[index] = {
                "index": index, "scenario": _scenario_name(spec),
                "outcome": OUTCOME_OK, "attempts": 0, "cached": True,
            }
        pending = misses

    if workers is None:
        if not pending:
            workers = 1
        elif fuse:
            workers = fused_worker_count(len(pending))
        else:
            workers = default_worker_count(len(pending))
    workers = max(1, min(workers, max(len(pending), 1)))

    if pending:
        if workers == 1:
            _resilient_serial(
                pending, slots, outcome_docs, failures,
                collect_events=collect_events, store=store, refresh=refresh,
                telemetry=telemetry, policy=policy, fuse=fuse,
            )
        else:
            _resilient_pooled(
                pending, slots, outcome_docs, failures, workers=workers,
                collect_events=collect_events, store=store,
                telemetry=telemetry, policy=policy, fuse=fuse,
            )

    indices = [index for index, result in enumerate(slots)
               if result is not None]
    failures.sort(key=lambda record: (
        record.index if record.index is not None else -1, record.attempt))
    return BatchResult(
        results=[slots[index] for index in indices],
        workers=workers,
        indices=indices,
        outcomes=[outcome_docs[index] for index in sorted(outcome_docs)],
        failures=failures,
    )


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def _resilient_serial(
    pending: Group,
    slots: List[Optional[RunResult]],
    outcome_docs: Dict[int, Dict[str, Any]],
    failures: List[FailureRecord],
    collect_events: bool,
    store: Optional[Any],
    refresh: bool,
    telemetry: Optional[Any],
    policy: ResiliencePolicy,
    fuse: bool,
) -> None:
    """The in-process loop, mirroring ``_run_pending_serial`` + envelopes."""
    from repro.campaign.runner import run_spec

    budget = policy.budget()
    run_events = collect_events or store is not None
    context = FusedRunContext() if fuse else None
    guard = paused_gc() if fuse else contextlib.nullcontext()
    with guard:
        for index, spec in pending:
            def run_once(_attempt: int, spec: ScenarioSpec = spec) -> RunResult:
                result = run_spec(
                    spec,
                    collect_events=collect_events if fuse else run_events,
                    store=store, refresh=refresh, telemetry=telemetry,
                    fused=context, budget=budget,
                )
                if context is not None:
                    context.reap()
                return result

            result, outcome, records = execute_with_retries(
                run_once, spec, index, policy)
            failures.extend(records)
            outcome_docs[index] = outcome
            if result is not None:
                if not collect_events:
                    result.events = []
                slots[index] = result
            elif not policy.keep_going:
                raise ResilienceAbort(records[-1])


# ----------------------------------------------------------------------
# Pooled path with bisection
# ----------------------------------------------------------------------
def _resilient_pooled(
    pending: Group,
    slots: List[Optional[RunResult]],
    outcome_docs: Dict[int, Dict[str, Any]],
    failures: List[FailureRecord],
    workers: int,
    collect_events: bool,
    store: Optional[Any],
    telemetry: Optional[Any],
    policy: ResiliencePolicy,
    fuse: bool,
) -> None:
    from repro.campaign.batch import _pool_context

    chunk = compute_chunksize(len(pending), workers) if fuse else 1
    groups: List[Group] = [
        pending[at:at + chunk] for at in range(0, len(pending), chunk)
    ]
    payload_base = {
        "collect_events": collect_events,
        "need_store_events": store is not None,
        "telemetry": telemetry is not None,
        "fuse": fuse,
        "policy": policy.to_dict(),
    }
    mp_context = _pool_context()

    def ingest(raws: List[Dict[str, Any]]) -> None:
        for raw in raws:
            index = raw["index"]
            records = [FailureRecord.from_dict(document)
                       for document in raw.get("records", ())]
            failures.extend(records)
            if raw["outcome"] != OUTCOME_OK:
                outcome_docs[index] = {
                    "index": index, "scenario": raw.get("scenario", ""),
                    "outcome": raw["outcome"], "attempts": raw["attempts"],
                }
                if not policy.keep_going:
                    raise ResilienceAbort(records[-1])
                continue
            result = RunResult(
                spec=raw["spec"], metrics=raw["metrics"],
                timing=raw["timing"], events=raw["events"],
            )
            if telemetry is not None:
                telemetry.adopt(raw["telemetry"], run=index)
            if store is not None and raw["cacheable"]:
                store_failure = _store_result(
                    store, result, index, telemetry, policy)
                if store_failure is not None:
                    # Store fill is best-effort caching: the run stays in
                    # the aggregate, the failure goes to the sidecar.
                    failures.append(store_failure)
            if not collect_events:
                result.events = []
            slots[index] = result
            outcome_docs[index] = {
                "index": index, "scenario": raw.get("scenario", ""),
                "outcome": OUTCOME_OK, "attempts": raw["attempts"],
            }

    def dispatch_failure(group: Group, error: BaseException) -> None:
        # The group's worker call itself failed (bad payload, unpicklable
        # result) before per-member enveloping could run: persistent.
        tag_phase(error, "dispatch")
        for index, spec in group:
            record = FailureRecord.from_exception(
                error, spec, attempt=1, index=index)
            record.quarantined = True
            failures.append(record)
            outcome_docs[index] = {
                "index": index, "scenario": _scenario_name(spec),
                "outcome": record.outcome, "attempts": 1,
            }
            if not policy.keep_going:
                raise ResilienceAbort(record)

    queue: List[Tuple[Group, bool]] = [(group, False) for group in groups]
    crash_attempts: Dict[int, int] = {}
    while queue:
        shared = [group for group, isolated in queue if not isolated]
        singles = [group for group, isolated in queue if isolated]
        queue = []

        crashed: List[Group] = []
        if shared:
            crashed = _dispatch_shared(
                shared, workers, payload_base, mp_context, ingest,
                dispatch_failure,
            )
        for group in crashed:
            if len(group) > 1:
                # Bisection: the worker died somewhere inside this group —
                # re-dispatch every member alone to isolate the poison.
                queue.extend(([member], True) for member in group)
            else:
                queue.append((group, True))

        for group in singles:
            if not _dispatch_isolated(
                group, payload_base, mp_context, ingest, dispatch_failure,
            ):
                continue
            # Its own single-worker pool died: the blame is precise.
            (index, spec), = group
            crash_attempts[index] = crash_attempts.get(index, 0) + 1
            attempt = crash_attempts[index]
            error = WorkerCrash(
                f"pool worker died while running run {index} ({spec.name})"
            )
            record = FailureRecord.from_exception(
                error, spec, attempt=attempt, index=index)
            failures.append(record)
            if attempt < policy.max_attempts:
                queue.append((group, True))
                continue
            record.quarantined = True
            outcome_docs[index] = {
                "index": index, "scenario": spec.name,
                "outcome": record.outcome, "attempts": attempt,
            }
            if not policy.keep_going:
                raise ResilienceAbort(record)


def _payload(group: Group, payload_base: Dict[str, Any]) -> Dict[str, Any]:
    payload = dict(payload_base)
    payload["specs"] = [(index, spec.to_dict()) for index, spec in group]
    return payload


def _dispatch_shared(
    groups: List[Group],
    workers: int,
    payload_base: Dict[str, Any],
    mp_context: Any,
    ingest: Callable[[List[Dict[str, Any]]], None],
    dispatch_failure: Callable[[Group, BaseException], None],
) -> List[Group]:
    """Fan *groups* out over one pool; returns the groups that crashed.

    When the pool breaks, every unfinished future reports
    :class:`BrokenProcessPool` — including innocents that merely shared
    the pool with the dying worker — so crashed groups carry no blame
    here; isolation assigns it.
    """
    crashed: List[Group] = []
    executor = ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)
    try:
        futures: Dict[Any, Group] = {}
        for at, group in enumerate(groups):
            try:
                future = executor.submit(
                    _execute_group_resilient, _payload(group, payload_base))
            except BrokenProcessPool:
                crashed.extend(groups[at:])
                break
            futures[future] = group
        for future in as_completed(futures):
            group = futures[future]
            try:
                raws = future.result()
            except BrokenProcessPool:
                crashed.append(group)
                continue
            except Exception as error:
                dispatch_failure(group, error)
                continue
            ingest(raws)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return crashed


def _dispatch_isolated(
    group: Group,
    payload_base: Dict[str, Any],
    mp_context: Any,
    ingest: Callable[[List[Dict[str, Any]]], None],
    dispatch_failure: Callable[[Group, BaseException], None],
) -> bool:
    """Run one single-member group in its own pool; ``True`` if it crashed."""
    executor = ProcessPoolExecutor(max_workers=1, mp_context=mp_context)
    try:
        future = executor.submit(
            _execute_group_resilient, _payload(group, payload_base))
        try:
            raws = future.result()
        except BrokenProcessPool:
            return True
        except Exception as error:
            dispatch_failure(group, error)
            return False
        ingest(raws)
        return False
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _store_result(
    store: Any,
    result: RunResult,
    index: int,
    telemetry: Optional[Any],
    policy: ResiliencePolicy,
) -> Optional[FailureRecord]:
    """Coordinator-side store fill with its own retry loop.

    Returns a (non-quarantining) failure record when the fill failed for
    good — caching is best-effort, so the result itself survives.
    """
    scenario = result.metrics.get("scenario", "")
    attempt = 0
    while True:
        attempt += 1
        try:
            chaos_point("store", scenario=scenario, index=index)
            if telemetry is not None:
                with telemetry.span("store", run=index):
                    entry = store.put_result(result)
            else:
                entry = store.put_result(result)
            chaos_point("stored", scenario=scenario, index=index,
                        entry_dir=entry.entry_dir)
            return None
        except Exception as error:
            tag_phase(error, "store")
            if is_transient(error) and attempt < policy.max_attempts:
                continue
            return FailureRecord.from_exception(
                error, result.spec, attempt=attempt, index=index)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: The pool worker's long-lived fused context (mirrors the plain engine).
_WORKER_CONTEXT: Optional[FusedRunContext] = None


def _execute_group_resilient(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Pool worker entry point: run one group, enveloping per member.

    Unlike the plain fused worker, a member's failure is caught *here*:
    the raw result ships either the run's data (``outcome == "ok"``) or
    its failure records, so one bad member never poisons the group's IPC
    round trip.  Only a hard process death escapes — and the coordinator's
    bisection path handles that.
    """
    global _WORKER_CONTEXT
    policy = ResiliencePolicy.from_dict(payload["policy"])
    context: Optional[FusedRunContext] = None
    if payload["fuse"]:
        if _WORKER_CONTEXT is None:
            _WORKER_CONTEXT = FusedRunContext()
        context = _WORKER_CONTEXT
    raws: List[Dict[str, Any]] = []
    with paused_gc():
        for index, document in payload["specs"]:
            spec = ScenarioSpec.from_dict(document)
            raws.append(_run_member(
                spec, index, policy=policy, context=context,
                collect_events=payload["collect_events"],
                need_store_events=payload["need_store_events"],
                want_telemetry=payload["telemetry"],
            ))
    return raws


def _run_member(
    spec: ScenarioSpec,
    index: int,
    policy: ResiliencePolicy,
    context: Optional[FusedRunContext],
    collect_events: bool,
    need_store_events: bool,
    want_telemetry: bool,
) -> Dict[str, Any]:
    from repro.campaign.runner import run_spec

    budget = policy.budget()
    extras: Dict[str, Any] = {}

    def run_once(_attempt: int) -> RunResult:
        try:
            if context is not None:
                composition = context.compositions.composition_for(spec)
            else:
                composition = cached_composition(spec)
        except Exception as error:
            tag_phase(error, "build")
            raise
        cacheable = composition.probes.topics == ("sched",)
        run_events = collect_events or (need_store_events and cacheable)
        recorder = None
        if want_telemetry:
            from repro.analytics.telemetry import TelemetryRecorder

            recorder = TelemetryRecorder()
        result = run_spec(
            spec, collect_events=run_events, telemetry=recorder,
            fused=context, budget=budget,
        )
        if context is not None:
            context.reap()
        extras["cacheable"] = cacheable
        extras["telemetry"] = recorder.spans if recorder is not None else []
        return result

    result, outcome, records = execute_with_retries(
        run_once, spec, index, policy)
    raw = {
        "index": index,
        "scenario": spec.name,
        "outcome": outcome["outcome"],
        "attempts": outcome["attempts"],
        "records": [record.to_dict() for record in records],
    }
    if result is not None:
        raw.update({
            "spec": result.spec,
            "metrics": result.metrics,
            "timing": result.timing,
            "events": result.events,
            "cacheable": extras["cacheable"],
            "telemetry": extras["telemetry"],
        })
    return raw
