"""Failure envelopes: structured outcomes instead of raw tracebacks.

Every run a resilient sweep executes ends in exactly one of four outcomes
(:data:`OUTCOME_OK`, :data:`OUTCOME_FAILED`, :data:`OUTCOME_TIMED_OUT`,
:data:`OUTCOME_CRASHED`).  A non-ok run produces one
:class:`FailureRecord` per attempt — a canonical, JSONL-able document
carrying the spec hash, the pipeline phase the exception escaped from,
the exception class/message, a truncated traceback and the attempt
number — and the *last* record of a run that exhausted its attempts is
marked ``quarantined`` (the quarantine ledger is simply the set of
quarantined records).

Failure records follow the telemetry rule exactly: they live only in a
``failures.jsonl`` sidecar (schema :data:`FAILURES_SCHEMA`), never in
spec hashes, stored artifacts, deterministic aggregates or golden
streams.  Aggregates are computed over successes alone.

Retry classification is deliberately narrow: *transient* means the class
of failure that can genuinely differ on a retry of the identical,
deterministic run — worker crashes, host I/O (``OSError``), and anything
that explicitly marks itself ``transient = True`` (the chaos harness's
transient faults do).  Watchdog timeouts are never transient: the
simulated-time ceiling is deterministic, so a retry would time out
identically.  Because retries re-run the *same* spec with the *same*
derived seed, a sweep whose transient failures all succeeded on retry is
byte-identical to a sweep that never failed.

The CLI's exit-code taxonomy lives here too: 0 — everything ran and
aggregated; 1 — the sweep is usable but partial (quarantined runs, a
coverage-gapped merge, failed integrity checks); 2 — the invocation was
unusable (bad arguments, unreadable inputs, fail-fast abort refusing to
produce output).
"""

from __future__ import annotations

import json
import traceback as _traceback
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Tuple, Union

from repro.resilience.hooks import phase_of
from repro.resilience.watchdog import RunBudget

# -- outcomes ----------------------------------------------------------
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_TIMED_OUT = "timed-out"
OUTCOME_CRASHED = "crashed"

OUTCOMES = (OUTCOME_OK, OUTCOME_FAILED, OUTCOME_TIMED_OUT, OUTCOME_CRASHED)

#: Schema identifier carried by every failure record.
FAILURES_SCHEMA = "repro-failures/1"

#: Lines kept from the tail of a formatted traceback (the raising frames).
TRACEBACK_LIMIT_LINES = 20

#: Characters kept of an exception message.
MESSAGE_LIMIT = 500

# -- exit-code taxonomy ------------------------------------------------
EXIT_OK = 0
EXIT_PARTIAL = 1
EXIT_UNUSABLE = 2


class WorkerCrash(RuntimeError):
    """A pool worker process died (SIGKILL, OOM, hard crash) mid-run.

    Raised coordinator-side when the pool reports brokenness; transient by
    definition — the crash is a host event, not a property of the spec —
    so the run retries up to the policy's attempt cap before quarantine.
    """

    outcome = OUTCOME_CRASHED
    transient = True


class ResilienceAbort(RuntimeError):
    """Fail-fast: the first non-ok outcome aborted the sweep.

    Carries the triggering :class:`FailureRecord`; the CLI renders it as a
    one-line error with exit code :data:`EXIT_UNUSABLE` (a fail-fast sweep
    refuses to produce partial output, unlike ``keep_going`` mode which
    completes with :data:`EXIT_PARTIAL`).
    """

    def __init__(self, record: "FailureRecord"):
        self.record = record
        super().__init__(record.summary())


def is_transient(error: BaseException) -> bool:
    """Whether a retry of the identical run could plausibly succeed."""
    if getattr(error, "transient", False):
        return True
    return isinstance(error, OSError)


def outcome_of(error: BaseException) -> str:
    """The outcome class of a failed attempt (never :data:`OUTCOME_OK`)."""
    outcome = getattr(error, "outcome", None)
    if outcome in (OUTCOME_TIMED_OUT, OUTCOME_CRASHED, OUTCOME_FAILED):
        return outcome
    return OUTCOME_FAILED


# -- records -----------------------------------------------------------
@dataclass
class FailureRecord:
    """One failed attempt of one run, in canonical sidecar form."""

    outcome: str
    scenario: str
    spec_hash: str
    phase: str
    exception: str
    message: str
    traceback: str = ""
    attempt: int = 1
    index: Optional[int] = None
    transient: bool = False
    quarantined: bool = False

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        spec: Any,
        attempt: int = 1,
        index: Optional[int] = None,
    ) -> "FailureRecord":
        """Envelope *error* raised while executing *spec*.

        *spec* is a :class:`~repro.campaign.spec.ScenarioSpec` or its
        ``to_dict`` document; the spec hash is computed here so a failure
        is addressable against the result store without ever entering it.
        """
        from repro.campaign.spec import spec_hash, spec_hash_from_document

        try:
            if isinstance(spec, Mapping):
                key = spec_hash_from_document(spec)
            else:
                key = spec_hash(spec)
        except Exception:  # a spec too malformed to hash still gets a record
            key = ""
        formatted = _traceback.format_exception(
            type(error), error, error.__traceback__
        )
        tail = "".join(formatted).splitlines(keepends=True)
        if isinstance(spec, Mapping):
            scenario = spec.get("name", "") or ""
        else:
            scenario = getattr(spec, "name", "") or ""
        return cls(
            outcome=outcome_of(error),
            scenario=scenario,
            spec_hash=key,
            phase=phase_of(error),
            exception=type(error).__name__,
            message=str(error)[:MESSAGE_LIMIT],
            traceback="".join(tail[-TRACEBACK_LIMIT_LINES:]),
            attempt=attempt,
            index=index,
            transient=is_transient(error),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FAILURES_SCHEMA,
            "outcome": self.outcome,
            "scenario": self.scenario,
            "spec_hash": self.spec_hash,
            "phase": self.phase,
            "exception": self.exception,
            "message": self.message,
            "traceback": self.traceback,
            "attempt": self.attempt,
            "index": self.index,
            "transient": self.transient,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FailureRecord":
        return cls(
            outcome=document.get("outcome", OUTCOME_FAILED),
            scenario=document.get("scenario", ""),
            spec_hash=document.get("spec_hash", ""),
            phase=document.get("phase", "run"),
            exception=document.get("exception", ""),
            message=document.get("message", ""),
            traceback=document.get("traceback", ""),
            attempt=int(document.get("attempt", 1)),
            index=document.get("index"),
            transient=bool(document.get("transient", False)),
            quarantined=bool(document.get("quarantined", False)),
        )

    def summary(self) -> str:
        """The one-line human form (CLI failure listings)."""
        where = f"run {self.index} " if self.index is not None else ""
        return (
            f"{where}({self.scenario}) {self.outcome} in phase "
            f"{self.phase} after attempt {self.attempt}: "
            f"{self.exception}: {self.message}"
        )


# -- the sidecar -------------------------------------------------------
class FailureLog:
    """Append-only ``failures.jsonl`` writer, flushed per record.

    Each line is one :class:`FailureRecord` document in canonical JSON.
    Flush-per-line means a sweep killed mid-write loses at most one —
    possibly torn — trailing line, which :func:`load_failures` tolerates.
    """

    def __init__(self, path: str):
        self.path = path
        self.lines_written = 0
        self._handle: Optional[IO[str]] = None

    def append(self, record: "Union[FailureRecord, Mapping[str, Any]]") -> None:
        from repro.obs.bus import canonical_json

        document = (
            record.to_dict() if isinstance(record, FailureRecord)
            else dict(record)
        )
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(canonical_json(document))
        self._handle.write("\n")
        self._handle.flush()
        self.lines_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FailureLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def write_failures(
    path: str, records: Iterable["Union[FailureRecord, Mapping[str, Any]]"]
) -> int:
    """Write *records* to the sidecar at *path*; returns lines written.

    Unlike a bare :class:`FailureLog`, this always creates the file — an
    explicitly requested sidecar should exist even when empty.
    """
    with FailureLog(path) as log:
        for record in records:
            log.append(record)
        written = log.lines_written
    if written == 0:
        open(path, "w", encoding="utf-8").close()
    return written


def load_failures(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read a failures sidecar, skipping torn lines.

    Returns ``(records, torn_lines)`` — a torn trailing line (the process
    died mid-write) or an injected torn write must not take the readable
    records down with it.
    """
    records: List[Dict[str, Any]] = []
    torn = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(document, dict):
                records.append(document)
            else:
                torn += 1
    return records, torn


# -- policy ------------------------------------------------------------
@dataclass
class ResiliencePolicy:
    """How a sweep treats its failures.

    The default policy — used by the CLI whenever a sweep runs — envelopes
    failures, retries transients once, keeps going past quarantined runs
    and aggregates over the successes.  ``policy=None`` at the library
    layer keeps the historical raise-through behaviour.
    """

    #: Total attempts per run (first try included); transient failures
    #: retry until this cap, persistent ones quarantine immediately.
    max_attempts: int = 2
    #: Host wall-clock budget per run, seconds (``None`` = unlimited).
    run_timeout_s: Optional[float] = None
    #: Simulated-time budget per run, nanoseconds (``None`` = unlimited).
    sim_budget_ns: Optional[int] = None
    #: Keep sweeping past failed runs (quarantine + partial exit code);
    #: ``False`` aborts on the first non-ok outcome (fail-fast).
    keep_going: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive")
        if self.sim_budget_ns is not None and self.sim_budget_ns <= 0:
            raise ValueError("sim_budget_ns must be positive")

    def budget(self) -> Optional[RunBudget]:
        """The per-run :class:`RunBudget`, or ``None`` when unlimited."""
        if self.run_timeout_s is None and self.sim_budget_ns is None:
            return None
        return RunBudget(wall_seconds=self.run_timeout_s,
                         sim_ns=self.sim_budget_ns)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "run_timeout_s": self.run_timeout_s,
            "sim_budget_ns": self.sim_budget_ns,
            "keep_going": self.keep_going,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ResiliencePolicy":
        return cls(
            max_attempts=int(document.get("max_attempts", 2)),
            run_timeout_s=document.get("run_timeout_s"),
            sim_budget_ns=document.get("sim_budget_ns"),
            keep_going=bool(document.get("keep_going", True)),
        )
