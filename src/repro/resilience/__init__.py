"""Fault-tolerant sweep execution: envelopes, watchdogs, retry, chaos.

The resilience plane turns all-or-nothing sweeps into campaigns that
survive bad members: failures become structured outcomes in a
``failures.jsonl`` sidecar (never a deterministic artifact), runaway runs
are cancelled by per-run budgets, transient failures retry without
changing a single output byte, persistent ones quarantine, and a crashed
pool worker triggers group bisection to isolate the poison spec.

Layering:

* :mod:`repro.resilience.hooks` — the only module production paths import
  (no-op chaos points, phase tagging, the current-run-index slot);
* :mod:`repro.resilience.watchdog` — per-run wall-clock / simulated-ns
  budgets armed through the simulator's advance hooks;
* :mod:`repro.resilience.envelope` — outcomes, failure records, the
  sidecar, retry classification, policy and the CLI exit taxonomy;
* :mod:`repro.resilience.executor` — the resilient batch engine
  (:func:`repro.campaign.batch.run_batch` delegates here when a policy is
  attached);
* :mod:`repro.resilience.chaos` — the deterministic fault injector; only
  ever loaded by a harness that installs it explicitly.
"""

from repro.resilience.envelope import (
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_UNUSABLE,
    FAILURES_SCHEMA,
    OUTCOME_CRASHED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_TIMED_OUT,
    OUTCOMES,
    FailureLog,
    FailureRecord,
    ResilienceAbort,
    ResiliencePolicy,
    WorkerCrash,
    is_transient,
    load_failures,
    write_failures,
)
from repro.resilience.watchdog import RunBudget, Watchdog, WatchdogTimeout


def __getattr__(name):
    # The executor pulls in the campaign layer, which itself imports
    # ``repro.resilience.hooks`` — resolve it lazily so importing this
    # package from the runner's hot path can never cycle.
    if name in ("execute_with_retries", "run_batch_resilient"):
        from repro.resilience import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EXIT_OK",
    "EXIT_PARTIAL",
    "EXIT_UNUSABLE",
    "FAILURES_SCHEMA",
    "OUTCOME_CRASHED",
    "OUTCOME_FAILED",
    "OUTCOME_OK",
    "OUTCOME_TIMED_OUT",
    "OUTCOMES",
    "FailureLog",
    "FailureRecord",
    "ResilienceAbort",
    "ResiliencePolicy",
    "RunBudget",
    "Watchdog",
    "WatchdogTimeout",
    "WorkerCrash",
    "execute_with_retries",
    "is_transient",
    "load_failures",
    "run_batch_resilient",
    "write_failures",
]
