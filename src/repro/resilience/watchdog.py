"""Per-run budgets: cancel runaway simulations, deterministically.

A :class:`RunBudget` caps one run along two independent axes:

* ``sim_ns`` — a ceiling on *simulated* time.  Checked on every kernel
  advance with one integer compare, so the cancellation point is a pure
  function of the event timeline: the same spec with the same budget is
  cancelled at exactly the same advance on every host, every time.
* ``wall_seconds`` — a ceiling on *host* time, for runs that stop making
  simulated progress at all (livelock in a delta cycle storm, a pathological
  workload, an injected clock overrun).  Wall clock is inherently
  non-deterministic, so it is the coarse backstop — checked every 64
  advances to keep it off the hot path — while the sim ceiling is the
  precise, reproducible one.

The :class:`Watchdog` arms itself through ``Simulator.advance_hooks`` (the
existing observation point — no kernel changes) and raises
:class:`WatchdogTimeout` out of ``Simulator.run()``; the runner's normal
cleanup path then closes sinks and resets the simulator, and the resilient
executors classify the run as ``timed-out``.  Timeouts are never retried:
a deterministic ceiling would simply time out again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Advances between wall-clock checks (power of two; masked, not modulo'd).
_WALL_CHECK_MASK = 63


class WatchdogTimeout(RuntimeError):
    """A run exceeded its budget and was cancelled by the watchdog.

    ``kind`` is ``"sim"`` (simulated-ns ceiling — deterministic) or
    ``"wall"`` (host wall-clock ceiling).  The class-level ``outcome`` and
    ``transient`` attributes let the failure-envelope layer classify the
    exception without importing this module.
    """

    outcome = "timed-out"
    transient = False

    def __init__(self, message: str, kind: str):
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class RunBudget:
    """What one run is allowed to consume before the watchdog cancels it."""

    #: Host wall-clock ceiling in seconds (``None`` = unlimited).
    wall_seconds: Optional[float] = None
    #: Simulated-time ceiling in nanoseconds past the run's start
    #: (``None`` = unlimited).
    sim_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_seconds is not None and self.wall_seconds <= 0:
            raise ValueError("wall_seconds budget must be positive")
        if self.sim_ns is not None and self.sim_ns <= 0:
            raise ValueError("sim_ns budget must be positive")

    @property
    def unlimited(self) -> bool:
        return self.wall_seconds is None and self.sim_ns is None


class Watchdog:
    """Arms a :class:`RunBudget` on a simulator via its advance hooks."""

    __slots__ = ("budget", "_clock", "_deadline_ns", "_wall_deadline", "_calls")

    def __init__(self, budget: RunBudget,
                 clock: Callable[[], float] = time.monotonic):
        self.budget = budget
        self._clock = clock
        self._deadline_ns: Optional[int] = None
        self._wall_deadline: Optional[float] = None
        self._calls = 0

    def arm(self, simulator) -> None:
        """Attach to *simulator*; ceilings are relative to its current time."""
        if self.budget.unlimited:
            return
        if self.budget.sim_ns is not None:
            self._deadline_ns = simulator.now_ns + self.budget.sim_ns
        if self.budget.wall_seconds is not None:
            self._wall_deadline = self._clock() + self.budget.wall_seconds
        simulator.advance_hooks.append(self._on_advance)

    def _on_advance(self, simulator, _when) -> None:
        deadline_ns = self._deadline_ns
        if deadline_ns is not None and simulator.now_ns > deadline_ns:
            raise WatchdogTimeout(
                f"simulated-time budget exceeded: advanced to "
                f"{simulator.now_ns} ns past the {deadline_ns} ns ceiling",
                kind="sim",
            )
        calls = self._calls
        self._calls = calls + 1
        if (
            self._wall_deadline is not None
            and (calls & _WALL_CHECK_MASK) == 0
            and self._clock() > self._wall_deadline
        ):
            raise WatchdogTimeout(
                f"wall-clock budget of {self.budget.wall_seconds:g} s "
                f"exceeded at {simulator.now_ns} ns simulated",
                kind="wall",
            )
