"""Production-side attachment points for the resilience plane.

This module is the *only* resilience import the execution hot path is
allowed to carry: a chaos-injection point that is a no-op unless a test
harness explicitly installed an injector (:mod:`repro.resilience.chaos`
never loads otherwise), the current-run-index slot the batch executors
publish for failure attribution, and the phase tagger that lets the
runner label where in the pipeline an exception escaped.

Everything here is deliberately tiny and import-free so that
``repro.campaign.runner`` / ``repro.grid`` can depend on it without
pulling the rest of the resilience machinery into every simulation.
"""

from __future__ import annotations

from typing import Any, Optional

#: The installed chaos injector, or ``None`` in production (the default —
#: every :func:`chaos_point` call is then a dict lookup plus a branch).
_INJECTOR: Optional[Any] = None

#: Global run index of the run currently executing in this process, set by
#: the resilient executors so failure records and chaos matching can name
#: the run even from code that only sees the spec.
_RUN_INDEX: Optional[int] = None


def chaos_point(phase: str, scenario: Optional[str] = None,
                index: Optional[int] = None, **info: Any) -> None:
    """Fire the installed chaos injector at a named pipeline *phase*.

    Phases used by the execution pipeline: ``build`` (before scenario
    construction), ``run-start`` (before the simulation loop), ``store``
    (before a result-store fill) and ``stored`` (after a fill, with the
    entry directory in *info*).  With no injector installed — always, in
    production — this returns immediately.
    """
    injector = _INJECTOR
    if injector is None:
        return
    if index is None:
        index = _RUN_INDEX
    injector.fire(phase, scenario=scenario, index=index, **info)


def chaos_enabled() -> bool:
    """Whether a chaos injector is currently installed in this process."""
    return _INJECTOR is not None


def install_injector(injector: Any) -> None:
    """Install *injector* (an object with ``fire(phase, **ctx)``)."""
    global _INJECTOR
    _INJECTOR = injector


def uninstall_injector() -> None:
    """Remove the installed injector; :func:`chaos_point` becomes a no-op."""
    global _INJECTOR
    _INJECTOR = None


def set_run_index(index: Optional[int]) -> None:
    """Publish the global run index the current process is executing."""
    global _RUN_INDEX
    _RUN_INDEX = index


def clear_run_index() -> None:
    global _RUN_INDEX
    _RUN_INDEX = None


def current_run_index() -> Optional[int]:
    return _RUN_INDEX


def tag_phase(error: BaseException, phase: str) -> None:
    """Label *error* with the pipeline phase it escaped from.

    First tag wins — an exception tagged ``build`` deep in the stack keeps
    that attribution when an outer wrapper re-tags.  Exceptions with
    ``__slots__`` silently stay untagged (they fall back to ``run``).
    """
    if getattr(error, "_repro_phase", None) is None:
        try:
            error._repro_phase = phase  # type: ignore[attr-defined]
        except (AttributeError, TypeError):  # pragma: no cover - slotted
            pass


def phase_of(error: BaseException) -> str:
    """The pipeline phase recorded on *error* (default: ``run``)."""
    return getattr(error, "_repro_phase", None) or "run"
