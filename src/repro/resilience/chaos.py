"""Deterministic chaos injection for the resilience test suite.

Nothing in this module ever runs in production: the execution pipeline
carries only the no-op :func:`repro.resilience.hooks.chaos_point` calls,
and this module loads solely when a harness builds a
:class:`ChaosInjector` and installs it (usually via :func:`chaos_active`).

A :class:`ChaosInjection` is an explicit, declarative fault — *what* kind
of failure, at *which* pipeline phase, against *which* run — and an
injector is just a list of them plus a seed.  Determinism is the whole
point: the same injection spec against the same sweep fires at the same
run on every host, so recovery paths are provable with byte-identity
assertions rather than flaky timing games.

Fault kinds:

``raise``            raise a persistent :class:`ChaosError` (quarantines).
``raise-transient``  raise a :class:`TransientChaosError` (retries succeed,
                     because the injection's once-marker burns on first fire).
``kill-worker``      ``SIGKILL`` the current process — from a pool worker
                     this is the mid-sweep crash the bisection path recovers.
``clock-overrun``    sleep past a wall-clock budget (watchdog proof).
``corrupt-store``    flip a byte of a just-stored artifact (``stored`` phase).
``torn-write``       truncate a just-stored artifact mid-line, emulating a
                     process death between ``write`` and ``flush``.

Cross-process "fire once" works without shared memory: a marker file is
claimed with ``O_CREAT | O_EXCL``, which is atomic on every platform we
run on, so exactly one attempt in one process wins even under a pool.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence

from repro.resilience.hooks import install_injector, uninstall_injector

KINDS = (
    "raise",
    "raise-transient",
    "kill-worker",
    "clock-overrun",
    "corrupt-store",
    "torn-write",
)

#: Phase label a failure record shows for a fault at each injection phase.
_PHASE_LABEL = {"build": "build", "run-start": "run",
                "store": "store", "stored": "store"}


class ChaosError(RuntimeError):
    """A persistent injected fault — retries fail identically."""

    transient = False


class TransientChaosError(RuntimeError):
    """A transient injected fault — eligible for retry."""

    transient = True


@dataclass
class ChaosInjection:
    """One declarative fault: kind + phase + target matchers."""

    kind: str
    #: Pipeline phase to fire at (``build`` / ``run-start`` / ``store`` /
    #: ``stored``); ``None`` matches any phase.
    phase: Optional[str] = None
    #: Scenario-name matcher (``None`` = any scenario).
    scenario: Optional[str] = None
    #: Global run-index matcher (``None`` = any run).
    index: Optional[int] = None
    #: Sleep duration for ``clock-overrun``.
    seconds: float = 0.05
    #: Store artifact targeted by ``corrupt-store`` / ``torn-write``.
    artifact: str = "events.jsonl"
    #: Marker-file path making this injection fire exactly once across
    #: all processes; ``None`` fires on every match.
    once_marker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown chaos kind: {self.kind!r}")

    def matches(self, phase: str, scenario: Optional[str],
                index: Optional[int]) -> bool:
        if self.phase is not None and self.phase != phase:
            return False
        if self.scenario is not None and self.scenario != scenario:
            return False
        if self.index is not None and self.index != index:
            return False
        return True


class ChaosInjector:
    """Fires a list of :class:`ChaosInjection` at matching chaos points.

    Install with :func:`chaos_active` (or ``hooks.install_injector``)
    *before* a pool forks so workers inherit it; the injections' marker
    files then coordinate which process actually fires.
    """

    def __init__(self, injections: Sequence[ChaosInjection], seed: int = 0):
        self.injections: List[ChaosInjection] = list(injections)
        self.seed = seed

    def fire(self, phase: str, scenario: Optional[str] = None,
             index: Optional[int] = None, **info: Any) -> None:
        for injection in self.injections:
            if not injection.matches(phase, scenario, index):
                continue
            if not _claim_once(injection.once_marker):
                continue
            _apply(injection, phase, scenario, index, info)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosInjector(seed={self.seed}, n={len(self.injections)})"


def _claim_once(marker: Optional[str]) -> bool:
    """Atomically claim *marker*; ``True`` exactly once per marker path."""
    if marker is None:
        return True
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(handle)
    return True


def _apply(injection: ChaosInjection, phase: str, scenario: Optional[str],
           index: Optional[int], info: Any) -> None:
    label = _PHASE_LABEL.get(phase, phase)
    where = f"phase {phase}, scenario {scenario!r}, run {index}"
    if injection.kind == "raise":
        error = ChaosError(f"injected fault at {where}")
        error._repro_phase = label
        raise error
    if injection.kind == "raise-transient":
        error = TransientChaosError(f"injected transient fault at {where}")
        error._repro_phase = label
        raise error
    if injection.kind == "kill-worker":
        os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError("unreachable: SIGKILL did not terminate")
    if injection.kind == "clock-overrun":
        time.sleep(injection.seconds)
        return
    if injection.kind in ("corrupt-store", "torn-write"):
        entry_dir = info.get("entry_dir")
        if not entry_dir:
            return
        target = os.path.join(entry_dir, injection.artifact)
        if not os.path.exists(target):
            return
        if injection.kind == "corrupt-store":
            _flip_byte(target)
        else:
            _tear(target)
        return
    raise AssertionError(f"unhandled chaos kind {injection.kind!r}")


def _flip_byte(path: str) -> None:
    """Flip one mid-file byte — a silent single-bit-rot stand-in."""
    size = os.path.getsize(path)
    if size == 0:
        return
    offset = size // 2
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ 0xFF]))


def _tear(path: str) -> None:
    """Truncate to ~60% — a write that died between buffer and disk."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(1, (size * 3) // 5))


def choose_index(seed: int, total: int, salt: str = "") -> int:
    """Deterministically pick a victim run index in ``[0, total)``.

    Seed-stable across hosts and Python versions (crc32, not ``hash()``),
    so "kill the worker at the n-th run" means the same n everywhere.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    payload = f"{seed}:{salt}".encode("utf-8")
    return zlib.crc32(payload) % total


@contextlib.contextmanager
def chaos_active(injector: ChaosInjector) -> Iterator[ChaosInjector]:
    """Install *injector* for the duration of the block, then uninstall."""
    install_injector(injector)
    try:
        yield injector
    finally:
        uninstall_injector()
