"""Common infrastructure for kernel objects: ID pools and wait queues.

Every T-Kernel object class (semaphore, event flag, mailbox, ...) owns a
:class:`WaitQueue` of :class:`WaitEntry` records.  The queue ordering is
selected by the object's ``TA_TFIFO`` / ``TA_TPRI`` attribute.  The generic
block/release protocol lives in :class:`repro.tkernel.kernel.TKernelOS`;
objects only decide *when* an entry is released and with which data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Iterator, List, Optional, TypeVar, TYPE_CHECKING

from repro.tkernel.errors import E_LIMIT, E_NOEXS
from repro.tkernel.types import TA_TPRI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.task import TaskControlBlock


class IDPool:
    """Allocates small positive object identifiers, reusing freed ones."""

    def __init__(self, max_ids: int = 1024):
        self.max_ids = max_ids
        self._next = 1
        self._free: List[int] = []
        self._live: set = set()

    def allocate(self) -> int:
        """Return a fresh identifier, or ``E_LIMIT`` if the pool is exhausted."""
        if self._free:
            new_id = self._free.pop(0)
        elif self._next <= self.max_ids:
            new_id = self._next
            self._next += 1
        else:
            return E_LIMIT
        self._live.add(new_id)
        return new_id

    def release(self, object_id: int) -> None:
        """Return an identifier to the pool."""
        if object_id in self._live:
            self._live.remove(object_id)
            self._free.append(object_id)

    def live_count(self) -> int:
        """Number of identifiers currently allocated."""
        return len(self._live)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._live


class KernelObject:
    """Base class for every T-Kernel object with an ID and attributes."""

    object_type = "object"

    def __init__(self, object_id: int, name: str, attributes: int = 0, exinf: Any = None):
        self.object_id = object_id
        self.name = name or f"{self.object_type}{object_id}"
        self.attributes = attributes
        self.exinf = exinf

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.object_id}, name={self.name!r})"


@dataclass
class WaitEntry:
    """One task waiting on a kernel object (or in tk_slp_tsk/tk_dly_tsk)."""

    tcb: "TaskControlBlock"
    factor: int
    object_id: int = 0
    #: Extra wait data, e.g. the requested flag pattern/mode or message size.
    data: Dict[str, Any] = field(default_factory=dict)
    #: Filled when the wait is released: the service-call return code.
    release_code: Optional[int] = None
    #: Result payload handed to the released task (message, block, pattern...).
    result: Any = None
    #: Handle of the timeout registered with the time manager, if any.
    timeout_handle: Any = None
    #: The wait queue this entry is linked into (None for tk_slp_tsk/tk_dly_tsk).
    queue: Optional["WaitQueue"] = None

    @property
    def priority(self) -> int:
        """Current priority of the waiting task (used by TA_TPRI queues)."""
        return self.tcb.priority

    def __repr__(self) -> str:
        return (
            f"WaitEntry(task={self.tcb.name!r}, factor=0x{self.factor:X}, "
            f"released={self.release_code is not None})"
        )


class WaitQueue:
    """A queue of waiting tasks, ordered FIFO or by task priority."""

    def __init__(self, attributes: int = 0):
        self.attributes = attributes
        self._entries: List[WaitEntry] = []

    @property
    def priority_ordered(self) -> bool:
        """Whether the queue is ordered by task priority (TA_TPRI)."""
        return bool(self.attributes & TA_TPRI)

    def enqueue(self, entry: WaitEntry) -> None:
        """Insert *entry* according to the queue's ordering rule."""
        if not self.priority_ordered:
            self._entries.append(entry)
            return
        # Priority order, FIFO among equals: insert before the first entry
        # with a strictly lower urgency (higher numeric priority).
        for index, existing in enumerate(self._entries):
            if existing.priority > entry.priority:
                self._entries.insert(index, entry)
                return
        self._entries.append(entry)

    def remove(self, entry: WaitEntry) -> bool:
        """Remove *entry*; returns whether it was present."""
        try:
            self._entries.remove(entry)
            return True
        except ValueError:
            return False

    def peek(self) -> Optional[WaitEntry]:
        """The entry that would be released next."""
        return self._entries[0] if self._entries else None

    def pop(self) -> Optional[WaitEntry]:
        """Remove and return the next entry to release."""
        return self._entries.pop(0) if self._entries else None

    def find_task(self, tskid: int) -> Optional[WaitEntry]:
        """The entry of the task with id *tskid*, if it is queued here."""
        for entry in self._entries:
            if entry.tcb.tskid == tskid:
                return entry
        return None

    def entries(self) -> List[WaitEntry]:
        """A copy of the queued entries in release order."""
        return list(self._entries)

    def waiting_task_ids(self) -> List[int]:
        """Identifiers of the queued tasks, in release order."""
        return [entry.tcb.tskid for entry in self._entries]

    def reorder_for_priority_change(self) -> None:
        """Re-sort a TA_TPRI queue after a waiter's priority changed."""
        if self.priority_ordered:
            self._entries.sort(key=lambda entry: entry.priority)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[WaitEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return f"WaitQueue({len(self._entries)} waiting, " \
               f"{'TPRI' if self.priority_ordered else 'TFIFO'})"


T = TypeVar("T", bound=KernelObject)


class ObjectTable(Generic[T]):
    """ID-indexed storage for one class of kernel objects."""

    def __init__(self, max_objects: int = 1024):
        self._pool = IDPool(max_objects)
        self._objects: Dict[int, T] = {}

    def add(self, factory) -> "int | T":
        """Allocate an ID and store ``factory(object_id)``.

        Returns the new object, or ``E_LIMIT`` (as an int) when full.
        """
        object_id = self._pool.allocate()
        if object_id < 0:
            return object_id
        obj = factory(object_id)
        self._objects[object_id] = obj
        return obj

    def get(self, object_id: int) -> "Optional[T]":
        """The object with *object_id*, or None."""
        return self._objects.get(object_id)

    def require(self, object_id: int) -> "T | int":
        """The object with *object_id*, or ``E_NOEXS``."""
        obj = self._objects.get(object_id)
        if obj is None:
            return E_NOEXS
        return obj

    def delete(self, object_id: int) -> bool:
        """Remove an object; returns whether it existed."""
        if object_id in self._objects:
            del self._objects[object_id]
            self._pool.release(object_id)
            return True
        return False

    def all(self) -> List[T]:
        """All live objects ordered by identifier."""
        return [self._objects[oid] for oid in sorted(self._objects)]

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects
